#!/usr/bin/env python3
"""Scaling study: how unsafe does a *longer* automated highway get?

The paper evaluates two platoons and closes with: "the models ... can be
easily extended to analyze highways composed of a larger number of
platoons".  This example is that analysis: sweep the number of platoons,
convert per-trip unsafety into fleet-level exposure (mean time to
unsafety), and finish with a tornado chart showing which parameter a
highway operator should actually invest in.

Usage:  python examples/highway_scale_study.py   (~30 s)
"""

from repro.core import (
    AHSParameters,
    MultiPlatoonEngine,
    mean_time_to_unsafety,
    unsafety_hazard,
)
from repro.experiments.sensitivity import tornado


def platoon_scaling() -> None:
    params = AHSParameters()
    print("=== Unsafety vs highway length (number of platoons) ===")
    print(f"{'platoons':>8} {'S(6h)':>12} {'per-window':>12} {'states':>8}")
    for m in (2, 3, 4, 5):
        engine = MultiPlatoonEngine(params, m)
        result = engine.unsafety([6.0])
        per_window = result.unsafety[0] / (m - 1)
        print(
            f"{m:>8} {result.unsafety[0]:>12.3e} {per_window:>12.3e} "
            f"{result.n_states:>8}"
        )
    print()
    print("Catastrophic combinations need adjacent platoons (the paper's")
    print("'small neighborhood in space'), so risk grows near-linearly")
    print("with highway length — a per-kilometre safety budget is sound.")
    print()


def fleet_exposure() -> None:
    print("=== Fleet-level view: mean time to unsafety ===")
    print(f"{'n':>4} {'MTTU (hours)':>14} {'MTTU (years)':>13} {'hazard/hr':>12}")
    for n in (6, 8, 10, 12, 14):
        params = AHSParameters(max_platoon_size=n)
        mttu = mean_time_to_unsafety(params)
        hazard = unsafety_hazard(params, 6.0)
        print(f"{n:>4} {mttu:>14.3e} {mttu / 8760:>13.1f} {hazard:>12.3e}")
    print()
    print("The paper's design rule 'platoon size should not exceed 10'")
    print("reads here as: n=10 keeps the expected catastrophic-free")
    print("operation above ~450 years per two-platoon segment.")
    print()


def what_to_invest_in() -> None:
    print("=== Tornado: which knob moves safety most? ===")
    rows = tornado(AHSParameters(), time=6.0)
    for row in rows:
        bar = "#" * int(round(abs(row.elasticity) * 10))
        sign = "+" if row.elasticity >= 0 else "-"
        print(f"{row.parameter:<30} {sign}{abs(row.elasticity):4.2f} {bar}")
    print()
    print("Elasticity +2 on the failure rate: halving component failure")
    print("rates buys 4x safety — twice the leverage of faster maneuvers")
    print("(elasticity -1), and far ahead of every coordination constant.")


if __name__ == "__main__":
    platoon_scaling()
    fleet_exposure()
    what_to_invest_in()
