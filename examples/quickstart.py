#!/usr/bin/env python3
"""Quickstart: evaluate the unsafety S(t) of an automated highway.

Builds the paper's default configuration (two platoons of up to 10
vehicles, λ = 1e-5/hr, decentralized coordination) and computes the
probability of reaching a catastrophic situation over trip durations of
2–10 hours, with the fast numerical engine and the closed-form sanity
check.  Runs in about a second.

Usage:  python examples/quickstart.py
"""

from repro.core import AHSParameters, unsafety


def main() -> None:
    params = AHSParameters(
        max_platoon_size=10,      # the paper's n
        base_failure_rate=1e-5,   # λ (1/hr); FM rates are λ·(1,2,2,2,3,4)
        join_rate=12.0,           # vehicles re-enter the highway (1/hr)
        leave_rate=4.0,           # voluntary exits per platoon (1/hr)
    )
    times = [2.0, 4.0, 6.0, 8.0, 10.0]

    print("AHS unsafety S(t) — probability of a catastrophic situation")
    print(f"parameters: {params.summary()}")
    print()

    numerical = unsafety(params, times, method="analytical")
    sanity = unsafety(params, times, method="approx")

    print(f"{'trip (h)':>8}  {'S(t) numerical':>15}  {'S(t) first-order':>17}")
    for t, exact, rough in zip(times, numerical.values, sanity.values):
        print(f"{t:>8.0f}  {exact:>15.3e}  {rough:>17.3e}")

    print()
    print("Reading: a 10-hour trip in 10-vehicle platoons carries a")
    print(f"~{numerical.values[-1]:.1e} probability of a catastrophic")
    print("multi-vehicle failure situation — the paper's headline measure.")


if __name__ == "__main__":
    main()
