#!/usr/bin/env python3
"""Digital-twin demo: Table-1 failures striking a kinematic highway.

Where the SAN model abstracts maneuvers into exponential delays, this
demo keeps everything physical: Poisson failure shocks (Table-1 rate
ratios, accelerated so a 3-hour run sees dozens) hit platooned vehicles
on the kinematic highway, each triggering its recovery maneuver — splits,
escorted exits, emergency stops with the full incident procedure — while
exited vehicles are replaced at the join rate.  The run's empirical
statistics are then compared against the stochastic model's parameters.

Usage:  python examples/failure_injection_demo.py
"""

from repro.agents import FailureInjectionScenario
from repro.core import AHSParameters
from repro.core.maneuvers import DEFAULT_MANEUVER_RATES, Maneuver


def main() -> None:
    params = AHSParameters(max_platoon_size=8)
    acceleration = 3e4
    scenario = FailureInjectionScenario(
        params, acceleration=acceleration, seed=2009
    )
    print(
        f"Injecting Table-1 failures at {acceleration:g}x the nominal "
        f"lambda={params.base_failure_rate:g}/hr over a 3h kinematic run..."
    )
    report = scenario.run(duration_hours=3.0)

    print()
    print(f"failures injected   : {report.injected}")
    print(f"maneuvers executed  : {report.executed}")
    print(f"refused (platoon<3) : {report.refused_small_platoon}")
    print(f"vehicles replenished: {report.replenished}")
    print(f"recovery success    : {report.success_rate:.0%}")
    print()

    print(f"{'maneuver':<8} {'count':>5} {'success':>8} {'mean dur':>9} "
          f"{'empirical rate':>15} {'SAN rate':>9}")
    for name, entry in sorted(report.by_maneuver().items()):
        maneuver = Maneuver(name)
        duration = entry["mean_duration_s"]
        empirical = 3600.0 / duration if duration == duration else float("nan")
        print(
            f"{name:<8} {entry['count']:>5} "
            f"{entry['successes'] / entry['count']:>8.0%} "
            f"{duration:>8.0f}s {empirical:>13.1f}/hr "
            f"{DEFAULT_MANEUVER_RATES[maneuver]:>7.0f}/hr"
        )
    print()
    print("The empirical per-maneuver rates bracket the SAN model's")
    print("defaults — the kinematic substrate and the stochastic model")
    print("describe the same system at two levels of abstraction.")


if __name__ == "__main__":
    main()
