#!/usr/bin/env python3
"""Microscopic platoon simulation: watch a recovery maneuver kinematically.

Drives the PATH-style traffic substrate directly: two platoons cruise at
highway speed, a mid-platoon vehicle suffers a transmission failure, and
the TIE-E (escorted exit) maneuver plays out — V2V handshakes, gap
opening, lane change, escorted drive to the off-ramp, platoon re-forming.
Prints a phase-by-phase account and the duration calibration across
platoon sizes that justifies the SAN model's maneuver rates (paper §4.1:
2–4 minutes, i.e. 15–30/hr).

Usage:  python examples/platoon_traffic_sim.py
"""

from repro.agents import (
    GAP_INTER_PLATOON,
    GAP_INTRA_PLATOON,
    Highway,
    ManeuverExecutor,
    calibrate_maneuver_durations,
)
from repro.agents.kinematics import VEHICLE_LENGTH
from repro.core.maneuvers import Maneuver
from repro.des import Environment
from repro.stochastic import StreamFactory


def single_maneuver_story() -> None:
    print("=== One escorted exit (TIE-E), blow by blow ===")
    stream = StreamFactory(2009).stream()
    env = Environment()
    highway = Highway(env, stream)
    size = 8
    highway.add_platoon("p1", lane=2, size=size, head_position=0.0)
    highway.add_platoon(
        "p2",
        lane=2,
        size=size,
        head_position=-(size * (VEHICLE_LENGTH + GAP_INTRA_PLATOON))
        - GAP_INTER_PLATOON,
    )
    highway.start()

    faulty = "p1.v3"
    print(f"platoon p1: {highway.platoons['p1'].vehicle_ids}")
    print(f"failure injected in {faulty} (FM4: transmission failure)")

    executor = ManeuverExecutor(highway, stream)
    outcome = executor.run_to_completion(Maneuver.TIE_E, faulty)

    print(f"maneuver {'succeeded' if outcome.success else 'FAILED'} "
          f"in {outcome.duration:.1f} s ({outcome.duration / 60:.1f} min)")
    for phase, duration in outcome.phase_durations.items():
        print(f"  {phase:<10} {duration:7.1f} s")
    print(f"V2V frames exchanged: {highway.bus.frames_sent}")
    print(f"remaining platoon: {highway.platoons['p1'].vehicle_ids}")
    print()


def duration_calibration() -> None:
    print("=== Maneuver-duration calibration (feeds the SAN rates) ===")
    report = calibrate_maneuver_durations(
        platoon_sizes=(4, 8, 12), repetitions=3, seed=7
    )
    print(f"{'maneuver':<8} {'n=4':>10} {'n=8':>10} {'n=12':>10}   rate band (1/hr)")
    for maneuver in Maneuver:
        durations = [
            report.mean_duration(maneuver, size) for size in (4, 8, 12)
        ]
        rates = sorted(3600.0 / d for d in durations)
        print(
            f"{maneuver.value:<8} "
            + " ".join(f"{d:>9.0f}s" for d in durations)
            + f"   {rates[0]:.0f}-{rates[-1]:.0f}"
        )
    print()
    print("The paper prescribes maneuver rates of 15-30/hr (2-4 minutes);")
    print("the kinematic substrate lands in that band and shows drastic")
    print("maneuvers (AS) taking the longest — the ordering used for the")
    print("SAN model's default rates.")


if __name__ == "__main__":
    single_maneuver_story()
    duration_calibration()
