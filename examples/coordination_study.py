#!/usr/bin/env python3
"""Design study: which coordination strategy should an AHS deploy?

Reproduces the paper's §4.4 analysis (Figures 14 and 15) as a design
exercise: sweep the four inter-/intra-platoon coordination strategies and
platoon-size limits, and report the safest configuration for a target
trip duration — the kind of question the paper's models were built to
answer for AHS designers.

Usage:  python examples/coordination_study.py [trip_hours]
"""

import sys

from repro.core import AHSParameters, AnalyticalEngine, Strategy


def study(trip_hours: float) -> None:
    print(f"Coordination-strategy study at trip duration {trip_hours:g} h")
    print("(lambda = 1e-5/hr, join 12/hr, leave 4/hr)")
    print()

    header = f"{'n':>4} " + "".join(f"{s.value:>12}" for s in Strategy)
    print(header)
    print("-" * len(header))

    best: tuple[float, int, Strategy] | None = None
    for n in range(6, 17, 2):
        row = [f"{n:>4}"]
        for strategy in Strategy:
            params = AHSParameters(max_platoon_size=n, strategy=strategy)
            value = AnalyticalEngine(params).unsafety([trip_hours]).unsafety[0]
            row.append(f"{value:>12.3e}")
            if best is None or value < best[0]:
                best = (value, n, strategy)
        print(" ".join(row))

    assert best is not None
    value, n, strategy = best
    print()
    print(
        f"Safest configuration: n={n}, strategy {strategy.value} "
        f"(S = {value:.3e})"
    )
    print()
    print("Findings mirroring the paper:")
    print(" * decentralized inter-platoon coordination (D*) is safer —")
    print("   the SAP of the centralized model drags more vehicles into")
    print("   each maneuver and serializes requests across both platoons;")
    print(" * the inter-platoon choice matters more than the intra-platoon;")
    print(" * platoon size dominates the strategy choice (paper: keep n<=10).")


if __name__ == "__main__":
    trip = float(sys.argv[1]) if len(sys.argv) > 1 else 6.0
    study(trip)
