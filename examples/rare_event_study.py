#!/usr/bin/env python3
"""Rare-event estimation: seeing probabilities crude Monte-Carlo cannot.

The paper notes that at λ = 1e-7/hr the unsafety is "about 1e-13" — far
beyond what its 10 000-batch simulation could measure (the curve is not
plotted).  This example shows the three tools this library offers on a
small AHS instance where everything can be cross-checked:

1. crude Monte-Carlo (fails: zero hits),
2. importance sampling with failure biasing (unbiased, CI),
3. fixed-effort multilevel splitting (no weight degeneracy),
4. the numerical engine (the reference).

Usage:  python examples/rare_event_study.py   (~1-2 minutes)
"""

from repro.core import AHSParameters, unsafety


def main() -> None:
    # a small instance so the simulation methods finish quickly; the
    # failure rate is low enough that hits are genuinely rare
    params = AHSParameters(max_platoon_size=2, base_failure_rate=2e-4)
    horizon = 2.0

    print(f"Small AHS: n=2, lambda={params.base_failure_rate:g}/hr, "
          f"trip {horizon:g} h")
    print()

    reference = unsafety(params, [horizon], method="analytical")
    print(f"numerical engine (reference) : {reference.values[0]:.3e}")

    crude = unsafety(
        params, [horizon], method="simulation", n_replications=2000, seed=1
    )
    print(
        f"crude MC, 2000 replications  : {crude.values[0]:.3e}  "
        f"(zero hits are expected at these probabilities)"
    )

    biased = unsafety(
        params,
        [horizon],
        method="importance",
        n_replications=2000,
        seed=2,
        boost=150.0,
    )
    print(
        f"importance sampling (x150)   : {biased.values[0]:.3e}  "
        f"+/- {biased.half_widths[0]:.1e}"
    )

    split = unsafety(
        params,
        [horizon],
        method="splitting",
        seed=3,
        trials_per_stage=200,
        repetitions=6,
        splitting_levels=[1.0, 2.0, 1000.0],
    )
    print(
        f"multilevel splitting         : {split.values[0]:.3e}  "
        f"+/- {split.half_widths[0]:.1e}"
    )

    print()
    print("At the paper's λ = 1e-7 the same API call")
    print('  unsafety(AHSParameters(base_failure_rate=1e-7), [6.0])')
    value = unsafety(
        AHSParameters(base_failure_rate=1e-7), [6.0]
    ).values[0]
    print(f"returns {value:.2e} — the regime the paper could only allude to.")


if __name__ == "__main__":
    main()
