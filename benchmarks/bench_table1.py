"""Table 1 — failure modes, severity classes and associated maneuvers."""

from benchmarks.conftest import run_and_render


def test_table1(benchmark, render_rows):
    result, rendered = benchmark(run_and_render, "table1")
    render_rows(rendered)
    assert [row["failure_mode"] for row in result] == [
        f"FM{i}" for i in range(1, 7)
    ]
    assert [row["maneuver"] for row in result] == [
        "AS",
        "CS",
        "GS",
        "TIE-E",
        "TIE",
        "TIE-N",
    ]
