"""Ablation benches for the modelling choices DESIGN.md calls out.

The paper does not publish maneuver success probabilities, assistant
reliabilities or duration scaling; DESIGN.md fixes defaults and this bench
sweeps them, asserting the paper's *qualitative* findings survive every
ablation — the reproduction's claims do not hinge on the unpublished
constants.
"""

import numpy as np

from repro.core import AHSParameters, AnalyticalEngine, Strategy


def unsafety_at_6h(params: AHSParameters) -> float:
    return AnalyticalEngine(params).unsafety([6.0]).unsafety[0]


def strategy_values(**overrides) -> dict[str, float]:
    return {
        strategy.value: unsafety_at_6h(
            AHSParameters(strategy=strategy, **overrides)
        )
        for strategy in Strategy
    }


def test_ablation_assistant_reliability(benchmark, render_rows):
    """Strategy ordering survives α ∈ {0.90, 0.95, 0.99}."""

    def sweep():
        return {
            alpha: strategy_values(assistant_reliability=alpha)
            for alpha in (0.90, 0.95, 0.99)
        }

    results = benchmark(sweep)
    lines = ["alpha  DD          DC          CD          CC"]
    for alpha, values in results.items():
        lines.append(
            f"{alpha:<5}  "
            + "  ".join(f"{values[s]:.4e}" for s in ("DD", "DC", "CD", "CC"))
        )
        assert values["DD"] < values["CD"] <= values["CC"] * 1.000001
        assert values["DD"] < values["CC"]
    render_rows("\n".join(lines))


def test_ablation_rear_propagation(benchmark, render_rows):
    """The n-effect direction survives rear_propagation ∈ {0, 0.25, 0.5}."""

    def sweep():
        out = {}
        for rear in (0.0, 0.25, 0.5):
            values = [
                unsafety_at_6h(
                    AHSParameters(max_platoon_size=n, rear_propagation=rear)
                )
                for n in (8, 12)
            ]
            out[rear] = values
        return out

    results = benchmark(sweep)
    lines = ["rear_propagation  S(n=8)      S(n=12)     ratio"]
    for rear, (small, large) in results.items():
        lines.append(f"{rear:<16}  {small:.4e}  {large:.4e}  {large/small:.2f}")
        assert large > small
    render_rows("\n".join(lines))


def test_ablation_duration_scaling(benchmark, render_rows):
    """Unsafety grows with κ; trip-duration growth holds for every κ."""

    def sweep():
        out = {}
        for kappa in (0.0, 0.1, 0.2):
            engine = AnalyticalEngine(AHSParameters(duration_scaling=kappa))
            curve = engine.unsafety([2.0, 10.0]).unsafety
            out[kappa] = curve
        return out

    results = benchmark(sweep)
    lines = ["duration_scaling  S(2h)       S(10h)"]
    previous = None
    for kappa, curve in sorted(results.items()):
        lines.append(f"{kappa:<16}  {curve[0]:.4e}  {curve[1]:.4e}")
        assert curve[1] > curve[0]
        if previous is not None:
            assert curve[1] >= previous
        previous = curve[1]
    render_rows("\n".join(lines))


def test_ablation_success_probability_scale(benchmark, render_rows):
    """Scaling all q_m down raises unsafety but keeps λ-sensitivity."""

    def sweep():
        out = {}
        for scale in (1.0, 0.98, 0.95):
            probs = {
                m: q * scale
                for m, q in AHSParameters().success_probabilities.items()
            }
            low = unsafety_at_6h(
                AHSParameters(
                    success_probabilities=probs, base_failure_rate=1e-6
                )
            )
            high = unsafety_at_6h(
                AHSParameters(
                    success_probabilities=probs, base_failure_rate=1e-5
                )
            )
            out[scale] = (low, high)
        return out

    results = benchmark(sweep)
    lines = ["q-scale  S(1e-6)     S(1e-5)     ratio"]
    for scale, (low, high) in results.items():
        lines.append(f"{scale:<7}  {low:.4e}  {high:.4e}  {high/low:.0f}")
        assert high > 30.0 * low
    render_rows("\n".join(lines))
