"""Figure 10 — S(t) versus trip duration for different platoon sizes n.

Paper parameters: λ = 1e-5/hr, join 12/hr, leave 4/hr, strategy DD.
Shape targets: S(t) grows with t; larger n is markedly less safe.
"""

import numpy as np

from benchmarks.conftest import run_and_render


def test_figure10(benchmark, render_rows):
    result, rendered = benchmark(run_and_render, "figure10")
    render_rows(rendered)
    for values in result.series.values():
        assert (np.diff(values) > 0).all()
    assert (result.series["n=12"] > result.series["n=8"]).all()
