"""Flat vs adaptive allocation: the orchestrator's reason to exist.

Runs the same inflated-rate Figure-12-shaped sweep (S(t) at the horizon
versus platoon size, one series per failure rate — the full figure's
(lambda, n) grid) to the same uniform relative-CI target twice: once
under the non-adaptive ``flat`` policy (equal chunks to every
unconverged point, the classic fixed-allocation baseline) and once under
the adaptive ``greedy`` policy (widest-predicted-CI first).  The failure
rates are inflated as in ``bench_parallel.py`` so crude Monte-Carlo sees
events and the whole comparison runs in seconds.

Directly runnable as the CI gate::

    PYTHONPATH=src python benchmarks/bench_orchestrate.py --smoke --json BENCH_orchestrate.json

which prints a comparison table, writes ``BENCH_orchestrate.json`` and
exits non-zero unless **both** policies reach the target and the
adaptive policy spends **fewer** replications than flat (the acceptance
bar: adaptive reaches the target CI within — and measurably under — the
flat budget).  Both runs share one seed and the deterministic round
schedule, so the spent/rounds numbers are bit-stable across hosts and
worker counts; the gate is not a flaky timing comparison.
"""

import argparse
import json
import sys

from repro.core import AHSParameters
from repro.orchestrate import Budget, EstimatorPolicy, SweepPoint, orchestrate
from repro.runtime import ParallelRunner

SEED = 2009
#: generous pool; the runs should stop on "converged" long before this
POOL = 200_000
#: small chunks -> fine-grained rounds, where adaptivity shows
CHUNK_SIZE = 32
TARGET_RELATIVE_CI = 0.3


def sweep(smoke: bool) -> list[SweepPoint]:
    """Figure-12 shape at benchmark rates: a (lambda, n) grid.

    The lambda spread is what makes the sweep heterogeneous — the rare
    series needs an order of magnitude more replications per point than
    the common one, which is exactly the situation adaptive allocation
    exists for.
    """
    lambdas = (1e-1, 2e-2) if smoke else (5e-2, 1e-2)
    return [
        SweepPoint(
            point_id=f"bench12/lambda={lam:g}/n={n}",
            params=AHSParameters(base_failure_rate=lam, max_platoon_size=n),
            times=(1.0, 2.0),
            label=f"lambda={lam:g} @ n={n}",
        )
        for lam in lambdas
        for n in (2, 4)
    ]


def run_policy(policy: str, points, target: float, workers: int):
    budget = Budget(replications=POOL, target_relative_ci=target)
    runner = ParallelRunner(workers=workers, chunk_size=CHUNK_SIZE)
    try:
        report = orchestrate(
            points,
            budget,
            runner,
            policy=policy,
            estimator_policy=EstimatorPolicy(forced="simulation"),
            seed=SEED,
        )
    finally:
        runner.close()
    return {
        "policy": policy,
        "spent": report.ledger["spent"],
        "rounds": report.ledger["rounds"],
        "stop_reason": report.ledger["stop_reason"],
        "converged": report.all_converged,
        "widest_relative_ci": max(
            (p.relative_ci for p in report.points if p.relative_ci is not None),
            default=None,
        ),
        "per_point": report.ledger["per_point"],
    }


def compare(target: float, smoke: bool, workers: int) -> dict:
    points = sweep(smoke)
    flat = run_policy("flat", points, target, workers)
    adaptive = run_policy("greedy", points, target, workers)
    savings = (
        1.0 - adaptive["spent"] / flat["spent"] if flat["spent"] else 0.0
    )
    return {
        "workload": {
            "sweep": [p.point_id for p in points],
            "times": [1.0, 2.0],
            "target_relative_ci": target,
            "chunk_size": CHUNK_SIZE,
            "seed": SEED,
            "workers": workers,
        },
        "flat": flat,
        "adaptive": adaptive,
        "replication_savings": savings,
    }


def check(result: dict) -> list[str]:
    """The gate: both converge, adaptive spends strictly less than flat."""
    failures = []
    for name in ("flat", "adaptive"):
        run = result[name]
        if not run["converged"] or run["stop_reason"] != "converged":
            failures.append(
                f"{name} policy did not converge "
                f"(stop_reason={run['stop_reason']!r})"
            )
    if result["adaptive"]["spent"] >= result["flat"]["spent"]:
        failures.append(
            f"adaptive spent {result['adaptive']['spent']} replications "
            f"against flat's {result['flat']['spent']}; expected a "
            f"measurable saving"
        )
    return failures


def format_table(result: dict) -> str:
    lines = [
        f"{'policy':<10} {'replications':>13} {'rounds':>7} "
        f"{'widest rel-CI':>14}  stop",
    ]
    for name in ("flat", "adaptive"):
        run = result[name]
        widest = run["widest_relative_ci"]
        widest_text = "-" if widest is None else f"{widest:.2%}"
        lines.append(
            f"{run['policy']:<10} {run['spent']:>13} {run['rounds']:>7} "
            f"{widest_text:>14}  {run['stop_reason']}"
        )
    lines.append(
        f"adaptive saves {result['replication_savings']:.1%} of the flat "
        f"budget at the same target"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry point (bench modules are runnable under pytest too)
# ----------------------------------------------------------------------
def test_adaptive_reaches_target_under_flat_budget():
    result = compare(target=TARGET_RELATIVE_CI, smoke=True, workers=1)
    assert not check(result), check(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--target",
        type=float,
        default=TARGET_RELATIVE_CI,
        help="relative CI target",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="trimmed lambda grid for CI"
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--json", default=None, metavar="FILE")
    args = parser.parse_args(argv)

    result = compare(target=args.target, smoke=args.smoke, workers=args.workers)
    print(format_table(result))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2)
        print(f"[saved {args.json}]")

    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
