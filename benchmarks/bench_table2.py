"""Table 2 — catastrophic situations ST1-ST3."""

from benchmarks.conftest import run_and_render


def test_table2(benchmark, render_rows):
    result, rendered = benchmark(run_and_render, "table2")
    render_rows(rendered)
    assert [row["situation"] for row in result] == ["ST1", "ST2", "ST3"]
    assert all(row["matching_combinations"] > 0 for row in result)
