"""Figure 11 — S(t) versus trip duration for different failure rates λ.

Paper: n = 10; λ ∈ {1e-6, 1e-5, 1e-4} plotted, λ = 1e-7 quoted (≈1e-13).
Shape target: S(t) extremely sensitive to λ (paper: ×175 then ×40 at 6 h).
"""

from benchmarks.conftest import run_and_render


def test_figure11(benchmark, render_rows):
    result, rendered = benchmark(run_and_render, "figure11")
    render_rows(rendered)
    low = result.series["lambda=1e-06"]
    high = result.series["lambda=0.0001"]
    assert (high > 30.0 * low).all()
