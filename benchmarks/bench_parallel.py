"""Parallel runtime — serial vs multi-worker Monte Carlo on a Figure-10 load.

Same workload as ``bench_fig10`` at Monte-Carlo scale: S(t) for one
platoon size via :class:`~repro.core.partasks.UnsafetySimulationTask`.
Run with ``pytest benchmarks/bench_parallel.py --benchmark-only -s``;
the JSON artefact (``--benchmark-json``) has the same shape as the other
bench files.  Wall-clock speedup assertions only fire on hosts with
enough cores to show one (``os.cpu_count() >= 4``).
"""

import os
import time

import numpy as np
import pytest

from repro.core.parameters import AHSParameters
from repro.core.partasks import UnsafetySimulationTask
from repro.runtime import ParallelRunner, ResultCache

#: λ inflated to 1e-2/hr so 600 replications produce non-zero estimates
WORKLOAD = UnsafetySimulationTask(
    params=AHSParameters(max_platoon_size=4, base_failure_rate=1e-2),
    times=(0.5, 1.0, 2.0),
)
N_REPLICATIONS = 600
CHUNK_SIZE = 100
SEED = 2009


def _run(workers: int, cache=None):
    with ParallelRunner(
        workers=workers, chunk_size=CHUNK_SIZE, cache=cache
    ) as runner:
        return runner.run(WORKLOAD, seed=SEED, n_replications=N_REPLICATIONS)


@pytest.fixture(scope="module")
def serial_reference():
    return _run(1)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_unsafety(benchmark, workers, serial_reference):
    result = benchmark.pedantic(_run, args=(workers,), rounds=1, iterations=1)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["replications"] = result.n_replications
    benchmark.extra_info["replications_per_sec"] = round(
        result.telemetry.units_per_second, 1
    )
    # any worker count reproduces the serial answer bit-for-bit
    assert np.array_equal(result.values, serial_reference.values)
    assert np.array_equal(result.half_widths, serial_reference.half_widths)
    assert (result.values > 0).all()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup needs >= 4 physical cores to manifest",
)
def test_four_workers_at_least_twice_as_fast():
    start = time.perf_counter()
    _run(1)
    serial_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    _run(4)
    parallel_elapsed = time.perf_counter() - start

    assert serial_elapsed / parallel_elapsed >= 2.0


def test_warm_cache_rerun_under_ten_percent(tmp_path):
    cache = ResultCache(tmp_path)

    start = time.perf_counter()
    cold = _run(1, cache=cache)
    cold_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    warm = _run(1, cache=cache)
    warm_elapsed = time.perf_counter() - start

    assert not cold.from_cache
    assert warm.from_cache
    assert np.array_equal(cold.values, warm.values)
    assert warm_elapsed < 0.1 * cold_elapsed
