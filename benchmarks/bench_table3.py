"""Table 3 — the four coordination strategies and their involvement."""

from benchmarks.conftest import run_and_render


def test_table3(benchmark, render_rows):
    result, rendered = benchmark(run_and_render, "table3")
    render_rows(rendered)
    assert [row["strategy"] for row in result] == ["DD", "DC", "CD", "CC"]
    by_strategy = {row["strategy"]: row for row in result}
    # centralized inter-platoon TIE-E involves many more vehicles
    assert (
        by_strategy["CC"]["assistants_TIE-E"]
        > by_strategy["DD"]["assistants_TIE-E"]
    )
