"""Engine micro-benchmarks: the substrates behind the figures.

Not a paper artifact — tracks the performance of the SAN executors, the
state-space generator, the uniformization solver and the kinematic
substrate, so regressions in the machinery are visible.

Besides the pytest-benchmark cases, the module is directly runnable as an
interpreted-vs-compiled jump-engine comparison::

    PYTHONPATH=src python benchmarks/bench_engines.py --sizes 5 10 20

which prints a speedup table, writes ``BENCH_engines.json`` and exits
non-zero if the compiled engine is ever slower than the interpreted one
(the CI bench-smoke gate).
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core import AHSParameters, AnalyticalEngine, build_composed_model
from repro.ctmc import CTMC, transient_distribution
from repro.san import (
    MarkovJumpSimulator,
    SANSimulator,
    generate_state_space,
    make_jump_engine,
)
from repro.stochastic import StreamFactory

from tests.conftest import make_two_state_model


def test_analytical_engine_build_and_solve(benchmark):
    def solve():
        engine = AnalyticalEngine(AHSParameters())
        return engine.unsafety([2.0, 6.0, 10.0]).unsafety

    values = benchmark(solve)
    assert (values > 0).all()


def test_event_driven_simulator_throughput(benchmark):
    model, up, down = make_two_state_model(fail_rate=5.0, repair_rate=5.0)
    simulator = SANSimulator(model)
    factory = StreamFactory(1)
    streams = iter(factory.stream_batch("bench", 10_000))

    def run_one():
        return simulator.run(next(streams), horizon=20.0).firings

    firings = benchmark(run_one)
    assert firings > 0


def test_jump_simulator_on_composed_ahs(benchmark):
    ahs = build_composed_model(
        AHSParameters(max_platoon_size=2, base_failure_rate=1e-4)
    )
    simulator = MarkovJumpSimulator(ahs.model)
    factory = StreamFactory(2)
    streams = iter(factory.stream_batch("bench", 5_000))

    def run_one():
        return simulator.run(next(streams), horizon=2.0).firings

    benchmark(run_one)


def test_compiled_engine_on_composed_ahs(benchmark):
    ahs = build_composed_model(
        AHSParameters(max_platoon_size=2, base_failure_rate=1e-4)
    )
    simulator = make_jump_engine(ahs.model, engine="compiled")
    factory = StreamFactory(2)
    streams = iter(factory.stream_batch("bench", 5_000))

    def run_one():
        return simulator.run(next(streams), horizon=2.0).firings

    benchmark(run_one)


# ----------------------------------------------------------------------
# interpreted-vs-compiled comparison (python benchmarks/bench_engines.py)
# ----------------------------------------------------------------------
def _time_engine(model, engine: str, replications: int, horizon: float) -> dict:
    """Throughput of one engine on ``model`` over fixed replications."""
    simulator = make_jump_engine(model, engine=engine)
    factory = StreamFactory(2024)
    streams = factory.stream_batch("bench", replications)
    started = time.perf_counter()
    firings = sum(
        simulator.run(stream, horizon).firings for stream in streams
    )
    elapsed = time.perf_counter() - started
    return {
        "engine": engine,
        "replications": replications,
        "events": int(firings),
        "elapsed_seconds": elapsed,
        "events_per_sec": firings / elapsed if elapsed > 0 else 0.0,
    }


def compare_engines(
    sizes=(5, 10, 20), replications: int = 40, horizon: float = 2.0
) -> list[dict]:
    """Run both engines on the composed model at each platoon size.

    Both engines see the same seeds, so the ``events`` columns double as
    an equivalence check (they must match exactly).
    """
    rows = []
    for n in sizes:
        model = build_composed_model(AHSParameters(max_platoon_size=n)).model
        interpreted = _time_engine(model, "interpreted", replications, horizon)
        compiled = _time_engine(model, "compiled", replications, horizon)
        if interpreted["events"] != compiled["events"]:
            raise AssertionError(
                f"n={n}: engines disagree on event counts "
                f"({interpreted['events']} vs {compiled['events']})"
            )
        rows.append(
            {
                "max_platoon_size": n,
                "places": len(model.places),
                "timed_activities": len(model.timed_activities),
                "horizon": horizon,
                "interpreted": interpreted,
                "compiled": compiled,
                "speedup": interpreted["elapsed_seconds"]
                / compiled["elapsed_seconds"],
            }
        )
    return rows


def _render_table(rows: list[dict]) -> str:
    lines = [
        f"{'n':>4}  {'places':>6}  {'interp ev/s':>12}  "
        f"{'compiled ev/s':>13}  {'speedup':>7}",
    ]
    for row in rows:
        lines.append(
            "{n:>4}  {places:>6}  {interp:>12.0f}  {comp:>13.0f}  "
            "{speed:>6.2f}x".format(
                n=row["max_platoon_size"],
                places=row["places"],
                interp=row["interpreted"]["events_per_sec"],
                comp=row["compiled"]["events_per_sec"],
                speed=row["speedup"],
            )
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the interpreted and compiled SAN jump engines."
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[5, 10, 20],
        help="max_platoon_size values to benchmark (default: 5 10 20)",
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=40,
        help="replications per engine per size (default: 40)",
    )
    parser.add_argument(
        "--horizon", type=float, default=2.0, help="trip horizon in hours"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast configuration for CI (sizes 3 5, 10 replications)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_engines.json",
        help="output path for the machine-readable results",
    )
    args = parser.parse_args(argv)
    sizes = [3, 5] if args.smoke else args.sizes
    replications = 10 if args.smoke else args.replications

    rows = compare_engines(sizes, replications, args.horizon)
    print(_render_table(rows))
    record = {
        "benchmark": "san-jump-engines",
        "replications": replications,
        "horizon": args.horizon,
        "rows": rows,
    }
    with open(args.json, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")

    slower = [row for row in rows if row["speedup"] < 1.0]
    if slower:
        ns = [row["max_platoon_size"] for row in slower]
        print(f"FAIL: compiled engine slower than interpreted at n={ns}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())


def test_statespace_generation_tiny_ahs(benchmark):
    params = AHSParameters(max_platoon_size=1, base_failure_rate=1e-3)

    def generate():
        ahs = build_composed_model(params)
        predicate = ahs.unsafe_predicate()
        return generate_state_space(
            ahs.model, absorbing=lambda m: predicate(m), max_states=100_000
        ).n_states

    n_states = benchmark(generate)
    assert n_states > 10


def test_uniformization_solver(benchmark):
    rng = np.random.default_rng(5)
    n = 500
    q = np.zeros((n, n))
    for i in range(n - 1):
        q[i, i + 1] = rng.uniform(1.0, 5.0)
        q[i + 1, i] = rng.uniform(1.0, 5.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    chain = CTMC(q)

    def solve():
        return transient_distribution(chain, [1.0, 5.0, 10.0])

    result = benchmark(solve)
    assert np.allclose(result.sum(axis=1), 1.0, atol=1e-7)


def test_kinematic_maneuver_execution(benchmark):
    from repro.agents import calibrate_maneuver_durations
    from repro.core.maneuvers import Maneuver

    def calibrate():
        return calibrate_maneuver_durations(
            platoon_sizes=(6,), repetitions=1, maneuvers=(Maneuver.TIE,)
        ).mean_duration(Maneuver.TIE, 6)

    duration = benchmark(calibrate)
    assert duration > 0
