"""Engine micro-benchmarks: the substrates behind the figures.

Not a paper artifact — tracks the performance of the SAN executors, the
state-space generator, the uniformization solver and the kinematic
substrate, so regressions in the machinery are visible.

Besides the pytest-benchmark cases, the module is directly runnable as a
jump-engine comparison (interpreted vs compiled vs batched)::

    PYTHONPATH=src python benchmarks/bench_engines.py --sizes 5 10 20

which prints a speedup table, writes ``BENCH_engines.json`` and exits
non-zero on a performance regression: the compiled engine must beat the
interpreted one at every size, the batched engine (at its widest
benchmarked batch) must beat compiled at the largest size, the stepped
engine's tabulated refresh must hold >= 1.5x over batched at n=10 /
batch 256, and one cross-point tensorized run must hold >= 1.5x over
per-point stepped loops on the figure-shaped sweeps (the CI bench-smoke
gates).  All engines replay the same seeds, so the ``events`` columns
double as an equivalence check.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core import AHSParameters, AnalyticalEngine, build_composed_model
from repro.ctmc import CTMC, transient_distribution
from repro.san import (
    MarkovJumpSimulator,
    SANSimulator,
    generate_state_space,
    make_jump_engine,
)
from repro.stochastic import StreamFactory

from tests.conftest import make_two_state_model


def test_analytical_engine_build_and_solve(benchmark):
    def solve():
        engine = AnalyticalEngine(AHSParameters())
        return engine.unsafety([2.0, 6.0, 10.0]).unsafety

    values = benchmark(solve)
    assert (values > 0).all()


def test_event_driven_simulator_throughput(benchmark):
    model, up, down = make_two_state_model(fail_rate=5.0, repair_rate=5.0)
    simulator = SANSimulator(model)
    factory = StreamFactory(1)
    streams = iter(factory.stream_batch("bench", 10_000))

    def run_one():
        return simulator.run(next(streams), horizon=20.0).firings

    firings = benchmark(run_one)
    assert firings > 0


def test_jump_simulator_on_composed_ahs(benchmark):
    ahs = build_composed_model(
        AHSParameters(max_platoon_size=2, base_failure_rate=1e-4)
    )
    simulator = MarkovJumpSimulator(ahs.model)
    factory = StreamFactory(2)
    streams = iter(factory.stream_batch("bench", 5_000))

    def run_one():
        return simulator.run(next(streams), horizon=2.0).firings

    benchmark(run_one)


def test_compiled_engine_on_composed_ahs(benchmark):
    ahs = build_composed_model(
        AHSParameters(max_platoon_size=2, base_failure_rate=1e-4)
    )
    simulator = make_jump_engine(ahs.model, engine="compiled")
    factory = StreamFactory(2)
    streams = iter(factory.stream_batch("bench", 5_000))

    def run_one():
        return simulator.run(next(streams), horizon=2.0).firings

    benchmark(run_one)


def test_batched_engine_on_composed_ahs(benchmark):
    ahs = build_composed_model(
        AHSParameters(max_platoon_size=2, base_failure_rate=1e-4)
    )
    simulator = make_jump_engine(ahs.model, engine="batched", batch_size=64)
    factory = StreamFactory(2)
    batches = iter(
        [factory.stream_batch(f"bench-{i}", 64) for i in range(200)]
    )

    def run_batch():
        runs = simulator.run_batch(next(batches), horizon=2.0)
        return sum(run.firings for run in runs)

    benchmark(run_batch)


def test_stepped_engine_on_composed_ahs(benchmark):
    ahs = build_composed_model(
        AHSParameters(max_platoon_size=2, base_failure_rate=1e-4)
    )
    simulator = make_jump_engine(ahs.model, engine="stepped", batch_size=64)
    factory = StreamFactory(2)
    batches = iter(
        [factory.stream_batch(f"bench-{i}", 64) for i in range(200)]
    )

    def run_batch():
        runs = simulator.run_batch(next(batches), horizon=2.0)
        return sum(run.firings for run in runs)

    benchmark(run_batch)


# ----------------------------------------------------------------------
# interpreted-vs-compiled comparison (python benchmarks/bench_engines.py)
# ----------------------------------------------------------------------
def _time_engine(
    model,
    engine: str,
    replications: int,
    horizon: float,
    batch_size: int = 256,
    repeats: int = 1,
) -> dict:
    """Steady-state throughput of one engine over fixed replications.

    One untimed warm-up pass precedes the measurement so per-engine
    lazy state (compiled programs, the stepped engine's refresh tables)
    is populated before the clock starts, and the best of ``repeats``
    timed passes is reported — the figure is the sustained rate a sweep
    sees, not the first-batch cost or a scheduler hiccup.  Every pass
    replays identical streams (fresh factory, same names), so the event
    count is pass-invariant.
    """
    simulator = make_jump_engine(model, engine=engine, batch_size=batch_size)
    run_batch = getattr(simulator, "run_batch", None)
    warmup = StreamFactory(2024).stream_batch("warmup", batch_size)
    if callable(run_batch):
        run_batch(warmup, horizon)
    else:
        for stream in warmup[:8]:
            simulator.run(stream, horizon)
    firings = 0
    elapsed = float("inf")
    for _ in range(max(1, repeats)):
        streams = StreamFactory(2024).stream_batch("bench", replications)
        started = time.perf_counter()
        if callable(run_batch):
            pass_firings = 0
            for start in range(0, replications, batch_size):
                pass_firings += sum(
                    run.firings
                    for run in run_batch(
                        streams[start:start + batch_size], horizon
                    )
                )
        else:
            pass_firings = sum(
                simulator.run(stream, horizon).firings for stream in streams
            )
        elapsed = min(elapsed, time.perf_counter() - started)
        firings = pass_firings
    result = {
        "engine": engine,
        "replications": replications,
        "events": int(firings),
        "elapsed_seconds": elapsed,
        "events_per_sec": firings / elapsed if elapsed > 0 else 0.0,
    }
    if engine in ("batched", "stepped"):
        result["batch_size"] = batch_size
    return result


def compare_engines(
    sizes=(5, 10, 20),
    replications: int = 40,
    horizon: float = 2.0,
    batch_sizes=(64, 256),
) -> list[dict]:
    """Run every engine on the composed model at each platoon size.

    All engines see the same seeds, so the ``events`` columns double as
    an equivalence check (they must match exactly).  The batched and
    stepped engines are timed once per entry of ``batch_sizes``;
    replications are topped up to the widest batch so every lockstep row
    is actually used.
    """
    replications = max(replications, max(batch_sizes))
    rows = []
    for n in sizes:
        model = build_composed_model(AHSParameters(max_platoon_size=n)).model
        interpreted = _time_engine(model, "interpreted", replications, horizon)
        compiled = _time_engine(model, "compiled", replications, horizon)
        # the batch engines are cheap enough for best-of-3 timing, which
        # the stepped-vs-batched regression gate needs to stay out of
        # scheduler noise; the scalar engines dominate wall time and get
        # a single pass
        batched = [
            _time_engine(
                model, "batched", replications, horizon, width, repeats=3
            )
            for width in batch_sizes
        ]
        stepped = [
            _time_engine(
                model, "stepped", replications, horizon, width, repeats=3
            )
            for width in batch_sizes
        ]
        for candidate in [compiled] + batched + stepped:
            if interpreted["events"] != candidate["events"]:
                raise AssertionError(
                    f"n={n}: engines disagree on event counts "
                    f"(interpreted {interpreted['events']} vs "
                    f"{candidate['engine']} {candidate['events']})"
                )
        best_batched = max(batched, key=lambda b: b["events_per_sec"])
        best_stepped = max(stepped, key=lambda b: b["events_per_sec"])
        rows.append(
            {
                "max_platoon_size": n,
                "places": len(model.places),
                "timed_activities": len(model.timed_activities),
                "horizon": horizon,
                "interpreted": interpreted,
                "compiled": compiled,
                "batched": batched,
                "stepped": stepped,
                "speedup": interpreted["elapsed_seconds"]
                / compiled["elapsed_seconds"],
                "batched_speedup": compiled["elapsed_seconds"]
                / best_batched["elapsed_seconds"],
                "stepped_speedup": best_batched["elapsed_seconds"]
                / best_stepped["elapsed_seconds"],
            }
        )
    return rows


def _render_table(rows: list[dict]) -> str:
    lines = [
        f"{'n':>4}  {'places':>6}  {'interp ev/s':>12}  "
        f"{'compiled ev/s':>13}  {'batched ev/s':>12}  "
        f"{'stepped ev/s':>12}  "
        f"{'vs interp':>9}  {'vs compiled':>11}  {'vs batched':>10}",
    ]
    for row in rows:
        best_batched = max(
            row["batched"], key=lambda b: b["events_per_sec"]
        )
        best_stepped = max(
            row["stepped"], key=lambda b: b["events_per_sec"]
        )
        lines.append(
            "{n:>4}  {places:>6}  {interp:>12.0f}  {comp:>13.0f}  "
            "{batch:>12.0f}  {step:>12.0f}  {speed:>8.2f}x  "
            "{bspeed:>9.2f}x  {sspeed:>8.2f}x  (B={width})".format(
                n=row["max_platoon_size"],
                places=row["places"],
                interp=row["interpreted"]["events_per_sec"],
                comp=row["compiled"]["events_per_sec"],
                batch=best_batched["events_per_sec"],
                step=best_stepped["events_per_sec"],
                speed=row["speedup"],
                bspeed=row["batched_speedup"],
                sspeed=row["stepped_speedup"],
                width=best_stepped["batch_size"],
            )
        )
    return "\n".join(lines)


def compare_sweep(
    chunks: int = 4,
    chunk_size: int = 32,
    repeats: int = 3,
) -> list[dict]:
    """Cross-point tensorized dispatch vs per-point stepped loops.

    Replays the orchestrator's round shape on two figure-shaped sweeps:
    every point is awarded ``chunks`` chunks of ``chunk_size``
    replications, and the per-point path runs one
    :meth:`SteppedJumpEngine.run_batch` per chunk (exactly what
    ``--sweep-batch`` executes inside a group) while the tensorized path
    stacks all chunks of all points into one
    :class:`~repro.san.multipoint.MultiPointContext` run.  Both paths
    replay identical streams, so the event totals double as an
    equivalence check.
    """
    from repro.san import MultiPointContext, MultiPointJob

    sweeps = [
        # fig-10 shape: platoon-size sweep, common horizon (ragged
        # layouts padded to the widest point)
        ("fig10-n-sweep", [(4, 4.0), (8, 4.0), (12, 4.0)]),
        # fig-12 shape: mission-time sweep over one model
        ("fig12-mission-sweep", [(10, 2.0), (10, 4.0), (10, 6.0)]),
    ]
    rows = []
    for name, specs in sweeps:
        engines = []
        for n, horizon in specs:
            model = build_composed_model(
                AHSParameters(max_platoon_size=n)
            ).model
            engines.append(
                (make_jump_engine(model, engine="stepped",
                                  batch_size=chunk_size), horizon)
            )
        for index, (engine, horizon) in enumerate(engines):
            engine.run_batch(
                StreamFactory(2024).stream_batch(f"warm{index}", chunk_size),
                horizon,
            )

        def stream_grid():
            return [
                [
                    StreamFactory(2024).stream_batch(
                        f"p{index}c{chunk}", chunk_size
                    )
                    for chunk in range(chunks)
                ]
                for index in range(len(engines))
            ]

        per_point = tensorized = float("inf")
        events_pp = events_tz = 0
        for _ in range(max(1, repeats)):
            grid = stream_grid()
            started = time.perf_counter()
            fired = 0
            for (engine, horizon), chunk_list in zip(engines, grid):
                for streams in chunk_list:
                    fired += sum(
                        run.firings
                        for run in engine.run_batch(streams, horizon)
                    )
            per_point = min(per_point, time.perf_counter() - started)
            events_pp = fired

            grid = stream_grid()
            jobs = [
                MultiPointJob(engine, streams, horizon, None)
                for (engine, horizon), chunk_list in zip(engines, grid)
                for streams in chunk_list
            ]
            started = time.perf_counter()
            results = MultiPointContext(jobs).run()
            tensorized = min(tensorized, time.perf_counter() - started)
            events_tz = sum(
                run.firings for runs in results for run in runs
            )
        if events_pp != events_tz:
            raise AssertionError(
                f"{name}: tensorized and per-point paths disagree on "
                f"event counts ({events_tz} vs {events_pp})"
            )
        rows.append(
            {
                "sweep": name,
                "points": len(specs),
                "chunks_per_point": chunks,
                "chunk_size": chunk_size,
                "events": int(events_pp),
                "per_point_seconds": per_point,
                "tensorized_seconds": tensorized,
                "tensorized_speedup": per_point / tensorized,
            }
        )
    return rows


def _render_sweep_table(rows: list[dict]) -> str:
    lines = [
        f"{'sweep':>20}  {'points':>6}  {'rows':>6}  "
        f"{'per-point s':>11}  {'tensorized s':>12}  {'speedup':>8}",
    ]
    for row in rows:
        total_rows = (
            row["points"] * row["chunks_per_point"] * row["chunk_size"]
        )
        lines.append(
            "{sweep:>20}  {points:>6}  {rows:>6}  {pp:>11.3f}  "
            "{tz:>12.3f}  {speed:>7.2f}x".format(
                sweep=row["sweep"],
                points=row["points"],
                rows=total_rows,
                pp=row["per_point_seconds"],
                tz=row["tensorized_seconds"],
                speed=row["tensorized_speedup"],
            )
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the interpreted and compiled SAN jump engines."
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[5, 10, 20],
        help="max_platoon_size values to benchmark (default: 5 10 20)",
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=40,
        help="replications per engine per size (default: 40)",
    )
    parser.add_argument(
        "--horizon", type=float, default=2.0, help="trip horizon in hours"
    )
    parser.add_argument(
        "--batch-sizes",
        type=int,
        nargs="+",
        default=[64, 256],
        help="lockstep widths for the batched engine (default: 64 256)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast configuration for CI (sizes 3 10, 64 replications; "
        "n=10 is the smallest size where the batched kernel's row "
        "amortization is representative, so the gate means something)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_engines.json",
        help="output path for the machine-readable results",
    )
    args = parser.parse_args(argv)
    sizes = [3, 10] if args.smoke else args.sizes
    replications = 64 if args.smoke else args.replications
    batch_sizes = [64, 256] if args.smoke else args.batch_sizes

    rows = compare_engines(sizes, replications, args.horizon, batch_sizes)
    print(_render_table(rows))
    sweep_rows = compare_sweep(repeats=2 if args.smoke else 3)
    print()
    print(_render_sweep_table(sweep_rows))
    record = {
        "benchmark": "san-jump-engines",
        "replications": max(replications, max(batch_sizes)),
        "horizon": args.horizon,
        "batch_sizes": list(batch_sizes),
        "rows": rows,
        "sweeps": sweep_rows,
    }
    with open(args.json, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")

    failed = False
    slower = [row for row in rows if row["speedup"] < 1.0]
    if slower:
        ns = [row["max_platoon_size"] for row in slower]
        print(f"FAIL: compiled engine slower than interpreted at n={ns}")
        failed = True
    # regression gate for the batched kernel: at the largest (most
    # vectorization-friendly) size, its best width must beat compiled
    largest = max(rows, key=lambda row: row["max_platoon_size"])
    if largest["batched_speedup"] < 1.0:
        print(
            "FAIL: batched engine slower than compiled at "
            f"n={largest['max_platoon_size']} "
            f"({largest['batched_speedup']:.2f}x)"
        )
        failed = True
    # regression gate for the stepped engine's tabulated refresh: at
    # n=10 / batch 256 (the reference configuration of
    # docs/engine_perf.md) it must hold >= 1.5x over batched at the
    # same width
    for row in rows:
        if row["max_platoon_size"] != 10:
            continue
        pairs = {
            (entry["engine"], entry["batch_size"]): entry
            for entry in row["batched"] + row["stepped"]
        }
        batched_256 = pairs.get(("batched", 256))
        stepped_256 = pairs.get(("stepped", 256))
        if batched_256 is None or stepped_256 is None:
            continue
        ratio = (
            batched_256["elapsed_seconds"] / stepped_256["elapsed_seconds"]
        )
        if ratio < 1.5:
            print(
                "FAIL: stepped engine below the 1.5x gate over batched "
                f"at n=10, batch 256 ({ratio:.2f}x)"
            )
            failed = True
    # regression gate for cross-point tensorization: one stacked tensor
    # run must hold >= 1.5x over per-point stepped loops on both
    # figure-shaped sweeps (measured >= 2x on idle machines; 1.5 leaves
    # headroom for CI scheduler noise)
    for row in sweep_rows:
        if row["tensorized_speedup"] < 1.5:
            print(
                f"FAIL: tensorized sweep below the 1.5x gate over "
                f"per-point dispatch on {row['sweep']} "
                f"({row['tensorized_speedup']:.2f}x)"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())


def test_statespace_generation_tiny_ahs(benchmark):
    params = AHSParameters(max_platoon_size=1, base_failure_rate=1e-3)

    def generate():
        ahs = build_composed_model(params)
        predicate = ahs.unsafe_predicate()
        return generate_state_space(
            ahs.model, absorbing=lambda m: predicate(m), max_states=100_000
        ).n_states

    n_states = benchmark(generate)
    assert n_states > 10


def test_uniformization_solver(benchmark):
    rng = np.random.default_rng(5)
    n = 500
    q = np.zeros((n, n))
    for i in range(n - 1):
        q[i, i + 1] = rng.uniform(1.0, 5.0)
        q[i + 1, i] = rng.uniform(1.0, 5.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    chain = CTMC(q)

    def solve():
        return transient_distribution(chain, [1.0, 5.0, 10.0])

    result = benchmark(solve)
    assert np.allclose(result.sum(axis=1), 1.0, atol=1e-7)


def test_kinematic_maneuver_execution(benchmark):
    from repro.agents import calibrate_maneuver_durations
    from repro.core.maneuvers import Maneuver

    def calibrate():
        return calibrate_maneuver_durations(
            platoon_sizes=(6,), repetitions=1, maneuvers=(Maneuver.TIE,)
        ).mean_duration(Maneuver.TIE, 6)

    duration = benchmark(calibrate)
    assert duration > 0
