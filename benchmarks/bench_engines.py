"""Engine micro-benchmarks: the substrates behind the figures.

Not a paper artifact — tracks the performance of the SAN executors, the
state-space generator, the uniformization solver and the kinematic
substrate, so regressions in the machinery are visible.
"""

import numpy as np

from repro.core import AHSParameters, AnalyticalEngine, build_composed_model
from repro.ctmc import CTMC, transient_distribution
from repro.san import MarkovJumpSimulator, SANSimulator, generate_state_space
from repro.stochastic import StreamFactory

from tests.conftest import make_two_state_model


def test_analytical_engine_build_and_solve(benchmark):
    def solve():
        engine = AnalyticalEngine(AHSParameters())
        return engine.unsafety([2.0, 6.0, 10.0]).unsafety

    values = benchmark(solve)
    assert (values > 0).all()


def test_event_driven_simulator_throughput(benchmark):
    model, up, down = make_two_state_model(fail_rate=5.0, repair_rate=5.0)
    simulator = SANSimulator(model)
    factory = StreamFactory(1)
    streams = iter(factory.stream_batch("bench", 10_000))

    def run_one():
        return simulator.run(next(streams), horizon=20.0).firings

    firings = benchmark(run_one)
    assert firings > 0


def test_jump_simulator_on_composed_ahs(benchmark):
    ahs = build_composed_model(
        AHSParameters(max_platoon_size=2, base_failure_rate=1e-4)
    )
    simulator = MarkovJumpSimulator(ahs.model)
    factory = StreamFactory(2)
    streams = iter(factory.stream_batch("bench", 5_000))

    def run_one():
        return simulator.run(next(streams), horizon=2.0).firings

    benchmark(run_one)


def test_statespace_generation_tiny_ahs(benchmark):
    params = AHSParameters(max_platoon_size=1, base_failure_rate=1e-3)

    def generate():
        ahs = build_composed_model(params)
        predicate = ahs.unsafe_predicate()
        return generate_state_space(
            ahs.model, absorbing=lambda m: predicate(m), max_states=100_000
        ).n_states

    n_states = benchmark(generate)
    assert n_states > 10


def test_uniformization_solver(benchmark):
    rng = np.random.default_rng(5)
    n = 500
    q = np.zeros((n, n))
    for i in range(n - 1):
        q[i, i + 1] = rng.uniform(1.0, 5.0)
        q[i + 1, i] = rng.uniform(1.0, 5.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    chain = CTMC(q)

    def solve():
        return transient_distribution(chain, [1.0, 5.0, 10.0])

    result = benchmark(solve)
    assert np.allclose(result.sum(axis=1), 1.0, atol=1e-7)


def test_kinematic_maneuver_execution(benchmark):
    from repro.agents import calibrate_maneuver_durations
    from repro.core.maneuvers import Maneuver

    def calibrate():
        return calibrate_maneuver_durations(
            platoon_sizes=(6,), repetitions=1, maneuvers=(Maneuver.TIE,)
        ).mean_duration(Maneuver.TIE, 6)

    duration = benchmark(calibrate)
    assert duration > 0
