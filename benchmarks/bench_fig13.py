"""Figure 13 — S(t) versus trip duration for different join/leave rates.

Paper: λ = 1e-5/hr, n = 8; load ρ = join/leave ∈ {1, 2}.
Shape targets: equal-ρ curves share the trend; ρ = 2 is (modestly) less
safe than ρ = 1.
"""

import numpy as np

from benchmarks.conftest import run_and_render


def test_figure13(benchmark, render_rows):
    result, rendered = benchmark(run_and_render, "figure13")
    render_rows(rendered)
    rho1 = next(k for k in result.series if "rho=1" in k)
    rho2 = next(k for k in result.series if "rho=2" in k)
    assert (result.series[rho2] > result.series[rho1]).all()
    assert (result.series[rho2] < 10 * result.series[rho1]).all()
