"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper through
the same code path as ``repro-cli`` and prints the rows/series the paper
reports (run with ``pytest benchmarks/ --benchmark-only -s`` to see them).
"""

from __future__ import annotations

import pytest


def run_and_render(experiment_id: str, fast: bool = True):
    """Run one registered experiment and return (result, rendered text)."""
    from repro.experiments import run_experiment

    outcome = run_experiment(experiment_id, fast=fast)
    return outcome.result, outcome.rendered


@pytest.fixture
def render_rows():
    """Print a rendered experiment report beneath the benchmark output."""

    def _print(rendered: str) -> None:
        print()
        print(rendered)

    return _print
