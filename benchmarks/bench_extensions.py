"""Extension benches: the paper's §5 future-work directions, built out.

* unsafety vs. number of platoons (the paper: "can be easily extended to
  analyze highways composed of a larger number of platoons");
* tornado sensitivity (systematising the paper's one-at-a-time studies);
* mean time to unsafety (the reciprocal deployment-level view of S(t));
* the Markov-assumption gap (exponential vs. matched-mean deterministic
  maneuver durations, by simulation).
"""

import numpy as np

from repro.core import (
    AHSParameters,
    MultiPlatoonEngine,
    markov_assumption_gap,
    mean_time_to_unsafety,
)
from repro.experiments.sensitivity import tornado


def test_multiplatoon_sweep(benchmark, render_rows):
    params = AHSParameters()

    def sweep():
        return {
            m: MultiPlatoonEngine(params, m).unsafety([6.0]).unsafety[0]
            for m in (2, 3, 4)
        }

    values = benchmark(sweep)
    lines = ["platoons  S(6h)"]
    for m, s in values.items():
        lines.append(f"{m:<8}  {s:.4e}")
    render_rows("\n".join(lines))
    assert values[2] < values[3] < values[4]


def test_sensitivity_tornado(benchmark, render_rows):
    rows = benchmark(tornado, AHSParameters(), 6.0)
    lines = ["parameter                        elasticity"]
    for row in rows:
        lines.append(f"{row.parameter:<32} {row.elasticity:+.2f}")
    render_rows("\n".join(lines))
    assert rows[0].parameter == "base_failure_rate"
    np.testing.assert_allclose(rows[0].elasticity, 2.0, atol=0.15)


def test_mean_time_to_unsafety(benchmark, render_rows):
    def compute():
        return {
            n: mean_time_to_unsafety(AHSParameters(max_platoon_size=n))
            for n in (8, 10, 12)
        }

    values = benchmark(compute)
    lines = ["n   MTTU (hours)"]
    for n, mttu in values.items():
        lines.append(f"{n:<3} {mttu:.3e}")
    render_rows("\n".join(lines))
    assert values[12] < values[10] < values[8]


def test_markov_assumption_gap(benchmark, render_rows):
    params = AHSParameters(max_platoon_size=2, base_failure_rate=0.05)

    def compute():
        return markov_assumption_gap(
            params,
            horizon=3.0,
            n_replications=250,
            seed=17,
            families=("exponential", "deterministic"),
        )

    gap = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["family         S(3h)"]
    for family, estimate in gap.estimates.items():
        lines.append(f"{family:<13}  {estimate.values[-1]:.4e}")
    render_rows("\n".join(lines))
    assert 0.0 <= gap.value("deterministic") <= 1.0
