"""Figure 15 — S(6 h) versus n for strategies DD/DC/CD/CC.

Paper: λ = 1e-5/hr, join 12/hr, leave 4/hr.
Shape target: the strategy ordering DD ≤ DC < CD ≤ CC holds at every n.
"""

import numpy as np

from benchmarks.conftest import run_and_render


def test_figure15(benchmark, render_rows):
    result, rendered = benchmark(run_and_render, "figure15")
    render_rows(rendered)
    assert (result.series["DD"] < result.series["CC"]).all()
    for values in result.series.values():
        assert (np.diff(values) > 0).all()
