"""Observability overhead benchmark: instrumented vs bare compiled engine.

Not a paper artifact — guards the "zero overhead when off, cheap when on"
contract of :mod:`repro.obs`.  Directly runnable::

    PYTHONPATH=src python benchmarks/bench_obs.py --smoke --json BENCH_obs.json

Runs the compiled jump engine on the composed AHS model three ways —
uninstrumented, with counter-level metrics (``level="counts"``), and with
full metrics plus a bounded trace recorder — over identical seeds, prints
an overhead table, writes ``BENCH_obs.json`` and exits non-zero if the
counter-level overhead exceeds the budget (10 % by default; the CI
obs-smoke gate).  Event counts must match exactly across all modes:
instrumentation never touches the RNG stream.

A second section times the **run ledger** (event bus + JSONL sink) around
whole serial ``unsafety`` runs on both the compiled and the stepped
engine.  Ledger emission is per-chunk driver-side bookkeeping — the
stepped engine's whole-loop batches never see it — so it is held to the
same ≤10 % budget, and the estimates must stay bit-identical with the
ledger on or off.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core import AHSParameters, build_composed_model, unsafety
from repro.obs import EventBus, MetricsRecorder, Observation, RunLedger, TraceRecorder
from repro.san import make_jump_engine
from repro.stochastic import StreamFactory

OVERHEAD_BUDGET = 0.10  # counter-level metrics may cost at most 10 %
#: engines the ledger-overhead section times (whole serial unsafety runs)
LEDGER_ENGINES = ("compiled", "stepped")


def _observation(mode: str):
    if mode == "off":
        return None
    if mode == "counts":
        return Observation(metrics=MetricsRecorder(level="counts"))
    if mode == "full+trace":
        return Observation(
            trace=TraceRecorder(capacity=10_000),
            metrics=MetricsRecorder(level="full"),
        )
    raise ValueError(f"unknown mode {mode!r}")


def _time_mode(model, mode: str, replications: int, horizon: float) -> dict:
    """Throughput of the compiled engine with one instrumentation mode."""
    observer = _observation(mode)
    simulator = make_jump_engine(model, engine="compiled", observer=observer)
    factory = StreamFactory(2024)
    streams = factory.stream_batch("bench", replications)
    started = time.perf_counter()
    firings = sum(
        simulator.run(stream, horizon).firings for stream in streams
    )
    elapsed = time.perf_counter() - started
    return {
        "mode": mode,
        "replications": replications,
        "events": int(firings),
        "elapsed_seconds": elapsed,
        "events_per_sec": firings / elapsed if elapsed > 0 else 0.0,
    }


def measure_overhead(
    size: int = 10, replications: int = 40, horizon: float = 2.0, repeats: int = 3
) -> dict:
    """Benchmark all instrumentation modes on one composed model.

    Each mode runs ``repeats`` times over the same seeds and the fastest
    pass is kept (overhead is a minimum-cost question; the slower passes
    measure machine noise).  All modes must report identical event counts.
    """
    model = build_composed_model(AHSParameters(max_platoon_size=size)).model
    modes = ("off", "counts", "full+trace")
    results = {}
    for mode in modes:
        passes = [
            _time_mode(model, mode, replications, horizon)
            for _ in range(repeats)
        ]
        results[mode] = min(passes, key=lambda row: row["elapsed_seconds"])
    baseline = results["off"]
    for mode in modes[1:]:
        if results[mode]["events"] != baseline["events"]:
            raise AssertionError(
                f"mode {mode!r} changed the event count "
                f"({results[mode]['events']} vs {baseline['events']}): "
                "instrumentation must not touch the RNG stream"
            )
    return {
        "max_platoon_size": size,
        "places": len(model.places),
        "timed_activities": len(model.timed_activities),
        "horizon": horizon,
        "repeats": repeats,
        "modes": results,
        "overhead": {
            mode: results[mode]["elapsed_seconds"] / baseline["elapsed_seconds"]
            - 1.0
            for mode in modes[1:]
        },
    }


def _time_ledgered_run(
    engine: str, size: int, replications: int, horizon: float, ledgered: bool
) -> dict:
    """One whole serial unsafety run, with or without a live run ledger."""
    params = AHSParameters(max_platoon_size=size, base_failure_rate=2e-2)
    kwargs = dict(
        times=(horizon / 2.0, horizon),
        method="simulation",
        n_replications=replications,
        seed=2024,
        engine=engine,
    )
    bus = None
    tmp = None
    if ledgered:
        tmp = tempfile.TemporaryDirectory()
        ledger = RunLedger(Path(tmp.name) / "bench.jsonl")
        bus = EventBus("run-bench-obs", sinks=[ledger])
    started = time.perf_counter()
    estimate = unsafety(params, events=bus, **kwargs)
    elapsed = time.perf_counter() - started
    events_emitted = 0
    if bus is not None:
        bus.close()
        events_emitted = bus.events_emitted
        tmp.cleanup()
    return {
        "mode": "ledger" if ledgered else "off",
        "engine": engine,
        "replications": replications,
        "elapsed_seconds": elapsed,
        "ledger_events": events_emitted,
        "replications_per_sec": (
            replications / elapsed if elapsed > 0 else 0.0
        ),
        "estimate": [repr(value) for value in estimate.values],
    }


def measure_ledger_overhead(
    size: int = 3,
    replications: int = 200,
    horizon: float = 1.0,
    repeats: int = 3,
    engines=LEDGER_ENGINES,
) -> dict:
    """Ledger-on vs ledger-off timings of whole serial unsafety runs.

    Same fastest-of-``repeats`` protocol as :func:`measure_overhead`.
    The estimates of both modes must be bit-identical — the ledger is
    driver-side I/O and never touches the RNG stream.
    """
    results = {}
    for engine in engines:
        rows = {}
        for ledgered in (False, True):
            passes = [
                _time_ledgered_run(
                    engine, size, replications, horizon, ledgered
                )
                for _ in range(repeats)
            ]
            best = min(passes, key=lambda row: row["elapsed_seconds"])
            rows[best["mode"]] = best
        if rows["ledger"]["estimate"] != rows["off"]["estimate"]:
            raise AssertionError(
                f"engine {engine!r}: ledger changed the estimate "
                f"({rows['ledger']['estimate']} vs {rows['off']['estimate']})"
            )
        overhead = (
            rows["ledger"]["elapsed_seconds"] / rows["off"]["elapsed_seconds"]
            - 1.0
        )
        results[engine] = {"modes": rows, "overhead": overhead}
    return {
        "max_platoon_size": size,
        "replications": replications,
        "horizon": horizon,
        "repeats": repeats,
        "engines": results,
    }


def _render_ledger_table(section: dict) -> str:
    lines = [f"{'engine':>12}  {'reps/s off':>10}  {'reps/s on':>10}  "
             f"{'overhead':>8}  {'events':>6}"]
    for engine, row in section["engines"].items():
        off = row["modes"]["off"]
        on = row["modes"]["ledger"]
        lines.append(
            f"{engine:>12}  {off['replications_per_sec']:>10.1f}  "
            f"{on['replications_per_sec']:>10.1f}  "
            f"{row['overhead']:>+8.1%}  {on['ledger_events']:>6}"
        )
    lines.append(
        f"(run ledger around whole serial runs: n="
        f"{section['max_platoon_size']}, {section['replications']} "
        f"replications, horizon={section['horizon']}h)"
    )
    return "\n".join(lines)


def _render_table(row: dict) -> str:
    lines = [
        f"{'mode':>12}  {'events/s':>10}  {'overhead':>8}",
    ]
    baseline = row["modes"]["off"]
    for mode, result in row["modes"].items():
        overhead = (
            "--"
            if mode == "off"
            else f"{row['overhead'][mode]:+.1%}"
        )
        lines.append(
            f"{mode:>12}  {result['events_per_sec']:>10.0f}  {overhead:>8}"
        )
    lines.append(
        f"(n={row['max_platoon_size']}, {baseline['replications']} "
        f"replications, horizon={row['horizon']}h, "
        f"{baseline['events']} events per mode)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the overhead of repro.obs instrumentation."
    )
    parser.add_argument(
        "--size",
        type=int,
        default=10,
        help="max_platoon_size of the composed model (default: 10)",
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=40,
        help="replications per mode per pass (default: 40)",
    )
    parser.add_argument(
        "--horizon", type=float, default=2.0, help="trip horizon in hours"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing passes per mode; the fastest is kept (default: 3)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=OVERHEAD_BUDGET,
        help="maximum allowed counter-level overhead (default: 0.10)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI configuration (size 10, 20 replications)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_obs.json",
        help="output path for the machine-readable results",
    )
    args = parser.parse_args(argv)
    size = 10 if args.smoke else args.size
    replications = 20 if args.smoke else args.replications

    row = measure_overhead(size, replications, args.horizon, args.repeats)
    print(_render_table(row))
    ledger_row = measure_ledger_overhead(
        size=3 if args.smoke else 4,
        replications=120 if args.smoke else 200,
        horizon=args.horizon / 2.0,
        repeats=args.repeats,
    )
    print()
    print(_render_ledger_table(ledger_row))
    record = {
        "benchmark": "obs-overhead",
        "budget": args.budget,
        "result": row,
        "ledger": ledger_row,
    }
    with open(args.json, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")

    failed = False
    overhead = row["overhead"]["counts"]
    if overhead > args.budget:
        print(
            f"FAIL: counter-level metrics overhead {overhead:.1%} exceeds "
            f"the {args.budget:.0%} budget"
        )
        failed = True
    for engine, engine_row in ledger_row["engines"].items():
        if engine_row["overhead"] > args.budget:
            print(
                f"FAIL: run-ledger overhead {engine_row['overhead']:.1%} on "
                f"the {engine} engine exceeds the {args.budget:.0%} budget"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
