"""Figure 14 — S(t) versus trip duration for strategies DD/DC/CD/CC.

Paper: n = 10, λ = 1e-5/hr, join 12/hr, leave 4/hr.
Shape targets: decentralized inter-platoon coordination is safer; the
inter-platoon choice matters more than the intra-platoon one; the overall
impact stays within one order of magnitude.
"""

from benchmarks.conftest import run_and_render


def test_figure14(benchmark, render_rows):
    result, rendered = benchmark(run_and_render, "figure14")
    render_rows(rendered)
    assert (result.series["DD"] < result.series["CC"]).all()
    assert (result.series["CC"] < 10 * result.series["DD"]).all()
