"""Static-analyzer cost benchmark: ``analyze_model`` on built-in models.

Not a paper artifact — keeps ``repro-cli lint`` cheap enough to run as a
pre-simulation gate and in CI.  Directly runnable::

    PYTHONPATH=src python benchmarks/bench_lint.py --smoke --json BENCH_lint.json

Runs the full analyzer (all four families) over the composed AHS model
at increasing sizes, prints a per-family timing table, writes the JSON
artifact, and in ``--smoke`` mode exits non-zero if the full analysis of
the smoke-sized model exceeds the wall-clock budget or reports any
error — every built-in model must lint clean.
"""

import argparse
import json
import sys
import time

from repro.analysis import FAMILIES, Severity, analyze_model
from repro.core import AHSParameters, build_composed_model

#: --smoke budget for one full analysis of the n=2 composed model
SMOKE_BUDGET_SECONDS = 20.0


def _time_family(model, family: str, max_states: int) -> dict:
    started = time.perf_counter()
    report = analyze_model(model, families=[family], max_states=max_states)
    elapsed = time.perf_counter() - started
    return {
        "family": family,
        "elapsed_seconds": elapsed,
        "diagnostics": len(report.diagnostics),
    }


def measure(size: int, max_states: int) -> dict:
    """Time each analyzer family plus the combined run on one model."""
    params = AHSParameters(max_platoon_size=size)
    model = build_composed_model(params).model
    per_family = [
        _time_family(model, family, max_states) for family in FAMILIES
    ]
    started = time.perf_counter()
    report = analyze_model(model, max_states=max_states)
    combined = time.perf_counter() - started
    return {
        "max_platoon_size": size,
        "places": len(model.places),
        "timed_activities": len(model.timed_activities),
        "max_states": max_states,
        "families": per_family,
        "combined_seconds": combined,
        "errors": report.count(Severity.ERROR),
        "warnings": report.count(Severity.WARNING),
        "infos": report.count(Severity.INFO),
    }


def _render_table(rows: list[dict]) -> str:
    lines = [f"{'n':>4}  {'places':>6}  {'combined':>9}  per-family seconds"]
    for row in rows:
        families = "  ".join(
            f"{entry['family'][:4]}={entry['elapsed_seconds']:.2f}s"
            for entry in row["families"]
        )
        lines.append(
            f"{row['max_platoon_size']:>4}  {row['places']:>6}  "
            f"{row['combined_seconds']:>8.2f}s  {families}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure repro.analysis analyzer cost on built-in models."
    )
    parser.add_argument(
        "--sizes",
        default=None,
        help="comma-separated max_platoon_size values (default: 2,4 or "
        "2 with --smoke)",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=256,
        help="bounded-reachability cap per analysis (default: 256)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single small size; enforce the wall-clock budget and the "
        "zero-errors bar",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, help="write a JSON artifact"
    )
    args = parser.parse_args(argv)

    sizes = (
        [int(s) for s in args.sizes.split(",")]
        if args.sizes
        else ([2] if args.smoke else [2, 4])
    )
    rows = [measure(size, args.max_states) for size in sizes]
    print(_render_table(rows))
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump({"rows": rows}, handle, indent=2)
        print(f"[saved {args.json_path}]")

    if args.smoke:
        smoke = rows[0]
        if smoke["combined_seconds"] > SMOKE_BUDGET_SECONDS:
            print(
                f"FAIL: full analysis took {smoke['combined_seconds']:.2f}s "
                f"(budget {SMOKE_BUDGET_SECONDS:.0f}s)"
            )
            return 1
        if smoke["errors"]:
            print(f"FAIL: built-in model reported {smoke['errors']} error(s)")
            return 1
        print(
            f"OK: {smoke['combined_seconds']:.2f}s <= "
            f"{SMOKE_BUDGET_SECONDS:.0f}s budget, 0 errors"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
