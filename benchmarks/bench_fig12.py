"""Figure 12 — S(6 h) versus n for different failure rates λ.

Paper: join 12/hr, leave 4/hr; n swept 10..18.
Shape target: S grows with n for every λ.
"""

import numpy as np

from benchmarks.conftest import run_and_render


def test_figure12(benchmark, render_rows):
    result, rendered = benchmark(run_and_render, "figure12")
    render_rows(rendered)
    for values in result.series.values():
        assert (np.diff(values) > 0).all()
