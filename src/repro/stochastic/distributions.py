"""Probability distributions for activity firing times.

The SAN formalism attaches a :class:`Distribution` to every timed activity.
The paper's models are exclusively exponential ("we assume that all the
processes represented by timed activities have exponential distributions"),
but the library supports the usual dependability-modeling distributions so
that non-Markovian variants can be simulated (the CTMC engines require
exponential activities and reject anything else).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.stochastic.rng import RandomStream

__all__ = [
    "Distribution",
    "Exponential",
    "Deterministic",
    "Uniform",
    "Erlang",
    "Weibull",
    "LogNormal",
    "Triangular",
    "DiscreteChoice",
    "ShiftedExponential",
    "HyperExponential",
]


class Distribution(ABC):
    """A positive random variable used as an activity firing delay."""

    #: True when the distribution is exponential (memoryless), which is what
    #: the CTMC state-space engines require.
    is_exponential: bool = False

    @abstractmethod
    def sample(self, stream: RandomStream) -> float:
        """Draw one variate using ``stream``."""

    @abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @abstractmethod
    def variance(self) -> float:
        """Variance."""

    def rate(self) -> float:
        """Rate of the distribution if exponential.

        Raises
        ------
        TypeError
            For non-exponential distributions.
        """
        raise TypeError(f"{type(self).__name__} has no exponential rate")

    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.variance())


def _require_positive(name: str, value: float) -> float:
    if value <= 0.0 or not math.isfinite(value):
        raise ValueError(f"{name} must be finite and > 0, got {value}")
    return float(value)


class Exponential(Distribution):
    """Exponential distribution with rate ``lam`` (mean ``1/lam``)."""

    is_exponential = True
    __slots__ = ("lam",)

    def __init__(self, lam: float) -> None:
        self.lam = _require_positive("rate", lam)

    def sample(self, stream: RandomStream) -> float:
        return stream.exponential(self.lam)

    def mean(self) -> float:
        return 1.0 / self.lam

    def variance(self) -> float:
        return 1.0 / (self.lam * self.lam)

    def rate(self) -> float:
        return self.lam

    def __repr__(self) -> str:
        return f"Exponential(rate={self.lam:g})"


class Deterministic(Distribution):
    """Constant delay."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        if value < 0.0 or not math.isfinite(value):
            raise ValueError(f"deterministic delay must be finite and >= 0, got {value}")
        self.value = float(value)

    def sample(self, stream: RandomStream) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"Deterministic({self.value:g})"


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float) -> None:
        if not (0.0 <= low < high) or not math.isfinite(high):
            raise ValueError(f"need 0 <= low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, stream: RandomStream) -> float:
        return stream.uniform(self.low, self.high)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def __repr__(self) -> str:
        return f"Uniform({self.low:g}, {self.high:g})"


class Erlang(Distribution):
    """Erlang-k distribution: sum of ``k`` i.i.d. Exp(rate) phases."""

    __slots__ = ("k", "lam")

    def __init__(self, k: int, lam: float) -> None:
        if k < 1 or k != int(k):
            raise ValueError(f"Erlang shape must be an integer >= 1, got {k}")
        self.k = int(k)
        self.lam = _require_positive("rate", lam)

    def sample(self, stream: RandomStream) -> float:
        total = 0.0
        for _ in range(self.k):
            total += stream.exponential(self.lam)
        return total

    def mean(self) -> float:
        return self.k / self.lam

    def variance(self) -> float:
        return self.k / (self.lam * self.lam)

    def __repr__(self) -> str:
        return f"Erlang(k={self.k}, rate={self.lam:g})"


class Weibull(Distribution):
    """Weibull distribution with shape ``k`` and scale ``lam``."""

    __slots__ = ("k", "lam")

    def __init__(self, k: float, lam: float) -> None:
        self.k = _require_positive("shape", k)
        self.lam = _require_positive("scale", lam)

    def sample(self, stream: RandomStream) -> float:
        u = stream.random()
        # Inverse transform; guard u == 0 which has probability zero but
        # would produce log(0).
        u = max(u, 1e-300)
        return self.lam * (-math.log(u)) ** (1.0 / self.k)

    def mean(self) -> float:
        return self.lam * math.gamma(1.0 + 1.0 / self.k)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.k)
        g2 = math.gamma(1.0 + 2.0 / self.k)
        return self.lam * self.lam * (g2 - g1 * g1)

    def __repr__(self) -> str:
        return f"Weibull(shape={self.k:g}, scale={self.lam:g})"


class LogNormal(Distribution):
    """Log-normal distribution parameterised by underlying normal (mu, sigma)."""

    __slots__ = ("mu", "sigma")

    def __init__(self, mu: float, sigma: float) -> None:
        if not math.isfinite(mu):
            raise ValueError(f"mu must be finite, got {mu}")
        self.mu = float(mu)
        self.sigma = _require_positive("sigma", sigma)

    def sample(self, stream: RandomStream) -> float:
        return math.exp(stream.normal(self.mu, self.sigma))

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)

    def variance(self) -> float:
        s2 = self.sigma * self.sigma
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu:g}, sigma={self.sigma:g})"


class Triangular(Distribution):
    """Triangular distribution on ``[low, high]`` with mode ``mode``."""

    __slots__ = ("low", "mode", "high")

    def __init__(self, low: float, mode: float, high: float) -> None:
        if not (0.0 <= low <= mode <= high) or low == high:
            raise ValueError(
                f"need 0 <= low <= mode <= high with low < high, got "
                f"({low}, {mode}, {high})"
            )
        self.low = float(low)
        self.mode = float(mode)
        self.high = float(high)

    def sample(self, stream: RandomStream) -> float:
        u = stream.random()
        span = self.high - self.low
        cut = (self.mode - self.low) / span
        if u < cut:
            return self.low + math.sqrt(u * span * (self.mode - self.low))
        return self.high - math.sqrt((1.0 - u) * span * (self.high - self.mode))

    def mean(self) -> float:
        return (self.low + self.mode + self.high) / 3.0

    def variance(self) -> float:
        a, c, b = self.low, self.mode, self.high
        return (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0

    def __repr__(self) -> str:
        return f"Triangular({self.low:g}, {self.mode:g}, {self.high:g})"


class ShiftedExponential(Distribution):
    """Exponential delay plus a constant offset (minimum duration)."""

    __slots__ = ("offset", "lam")

    def __init__(self, offset: float, lam: float) -> None:
        if offset < 0.0 or not math.isfinite(offset):
            raise ValueError(f"offset must be finite and >= 0, got {offset}")
        self.offset = float(offset)
        self.lam = _require_positive("rate", lam)

    def sample(self, stream: RandomStream) -> float:
        return self.offset + stream.exponential(self.lam)

    def mean(self) -> float:
        return self.offset + 1.0 / self.lam

    def variance(self) -> float:
        return 1.0 / (self.lam * self.lam)

    def __repr__(self) -> str:
        return f"ShiftedExponential(offset={self.offset:g}, rate={self.lam:g})"


class HyperExponential(Distribution):
    """Probabilistic mixture of exponentials.

    Parameters
    ----------
    probs:
        Mixing probabilities (must sum to 1 within tolerance).
    rates:
        Rate of each exponential branch.
    """

    __slots__ = ("probs", "rates")

    def __init__(self, probs, rates) -> None:
        probs = [float(p) for p in probs]
        rates = [float(r) for r in rates]
        if len(probs) != len(rates) or not probs:
            raise ValueError("probs and rates must be equal-length, non-empty")
        if any(p < 0.0 for p in probs) or abs(sum(probs) - 1.0) > 1e-9:
            raise ValueError(f"probs must be non-negative and sum to 1, got {probs}")
        for r in rates:
            _require_positive("rate", r)
        self.probs = probs
        self.rates = rates

    def sample(self, stream: RandomStream) -> float:
        idx = stream.choice_index(self.probs)
        return stream.exponential(self.rates[idx])

    def mean(self) -> float:
        return sum(p / r for p, r in zip(self.probs, self.rates))

    def variance(self) -> float:
        second = sum(2.0 * p / (r * r) for p, r in zip(self.probs, self.rates))
        m = self.mean()
        return second - m * m

    def __repr__(self) -> str:
        return f"HyperExponential(probs={self.probs}, rates={self.rates})"


class DiscreteChoice:
    """A discrete distribution over arbitrary items (not a firing delay).

    Used by workload generators, e.g. to pick which platoon a joining
    vehicle enters (the paper's ``JP`` activity uses a 50/50 case split).
    """

    __slots__ = ("items", "weights")

    def __init__(self, items, weights=None) -> None:
        self.items = list(items)
        if not self.items:
            raise ValueError("DiscreteChoice requires at least one item")
        if weights is None:
            self.weights = [1.0] * len(self.items)
        else:
            self.weights = [float(w) for w in weights]
            if len(self.weights) != len(self.items):
                raise ValueError("weights must match items in length")

    def sample(self, stream: RandomStream):
        """Pick one item according to the weights."""
        return self.items[stream.choice_index(self.weights)]

    def __repr__(self) -> str:
        return f"DiscreteChoice({len(self.items)} items)"
