"""Sampling helpers shared by the estimators and workload generators."""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.stochastic.rng import RandomStream

__all__ = ["sample_mean_and_ci", "inverse_transform_sample", "thinning_nhpp"]


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki approximation + Newton refinement)."""
    if not -1.0 < x < 1.0:
        raise ValueError(f"erfinv domain is (-1, 1), got {x}")
    if x == 0.0:
        return 0.0
    a = 0.147
    ln1mx2 = math.log(1.0 - x * x)
    term = 2.0 / (math.pi * a) + ln1mx2 / 2.0
    guess = math.copysign(
        math.sqrt(math.sqrt(term * term - ln1mx2 / a) - term), x
    )
    # Two Newton iterations on erf(y) - x = 0 sharpen the approximation to
    # ~1e-12, plenty for confidence-interval quantiles.
    y = guess
    for _ in range(2):
        err = math.erf(y) - x
        y -= err * math.sqrt(math.pi) / 2.0 * math.exp(y * y)
    return y


def sample_mean_and_ci(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Sample mean and half-width of a normal-approximation CI.

    Parameters
    ----------
    samples:
        Observations (at least 2 for a non-degenerate interval).
    confidence:
        Two-sided confidence level, default 95 % as in the paper
        ("converging within 95% probability in a 0.1 relative interval").

    Returns
    -------
    (mean, half_width)
    """
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("need at least one sample")
    mean = float(data.mean())
    if data.size == 1:
        return mean, math.inf
    z = math.sqrt(2.0) * _erfinv(confidence)
    half = z * float(data.std(ddof=1)) / math.sqrt(data.size)
    return mean, half


def inverse_transform_sample(
    stream: RandomStream, inverse_cdf: Callable[[float], float]
) -> float:
    """Draw one variate from a distribution given its inverse CDF."""
    return inverse_cdf(stream.random())


def thinning_nhpp(
    stream: RandomStream,
    rate_fn: Callable[[float], float],
    rate_max: float,
    horizon: float,
) -> list[float]:
    """Event times of a non-homogeneous Poisson process on ``[0, horizon]``.

    Uses Lewis-Shedler thinning.  Used by the traffic substrate to generate
    time-varying highway entry flows (rush-hour profiles).

    Parameters
    ----------
    stream:
        Randomness source.
    rate_fn:
        Instantaneous rate ``lambda(t)``; must satisfy
        ``0 <= rate_fn(t) <= rate_max`` on the horizon.
    rate_max:
        Dominating constant rate for the thinning proposal process.
    horizon:
        End of the generation window.

    Returns
    -------
    Sorted list of accepted event times.
    """
    if rate_max <= 0.0:
        raise ValueError(f"rate_max must be > 0, got {rate_max}")
    if horizon < 0.0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    times: list[float] = []
    t = 0.0
    while True:
        t += stream.exponential(rate_max)
        if t > horizon:
            break
        lam = rate_fn(t)
        if lam < 0.0 or lam > rate_max * (1.0 + 1e-12):
            raise ValueError(
                f"rate_fn({t}) = {lam} outside [0, rate_max={rate_max}]"
            )
        if stream.random() * rate_max < lam:
            times.append(t)
    return times
