"""Reproducible, splittable random-number streams.

The simulators in this library never touch ``numpy.random`` module-level
state.  Each stochastic component receives a :class:`RandomStream`; streams
for independent replications or independent model components are created
through a :class:`StreamFactory`, which wraps :class:`numpy.random.SeedSequence`
spawning so that streams are statistically independent by construction.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = ["RandomStream", "StreamFactory"]


class RandomStream:
    """A single reproducible stream of random variates.

    Thin wrapper around :class:`numpy.random.Generator` that adds the handful
    of variate generators the simulation kernels need, plus stream identity
    metadata for debugging and for audit trails in experiment reports.

    Parameters
    ----------
    seed_seq:
        The NumPy ``SeedSequence`` this stream draws its entropy from.
    label:
        Human-readable identity, e.g. ``"replication-17"``.
    """

    __slots__ = ("_generator", "_seed_seq", "label", "_draws")

    def __init__(self, seed_seq: np.random.SeedSequence, label: str = "") -> None:
        self._seed_seq = seed_seq
        self._generator = np.random.Generator(np.random.PCG64(seed_seq))
        self.label = label
        self._draws = 0

    # ------------------------------------------------------------------
    # identity / bookkeeping
    # ------------------------------------------------------------------
    @property
    def entropy(self):
        """Entropy of the underlying seed sequence (for audit logs)."""
        return self._seed_seq.entropy

    @property
    def draw_count(self) -> int:
        """Number of variates drawn so far (per-call count).

        This is the public audit-trail counter: the parallel runtime sums
        it across a chunk's streams and reports it in worker telemetry, so
        cross-worker replication audits can account for every variate.
        """
        return self._draws

    @property
    def draws(self) -> int:
        """Alias of :attr:`draw_count` (kept for existing call sites)."""
        return self._draws

    @property
    def generator(self) -> np.random.Generator:
        """The raw NumPy generator, for vectorised bulk sampling."""
        return self._generator

    def spawn(self, n: int) -> list["RandomStream"]:
        """Spawn ``n`` independent child streams."""
        children = self._seed_seq.spawn(n)
        return [
            RandomStream(child, label=f"{self.label}/child-{i}")
            for i, child in enumerate(children)
        ]

    # ------------------------------------------------------------------
    # scalar variates used by the DES / SAN kernels
    # ------------------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One U(low, high) variate."""
        self._draws += 1
        return float(self._generator.uniform(low, high))

    def random(self) -> float:
        """One U(0, 1) variate."""
        self._draws += 1
        return float(self._generator.random())

    def exponential(self, rate: float) -> float:
        """One Exp(rate) variate (mean ``1/rate``).

        Raises
        ------
        ValueError
            If ``rate`` is not strictly positive.
        """
        if rate <= 0.0 or not math.isfinite(rate):
            raise ValueError(f"exponential rate must be finite and > 0, got {rate}")
        self._draws += 1
        return float(self._generator.exponential(1.0 / rate))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """One N(mean, std**2) variate."""
        self._draws += 1
        return float(self._generator.normal(mean, std))

    def integers(self, low: int, high: int) -> int:
        """One integer uniform on ``[low, high)``."""
        self._draws += 1
        return int(self._generator.integers(low, high))

    def choice_index(self, weights: Sequence[float]) -> int:
        """Select an index with probability proportional to ``weights``.

        Weights need not be normalised but must be non-negative with a
        strictly positive sum.
        """
        total = 0.0
        for w in weights:
            if w < 0.0:
                raise ValueError(f"negative weight {w} in choice_index")
            total += w
        if total <= 0.0:
            raise ValueError("choice_index requires a positive total weight")
        u = self.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if u < acc:
                return i
        return len(weights) - 1  # numerical edge: u == total

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._draws += len(items)
        self._generator.shuffle(items)

    def bernoulli(self, p: float) -> bool:
        """One Bernoulli(p) trial."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"Bernoulli probability must be in [0,1], got {p}")
        return self.random() < p

    def poisson(self, mean: float) -> int:
        """One Poisson(mean) variate."""
        if mean < 0.0:
            raise ValueError(f"Poisson mean must be >= 0, got {mean}")
        self._draws += 1
        return int(self._generator.poisson(mean))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStream(label={self.label!r}, draws={self._draws})"


class StreamFactory:
    """Creates independent :class:`RandomStream` objects from a root seed.

    A factory is the single entry point for randomness in an experiment: the
    experiment seed goes in, and every component (replication, submodel,
    workload generator) asks the factory for its own stream.  Streams are
    independent regardless of the order or number of requests.

    Examples
    --------
    >>> factory = StreamFactory(1234)
    >>> rep_streams = factory.stream_batch("replication", 4)
    >>> len(rep_streams)
    4
    """

    def __init__(self, seed: int | None = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self._count = 0
        self.seed = seed

    def stream(self, label: str = "") -> RandomStream:
        """Create one new independent stream."""
        (child,) = self._root.spawn(1)
        self._count += 1
        return RandomStream(child, label=label or f"stream-{self._count}")

    def stream_batch(self, label: str, n: int) -> list[RandomStream]:
        """Create ``n`` new independent streams sharing a label prefix."""
        children = self._root.spawn(n)
        self._count += n
        return [
            RandomStream(child, label=f"{label}-{i}")
            for i, child in enumerate(children)
        ]

    @property
    def streams_created(self) -> int:
        """Total number of streams handed out so far."""
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamFactory(seed={self.seed!r}, created={self._count})"
