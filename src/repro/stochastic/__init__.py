"""Random-number streams and probability distributions.

This subpackage is the lowest layer of the library.  Everything stochastic in
the simulators (the DES kernel, the SAN executor, the rare-event estimators,
the microscopic traffic substrate) draws randomness through the
:class:`~repro.stochastic.rng.RandomStream` abstraction so that experiments
are reproducible and independent replications use provably independent
streams (spawned via NumPy's ``SeedSequence``).
"""

from repro.stochastic.rng import RandomStream, StreamFactory
from repro.stochastic.distributions import (
    Distribution,
    Exponential,
    Deterministic,
    Uniform,
    Erlang,
    Weibull,
    LogNormal,
    Triangular,
    DiscreteChoice,
    ShiftedExponential,
    HyperExponential,
)
from repro.stochastic.sampling import (
    sample_mean_and_ci,
    inverse_transform_sample,
    thinning_nhpp,
)

__all__ = [
    "RandomStream",
    "StreamFactory",
    "Distribution",
    "Exponential",
    "Deterministic",
    "Uniform",
    "Erlang",
    "Weibull",
    "LogNormal",
    "Triangular",
    "DiscreteChoice",
    "ShiftedExponential",
    "HyperExponential",
    "sample_mean_and_ci",
    "inverse_transform_sample",
    "thinning_nhpp",
]
