"""Content-addressed on-disk cache for completed estimation runs.

A cache entry is keyed by the SHA-256 of a canonical JSON rendering of
everything that determines the result bit-for-bit: the task's own cache
token (model parameters, measure, evaluation times), the experiment seed,
the replication budget or stopping rule, the chunk size (it fixes the
floating-point merge grouping) and the code version from
:mod:`repro._version`.  Anything that does *not* enter the key — worker
count, retry budget, telemetry settings — is guaranteed not to change the
numbers, so a hit is always safe to reuse.

Entries are plain JSON files under ``root/<key[:2]>/<key>.json``, written
atomically (temp file + ``os.replace``) so concurrent runs never observe
a torn entry.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Mapping, Optional

import numpy as np

from repro._version import __version__

__all__ = ["fingerprint", "cache_key", "ResultCache"]


def fingerprint(obj: Any) -> Any:
    """Normalise ``obj`` into a canonical JSON-serialisable structure.

    Handles the vocabulary of this library's parameter objects: nested
    dataclasses (:class:`~repro.core.parameters.AHSParameters`), enum keys
    and values (:class:`~repro.core.maneuvers.Maneuver`), tuples, NumPy
    scalars and arrays.  Floats are rendered with ``repr`` so the token is
    exact, not rounded.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # np.float64 subclasses float but reprs as "np.float64(...)";
        # coerce so both spell the same token.
        return repr(float(obj))
    if isinstance(obj, enum.Enum):
        return fingerprint(obj.value)
    if isinstance(obj, np.generic):
        return fingerprint(obj.item())
    if isinstance(obj, np.ndarray):
        return [fingerprint(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            **{
                f.name: fingerprint(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Mapping):
        items = [
            (str(fingerprint(key)), fingerprint(value))
            for key, value in obj.items()
        ]
        return {key: value for key, value in sorted(items)}
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = sorted(obj) if isinstance(obj, (set, frozenset)) else obj
        return [fingerprint(v) for v in seq]
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r} for cache keying"
    )


def cache_key(token: Any) -> str:
    """SHA-256 hex digest of the canonical rendering of ``token``.

    The code version is always mixed in, so upgrading the library
    invalidates every entry rather than serving stale numbers.
    """
    canonical = json.dumps(
        {"version": __version__, "token": fingerprint(token)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed store of completed run records.

    Parameters
    ----------
    root:
        Cache directory (created on first write).
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored record for ``key``, or ``None`` (counted as a miss)."""
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return record.get("payload")

    def put(self, key: str, payload: dict) -> Path:
        """Atomically store ``payload`` under ``key``; returns the path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "key": key,
            "version": __version__,
            "created": time.time(),
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.puts += 1
        return path

    @property
    def lookups(self) -> int:
        """Total get() calls so far."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, puts={self.puts})"
        )
