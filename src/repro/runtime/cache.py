"""Content-addressed on-disk cache for completed estimation runs.

A cache entry is keyed by the SHA-256 of a canonical JSON rendering of
everything that determines the result bit-for-bit: the task's own cache
token (model parameters, measure, evaluation times), the experiment seed,
the replication budget or stopping rule, the chunk size (it fixes the
floating-point merge grouping) and the code version from
:mod:`repro._version`.  Anything that does *not* enter the key — worker
count, retry budget, telemetry settings — is guaranteed not to change the
numbers, so a hit is always safe to reuse.

Entries are plain JSON files under ``root/<key[:2]>/<key>.json``, written
atomically (temp file + ``os.replace``) so concurrent runs never observe
a torn entry.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Mapping, Optional

import numpy as np

from repro._version import __version__

__all__ = ["fingerprint", "cache_key", "ResultCache"]


def fingerprint(obj: Any) -> Any:
    """Normalise ``obj`` into a canonical JSON-serialisable structure.

    Handles the vocabulary of this library's parameter objects: nested
    dataclasses (:class:`~repro.core.parameters.AHSParameters`), enum keys
    and values (:class:`~repro.core.maneuvers.Maneuver`), tuples, NumPy
    scalars and arrays.  Floats are rendered with ``repr`` so the token is
    exact, not rounded.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # np.float64 subclasses float but reprs as "np.float64(...)";
        # coerce so both spell the same token.
        return repr(float(obj))
    if isinstance(obj, enum.Enum):
        return fingerprint(obj.value)
    if isinstance(obj, np.generic):
        return fingerprint(obj.item())
    if isinstance(obj, np.ndarray):
        return [fingerprint(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            **{
                f.name: fingerprint(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Mapping):
        items = [
            (str(fingerprint(key)), fingerprint(value))
            for key, value in obj.items()
        ]
        return {key: value for key, value in sorted(items)}
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = sorted(obj) if isinstance(obj, (set, frozenset)) else obj
        return [fingerprint(v) for v in seq]
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r} for cache keying"
    )


def cache_key(token: Any) -> str:
    """SHA-256 hex digest of the canonical rendering of ``token``.

    The code version is always mixed in, so upgrading the library
    invalidates every entry rather than serving stale numbers.
    """
    canonical = json.dumps(
        {"version": __version__, "token": fingerprint(token)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed store of completed run records.

    Parameters
    ----------
    root:
        Cache directory (created on first write).
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether an entry exists for ``key`` (no counter side effects)."""
        return self._path(key).is_file()

    def get(self, key: str) -> Optional[dict]:
        """The stored record for ``key``, or ``None`` (counted as a miss)."""
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return record.get("payload")

    def put(self, key: str, payload: dict) -> Path:
        """Atomically store ``payload`` under ``key``; returns the path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "key": key,
            "version": __version__,
            "created": time.time(),
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.puts += 1
        return path

    # ------------------------------------------------------------------
    # hygiene: stats, session counters, clearing
    # ------------------------------------------------------------------
    #: session-counter sidecar (not a cache entry: lives outside the
    #: two-hex-digit shard directories, so stats/clear never mistake it
    #: for a result)
    _SESSION_FILE = "_session.json"

    def _iter_entries(self):
        root = self.root
        if not root.is_dir():
            return
        for shard in sorted(root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for path in sorted(shard.glob("*.json")):
                if path.name.startswith(".tmp-"):
                    continue
                yield path

    def stats(self) -> dict:
        """On-disk inventory plus the last finished session's counters.

        ``entries``/``total_bytes`` are computed by walking the store;
        ``last_session`` is whatever :meth:`flush_session` recorded most
        recently (``None`` before the first flushed run).
        """
        entries = 0
        total_bytes = 0
        for path in self._iter_entries():
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue  # entry vanished mid-walk (concurrent clear)
            entries += 1
        last_session = None
        try:
            last_session = json.loads(
                (self.root / self._SESSION_FILE).read_text()
            )
        except (OSError, ValueError):
            pass
        return {
            "root": str(self.root),
            "entries": entries,
            "total_bytes": total_bytes,
            "last_session": last_session,
        }

    def flush_session(self) -> None:
        """Persist this process's hit/miss/put counters (atomically).

        Called by :meth:`ParallelRunner.close` so ``repro-cli cache
        stats`` can report how the cache behaved in the last run even
        though the counters themselves live in memory.  No-op when the
        session did no cache work at all.
        """
        if self.hits == self.misses == self.puts == 0:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "hit_rate": self.hit_rate,
                "finished": time.time(),
            }
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.root / self._SESSION_FILE)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cache entry (and the session sidecar).

        Returns the number of entries removed.  Shard directories are
        pruned when emptied; the root itself is kept.
        """
        removed = 0
        for path in list(self._iter_entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
            try:
                path.parent.rmdir()
            except OSError:
                pass  # shard not empty yet
        try:
            (self.root / self._SESSION_FILE).unlink()
        except OSError:
            pass
        return removed

    @property
    def lookups(self) -> int:
        """Total get() calls so far."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, puts={self.puts})"
        )
