"""Per-worker-process context memo: storage, size policy, eviction hook.

Replication tasks (:mod:`repro.core.partasks`) memoise their heavy
worker-side contexts — composed model + compiled jump engine — per
process, keyed by the task's cache token.  The memo itself is a plain
FIFO dict; this module owns it so the *driver* can configure its size
(``ParallelRunner(context_cache_size=...)`` / ``--context-cache``) and
observe evictions without the task layer importing any runner machinery.

The cap is per process.  In the driver process (serial runners and the
in-process retry fallback) :func:`configure` applies directly; worker
processes receive the configured size through
:func:`initialize_worker`, which :class:`~repro.runtime.pool.
ParallelRunner` installs as the pool initializer.  The eviction hook is
likewise per process — the driver wires it to a ``CacheMiss`` ledger
event (scope ``worker-context``), so evictions in worker processes are
not individually reported (workers have no event bus); the hook exists
to surface cache thrash where it is observable at all.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "cache",
    "clear_eviction_hook",
    "configure",
    "get",
    "initialize_worker",
    "max_entries",
    "put",
    "set_eviction_hook",
]

#: default FIFO capacity — sized for sweep-batched dispatch, where one
#: worker call runs chunks of several neighbouring sweep points back to
#: back and evicting between points would rebuild each model every group
DEFAULT_MAX_ENTRIES = 16

_CACHE: dict[str, Any] = {}
_MAX_ENTRIES: int = DEFAULT_MAX_ENTRIES
_EVICTION_HOOK: Optional[Callable[[str], None]] = None


def cache() -> dict:
    """The process-local memo dict itself (shared, mutated in place)."""
    return _CACHE


def max_entries() -> int:
    """The process-local FIFO capacity currently in force."""
    return _MAX_ENTRIES


def configure(max_entries: Optional[int] = None) -> None:
    """Set the FIFO capacity for this process (None leaves it alone)."""
    global _MAX_ENTRIES
    if max_entries is None:
        return
    if max_entries < 1:
        raise ValueError(f"context cache size must be >= 1, got {max_entries}")
    _MAX_ENTRIES = int(max_entries)


def set_eviction_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Install the process-local eviction callback (one at a time)."""
    global _EVICTION_HOOK
    _EVICTION_HOOK = hook


def clear_eviction_hook(hook: Optional[Callable[[str], None]] = None) -> None:
    """Remove the eviction callback (only if it equals ``hook``, when given).

    Equality, not identity: bound methods are re-created on every
    attribute access, so ``owner.method is owner.method`` is False even
    though both refer to the same hook.
    """
    global _EVICTION_HOOK
    if hook is None or _EVICTION_HOOK == hook:
        _EVICTION_HOOK = None


def get(key: str) -> Any:
    """The memoised context under ``key``, or None."""
    return _CACHE.get(key)


def put(key: str, value: Any) -> None:
    """Insert, evicting oldest-first down to the capacity.

    Each eviction invokes the hook with the evicted key; hook failures
    are swallowed — observability must never fail a worker's chunk.
    """
    while len(_CACHE) >= _MAX_ENTRIES:
        evicted = next(iter(_CACHE))
        _CACHE.pop(evicted)
        if _EVICTION_HOOK is not None:
            try:
                _EVICTION_HOOK(evicted)
            except Exception:
                pass
    _CACHE[key] = value


def initialize_worker(max_entries: Optional[int]) -> None:
    """``ProcessPoolExecutor`` initializer: apply the driver's cache size."""
    configure(max_entries=max_entries)
