"""Progress and throughput accounting for parallel runs.

A :class:`TelemetryRecorder` is created per :class:`ParallelRunner` run
and fed by the driver as chunks complete; :meth:`TelemetryRecorder.snapshot`
freezes it into a :class:`TelemetrySnapshot` that experiment reports embed
(units/sec throughput, per-worker utilization, cache hit rate, retry and
fallback counts, total RNG draws, and — when observability metrics were
enabled — the merged per-activity :mod:`repro.obs.metrics` summary).

For sweep (`map`) runs each evaluated point counts as one unit, so the
throughput figure reads "points per second"; the snapshot's ``unit`` field
says which meaning applies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["WorkerStats", "TelemetrySnapshot", "TelemetryRecorder"]


@dataclass
class WorkerStats:
    """Per-worker accounting.

    Workers are keyed by the pool's unique worker label
    (``pid-<pid>.<token>``, see ``repro.runtime.pool._worker_label``):
    the per-process random token disambiguates pid reuse, so a fresh
    worker handed a crashed worker's recycled pid never merges its
    accounting into the dead one's row.
    """

    chunks: int = 0
    units: int = 0
    draws: int = 0
    busy_seconds: float = 0.0
    events: int = 0


@dataclass
class TelemetrySnapshot:
    """Frozen view of one run's runtime behaviour."""

    workers: int
    unit: str
    elapsed_seconds: float
    units: int
    chunks: int
    retries: int
    fallbacks: int
    draws: int
    cache_hits: int
    cache_misses: int
    events: int = 0
    engine: str = ""
    per_worker: dict[str, WorkerStats] = field(default_factory=dict)
    #: merged per-activity metric summary
    #: (:meth:`repro.obs.metrics.MetricSummary.to_dict`) when the run was
    #: executed with observability metrics enabled; None otherwise
    activity_metrics: Optional[dict] = None
    #: busy wall-seconds spent simulating each sweep point (point id ->
    #: summed worker-side chunk seconds), filled by drivers that schedule
    #: several points in one run (the adaptive orchestrator); None for
    #: single-task runs.  Lives only in telemetry: the deterministic
    #: points/rounds sections of artifacts never carry wall time.
    point_seconds: Optional[dict] = None

    @property
    def units_per_second(self) -> float:
        """Throughput over the run's wall-clock time."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.units / self.elapsed_seconds

    @property
    def events_per_second(self) -> float:
        """Simulation-event throughput (0.0 when the task reports none)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.events / self.elapsed_seconds

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups that hit (0.0 with no lookups)."""
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_hits / self.cache_lookups

    def utilization(self, worker: str) -> float:
        """Busy fraction of one worker over the run's wall-clock time.

        Unknown worker keys report 0.0 (a worker that never completed a
        chunk did no accounted work).
        """
        if self.elapsed_seconds <= 0.0:
            return 0.0
        stats = self.per_worker.get(worker)
        if stats is None:
            return 0.0
        return stats.busy_seconds / self.elapsed_seconds

    def to_dict(self) -> dict:
        """JSON-serialisable record (embedded in experiment artifacts).

        The ``replications_per_sec`` key is historical — it always holds
        :attr:`units_per_second`, whatever the unit (consumers pin the
        key; the human-readable :meth:`format` footer labels it by unit).
        """
        record = {
            "workers": self.workers,
            "unit": self.unit,
            "elapsed_seconds": self.elapsed_seconds,
            "units": self.units,
            "replications_per_sec": self.units_per_second,
            "chunks": self.chunks,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "draws": self.draws,
            "events": self.events,
            "events_per_sec": self.events_per_second,
            "engine": self.engine,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "per_worker": {
                worker: {
                    "chunks": stats.chunks,
                    "units": stats.units,
                    "draws": stats.draws,
                    "events": stats.events,
                    "busy_seconds": stats.busy_seconds,
                    "utilization": self.utilization(worker),
                }
                for worker, stats in sorted(self.per_worker.items())
            },
        }
        if self.activity_metrics is not None:
            record["activity_metrics"] = self.activity_metrics
        if self.point_seconds is not None:
            record["point_seconds"] = {
                point: float(seconds)
                for point, seconds in sorted(self.point_seconds.items())
            }
        return record

    def format(self) -> str:
        """Human-readable footer for experiment reports."""
        lines = [
            "runtime: workers={w}  elapsed={e:.2f}s  {unit}={n}  "
            "{unit}/sec={rps:.1f}  cache hit rate={ch}/{cl} "
            "({rate:.0%})".format(
                w=self.workers,
                e=self.elapsed_seconds,
                unit=self.unit,
                n=self.units,
                rps=self.units_per_second,
                ch=self.cache_hits,
                cl=self.cache_lookups,
                rate=self.cache_hit_rate,
            )
        ]
        if self.events:
            engine_tag = f"  engine={self.engine}" if self.engine else ""
            lines.append(
                "         events={n}  events/sec={eps:.0f}{tag}".format(
                    n=self.events, eps=self.events_per_second, tag=engine_tag
                )
            )
        if self.retries or self.fallbacks:
            lines.append(
                f"         retries={self.retries}  fallbacks={self.fallbacks}"
            )
        for worker, stats in sorted(self.per_worker.items()):
            lines.append(
                f"         {worker}: chunks={stats.chunks}  "
                f"{self.unit}={stats.units}  draws={stats.draws}  "
                f"busy={stats.busy_seconds:.2f}s  "
                f"util={self.utilization(worker):.0%}"
            )
        if self.point_seconds:
            budget = "  ".join(
                f"{point}={seconds:.2f}s"
                for point, seconds in sorted(self.point_seconds.items())
            )
            lines.append(f"         point seconds: {budget}")
        return "\n".join(lines)


class TelemetryRecorder:
    """Mutable accumulator the pool driver feeds during a run.

    Parameters
    ----------
    workers:
        Configured worker count (recorded, not enforced).
    unit:
        What one completed unit means: ``"replications"`` for Monte-Carlo
        runs, ``"points"`` for sweep maps.
    engine:
        Jump-engine label for simulation workloads (shown next to the
        events/sec figure in the footer); empty for non-simulation runs.
    clock:
        Injectable time source (tests).
    """

    def __init__(
        self,
        workers: int,
        unit: str = "replications",
        engine: str = "",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.workers = workers
        self.unit = unit
        self.engine = engine
        self._clock = clock
        self._started: Optional[float] = None
        self._finished: Optional[float] = None
        self.units = 0
        self.chunks = 0
        self.retries = 0
        self.fallbacks = 0
        self.draws = 0
        self.events = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.per_worker: dict[str, WorkerStats] = {}
        self.point_seconds: dict[str, float] = {}
        #: merged activity-metric summary dict, set by the pool driver when
        #: the task ran with observability metrics enabled
        self.activity_metrics: Optional[dict] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started = self._clock()

    def finish(self) -> None:
        self._finished = self._clock()

    @property
    def elapsed_seconds(self) -> float:
        if self._started is None:
            return 0.0
        end = self._finished if self._finished is not None else self._clock()
        return max(end - self._started, 0.0)

    def record_chunk(
        self,
        worker: str,
        units: int,
        draws: int = 0,
        busy_seconds: float = 0.0,
        events: int = 0,
    ) -> None:
        """One chunk (or sweep point) completed on ``worker``."""
        stats = self.per_worker.setdefault(worker, WorkerStats())
        stats.chunks += 1
        stats.units += units
        stats.draws += draws
        stats.busy_seconds += busy_seconds
        stats.events += events
        self.chunks += 1
        self.units += units
        self.draws += draws
        self.events += events

    def record_point_seconds(self, point_id: str, seconds: float) -> None:
        """Accumulate busy worker-seconds attributed to one sweep point."""
        self.point_seconds[point_id] = (
            self.point_seconds.get(point_id, 0.0) + seconds
        )

    def record_retry(self) -> None:
        self.retries += 1

    def record_fallback(self) -> None:
        self.fallbacks += 1

    def record_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the current counters."""
        return TelemetrySnapshot(
            workers=self.workers,
            unit=self.unit,
            elapsed_seconds=self.elapsed_seconds,
            units=self.units,
            chunks=self.chunks,
            retries=self.retries,
            fallbacks=self.fallbacks,
            draws=self.draws,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            events=self.events,
            engine=self.engine,
            per_worker=dict(self.per_worker),
            activity_metrics=self.activity_metrics,
            point_seconds=dict(self.point_seconds) or None,
        )
