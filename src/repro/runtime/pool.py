"""Fault-tolerant process-pool execution of replication plans.

:class:`ParallelRunner` is the execution layer between a stochastic model
and the :mod:`repro.stats` output analysis:

* **Monte-Carlo runs** (:meth:`ParallelRunner.run`): replications are
  sharded into :class:`~repro.runtime.plan.ChunkSpec` units, dispatched to
  a ``ProcessPoolExecutor``, reduced in-worker to
  :class:`~repro.runtime.merge.ChunkSummary` statistics and pooled in
  chunk order — so the estimate is bit-identical for any worker count.
  With a :class:`~repro.stats.SequentialStoppingRule` the driver operates
  in rounds: submit a round of chunks, merge, check the paper's
  relative-precision criterion, submit more.
* **Sweep maps** (:meth:`ParallelRunner.map`): independent point tasks
  (e.g. one analytical sweep point of a figure) evaluated across workers
  with the same retry and caching machinery.

Fault tolerance: a chunk whose worker raises, dies, or makes no progress
within ``chunk_timeout`` is retried on the pool up to ``max_retries``
times and then executed in-process by the driver — partial results are
never silently dropped.  Because replication streams are addressed by
global index (never by worker), retries cannot change the estimate.

Tasks must be picklable and implement the small
:class:`ReplicationTask` protocol (``build``/``sample``/``cache_token``);
sweep tasks are picklable callables with an optional ``cache_token``.
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.obs.events import (
    CacheHit,
    CacheMiss,
    ChunkCompleted,
    ChunkFailed,
    ChunkRetried,
    ChunkScheduled,
    EventBus,
    RunFinished,
    RunStarted,
)
from repro.obs.ledger import forensic_bundle
from repro.obs.profile import PhaseProfiler, profile_span
from repro.runtime import workerctx
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.merge import ChunkSummary, combine, pooled_intervals
from repro.runtime.plan import ChunkSpec, ReplicationPlan
from repro.runtime.telemetry import TelemetryRecorder, TelemetrySnapshot
from repro.stats.estimators import SequentialStoppingRule

__all__ = ["ReplicationTask", "ParallelResult", "ParallelRunner"]


@runtime_checkable
class ReplicationTask(Protocol):
    """What the runner needs from a Monte-Carlo workload.

    Implementations must be picklable (plain dataclasses of parameters);
    ``build`` runs once per chunk *inside the worker* and returns the
    heavy per-process context (model, simulator, predicate) that
    ``sample`` then uses for every replication of the chunk.
    """

    def build(self) -> Any:  # pragma: no cover - protocol
        ...

    def sample(self, context: Any, stream) -> "float | np.ndarray":  # pragma: no cover
        ...

    def cache_token(self) -> Any:  # pragma: no cover - protocol
        ...


@dataclass
class ParallelResult:
    """Merged outcome of a parallel Monte-Carlo run."""

    values: np.ndarray
    half_widths: np.ndarray
    n_replications: int
    converged: bool
    from_cache: bool
    telemetry: TelemetrySnapshot


# ----------------------------------------------------------------------
# worker-side entry points (module level so they pickle by reference)
# ----------------------------------------------------------------------
_WORKER_UID: Optional[tuple[int, str]] = None


def _worker_label() -> str:
    """Stable unique label of this worker process.

    ``pid-<pid>.<token>``: the random token is drawn once per process
    because the OS recycles pids — after a crash-restart a fresh worker
    can be handed a dead worker's pid, and keying per-worker telemetry
    by pid alone would silently merge the two workers' accounting.  The
    cached token is regenerated after a fork (the inherited cache
    carries the parent's pid, which no longer matches).
    """
    global _WORKER_UID
    pid = os.getpid()
    if _WORKER_UID is None or _WORKER_UID[0] != pid:
        _WORKER_UID = (pid, os.urandom(3).hex())
    return f"pid-{pid}.{_WORKER_UID[1]}"


def _chunk_id(key: Any) -> str:
    """Ledger chunk id of a job key (``(point, index)`` or bare index)."""
    if isinstance(key, tuple):
        return f"{key[0]}/chunk-{key[1]}"
    return f"chunk-{key}"


def _job_chunk_id(key: Any, fn: Callable) -> str:
    """Ledger id of any dispatchable job, grouped and point jobs included."""
    if fn in (_execute_chunk_group, _execute_chunk_group_tensorized):
        return f"group-{key}"
    if fn is _execute_point:
        return f"point-{key}"
    return _chunk_id(key)


def _execute_chunk(
    task: ReplicationTask, plan: ReplicationPlan, spec: ChunkSpec
) -> ChunkSummary:
    """Run one chunk of replications and reduce it to its summary.

    Contexts come from ``task.build_cached()`` when the task offers it
    (per-worker memoisation across chunks), events are reported as a
    before/after delta (cached simulators carry lifetime counters), and
    tasks exposing ``sample_batch``/``sample_into`` get the allocation-
    free sampling paths.
    """
    started = time.perf_counter()
    build_cached = getattr(task, "build_cached", None)
    context = build_cached() if build_cached is not None else task.build()
    compile_seconds = float(getattr(context, "compile_seconds", 0.0))
    has_events = hasattr(task, "events_of")
    events_before = task.events_of(context) if has_events else 0
    streams = [
        plan.stream(replication) for replication in spec.replication_indices()
    ]
    supports_batch = getattr(task, "supports_batch", None)
    sample_into = getattr(task, "sample_into", None)
    if (
        hasattr(task, "sample_batch")
        and supports_batch is not None
        and supports_batch(context)
    ):
        samples = np.asarray(task.sample_batch(context, streams), dtype=float)
        if samples.ndim == 1:
            samples = samples[:, None]
    else:
        samples = None
        for position, stream in enumerate(streams):
            if samples is not None and sample_into is not None:
                sample_into(context, stream, samples[position])
                continue
            row = np.atleast_1d(
                np.asarray(task.sample(context, stream), dtype=float)
            )
            if samples is None:
                samples = np.empty((len(streams), row.shape[0]), dtype=float)
            samples[position] = row
    draws = sum(stream.draw_count for stream in streams)
    events = (task.events_of(context) - events_before) if has_events else 0
    metrics = task.metrics_of(context) if hasattr(task, "metrics_of") else None
    return ChunkSummary.from_samples(
        spec.index,
        samples,
        draws=draws,
        elapsed_seconds=time.perf_counter() - started,
        worker=_worker_label(),
        events=events,
        metrics=metrics,
        compile_seconds=compile_seconds,
    )


def _chunk_cache_key(
    task: ReplicationTask, plan: ReplicationPlan, spec: ChunkSpec
) -> str:
    """Content-addressed identity of one chunk's summary.

    Includes everything that determines the summary bit-for-bit: the task
    token, the plan's resolved entropy and chunk size, and the chunk's
    position.  Worker count, retry history and completion order are
    deliberately absent — they never change what a chunk computes.
    """
    return cache_key(
        {
            "kind": "chunk-summary",
            "task": task.cache_token(),
            "entropy": plan.entropy,
            "chunk_size": plan.chunk_size,
            "chunk": spec.index,
            "count": spec.count,
        }
    )


def _execute_chunk_cached(
    task: ReplicationTask,
    plan: ReplicationPlan,
    spec: ChunkSpec,
    cache: ResultCache,
    key: str,
) -> ChunkSummary:
    """Run one chunk and persist its summary worker-side.

    The cache write is atomic (temp file + rename), so a worker killed
    mid-run leaves either a complete entry or none — an interrupted
    multi-round run can resume from exactly the chunks that finished.
    """
    summary = _execute_chunk(task, plan, spec)
    cache.put(key, summary.to_cache_dict())
    return summary


def _execute_chunk_group(
    subjobs: Sequence[tuple[Any, Callable, tuple]]
) -> list[tuple[Any, Any]]:
    """Run several prepared chunk jobs in one worker call.

    Sweep-level batching: instead of one pool task per chunk, a group of
    point-contiguous chunks rides in a single dispatch, amortising
    submit/pickle/result overhead across the whole sweep.  Each sub-job
    still runs the *identical* ``(fn, args)`` it would have run solo —
    per-worker context caches (``build_cached``) are shared within the
    group exactly as they are across sequential pool tasks — so every
    returned summary is bit-identical to per-chunk dispatch.
    """
    return [(key, fn(*args)) for key, fn, args in subjobs]


def _execute_chunk_group_tensorized(
    subjobs: Sequence[tuple[Any, Callable, tuple]]
) -> list[tuple[Any, Any]]:
    """Run a chunk group as one cross-point tensor where possible.

    The tensorized twin of :func:`_execute_chunk_group`: eligible chunk
    jobs (tasks exposing the ``tensorizable``/``tensor_spec``/
    ``samples_from_runs`` protocol with a stepped, observer-free
    context) are stacked into one
    :class:`~repro.san.multipoint.MultiPointContext` run — partitioned
    by the engines' bias flag, since biased and unbiased rows cannot
    share a cumulative-sum pass — and demultiplexed back into per-chunk
    :class:`ChunkSummary` objects in sub-job order.  Everything else
    (splitting tasks, metric-collecting chunks, non-stepped engines)
    runs its identical solo ``(fn, args)``.

    Bit-identity: each chunk's streams are addressed exactly as solo
    execution addresses them and the tensor keeps every row on its own
    stream, so samples, draws and events match per-chunk dispatch
    bit-for-bit.  Only ``elapsed_seconds`` differs in kind — the shared
    tensor's wall time is prorated over member chunks by row count
    (telemetry, never part of deterministic artifacts).
    """
    from repro.san.multipoint import MultiPointContext, MultiPointJob

    results: list[Optional[tuple[Any, Any]]] = [None] * len(subjobs)
    tensor_entries: list[tuple] = []
    for pos, (key, fn, args) in enumerate(subjobs):
        if fn in (_execute_chunk, _execute_chunk_cached):
            task = args[0]
            tensorizable = getattr(task, "tensorizable", None)
            if (
                tensorizable is not None
                and tensorizable()
                and hasattr(task, "build_cached")
                and hasattr(task, "tensor_spec")
                and hasattr(task, "samples_from_runs")
            ):
                context = task.build_cached()
                triple = task.tensor_spec(context)
                if triple is not None:
                    tensor_entries.append((pos, key, fn, args, context) + triple)
                    continue
        results[pos] = (key, fn(*args))

    # one tensor run per bias flag (unbiased first, for determinism)
    partitions: dict[bool, list[tuple]] = {}
    for entry in tensor_entries:
        engine = entry[5]
        partitions.setdefault(bool(engine.has_bias), []).append(entry)
    label = _worker_label()
    for _flag, entries in sorted(partitions.items()):
        jobs = []
        streams_of_entry = []
        for (_pos, _key, _fn, args, _context, engine, horizon,
             predicate) in entries:
            plan, spec = args[1], args[2]
            streams = [
                plan.stream(replication)
                for replication in spec.replication_indices()
            ]
            streams_of_entry.append(streams)
            jobs.append(MultiPointJob(engine, streams, horizon, predicate))
        started = time.perf_counter()
        runs_of_job = MultiPointContext(jobs).run()
        tensor_elapsed = time.perf_counter() - started
        total_rows = sum(len(streams) for streams in streams_of_entry) or 1
        for entry, streams, runs in zip(entries, streams_of_entry,
                                        runs_of_job):
            pos, key, fn, args, context = entry[:5]
            task, _plan, spec = args[0], args[1], args[2]
            samples = np.asarray(
                task.samples_from_runs(context, runs), dtype=float
            )
            if samples.ndim == 1:
                samples = samples[:, None]
            summary = ChunkSummary.from_samples(
                spec.index,
                samples,
                draws=sum(stream.draw_count for stream in streams),
                elapsed_seconds=tensor_elapsed * (len(streams) / total_rows),
                worker=label,
                events=sum(run.firings for run in runs),
                metrics=(
                    task.metrics_of(context)
                    if hasattr(task, "metrics_of") else None
                ),
                compile_seconds=float(
                    getattr(context, "compile_seconds", 0.0)
                ),
            )
            if fn is _execute_chunk_cached:
                cache, entry_key = args[3], args[4]
                cache.put(entry_key, summary.to_cache_dict())
            results[pos] = (key, summary)
    return results  # type: ignore[return-value]


def _execute_point(task: Callable[[], Any]) -> tuple[Any, str, float]:
    """Evaluate one sweep point; returns (value, worker label, elapsed)."""
    started = time.perf_counter()
    value = task()
    return value, _worker_label(), time.perf_counter() - started


def _jsonable(value: Any) -> Any:
    """Round-trip a point result through plain JSON types for caching."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


class ParallelRunner:
    """Chunked, cached, fault-tolerant executor for replication workloads.

    Parameters
    ----------
    workers:
        Process-pool size.  ``1`` runs everything in-process through the
        *same* chunk/merge path, so results match multi-worker runs
        bit-for-bit.
    chunk_size:
        Replications per dispatch unit (see
        :class:`~repro.runtime.plan.ReplicationPlan`).
    max_retries:
        Pool retries per chunk before the driver executes it in-process.
    chunk_timeout:
        Watchdog (seconds): if a round makes *no* progress for this long,
        outstanding chunks are treated as failed and retried.  ``None``
        disables the watchdog.
    cache:
        Optional :class:`~repro.runtime.cache.ResultCache`; hits skip
        execution entirely.
    chunk_cache:
        When True (and a ``cache`` is set), every completed chunk summary
        is additionally persisted under its own content-addressed key as
        it finishes.  A run interrupted between rounds — crash, kill,
        exhausted budget — then resumes from the cached chunks and
        produces bit-identical pooled estimates to an uninterrupted run.
        Off by default: it adds one small cache write per chunk.
    confidence:
        CI level for fixed-budget runs (rule-driven runs take it from the
        rule).
    profiler:
        Optional :class:`~repro.obs.profile.PhaseProfiler`; when given,
        the driver times its ``cache``, ``simulate`` and ``merge`` phases
        (driver-side wall time only — never inside the jump loop).
    events:
        Optional :class:`~repro.obs.events.EventBus`; when given, the
        driver announces run lifecycle, chunk scheduling/completions,
        retries, failures (with forensic repro bundles) and cache
        traffic as ``repro-events/1`` envelopes.  Emission is strictly
        driver-side bookkeeping — it never touches plans, streams or
        summaries, so results are bit-identical with the bus on or off.
    context_cache_size:
        Capacity of the per-worker-process compile-context FIFO
        (:mod:`repro.runtime.workerctx`; default
        ``workerctx.DEFAULT_MAX_ENTRIES``).  Applied to the driver
        process immediately and to worker processes via the pool
        initializer.  Evictions observable to the driver (serial runs
        and in-process fallbacks) emit a ``CacheMiss`` ledger event with
        scope ``worker-context``; worker-process evictions cannot be
        individually reported (workers carry no event bus).  Sizing
        never changes results — only how often contexts are rebuilt.
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int = 256,
        max_retries: int = 2,
        chunk_timeout: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        confidence: float = 0.95,
        profiler: Optional[PhaseProfiler] = None,
        chunk_cache: bool = False,
        events: Optional[EventBus] = None,
        context_cache_size: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if context_cache_size is not None and context_cache_size < 1:
            raise ValueError(
                f"context_cache_size must be >= 1, got {context_cache_size}"
            )
        self.workers = int(workers)
        self.chunk_size = int(chunk_size)
        self.max_retries = int(max_retries)
        self.chunk_timeout = chunk_timeout
        self.cache = cache
        self.confidence = confidence
        self.profiler = profiler
        self.chunk_cache = bool(chunk_cache)
        self.events = events
        self.context_cache_size = (
            None if context_cache_size is None else int(context_cache_size)
        )
        self.last_telemetry: Optional[TelemetrySnapshot] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        workerctx.configure(self.context_cache_size)
        workerctx.set_eviction_hook(self._context_evicted)

    def _context_evicted(self, key: str) -> None:
        """Driver-process context-FIFO eviction → ``CacheMiss`` event."""
        if self.events is not None:
            self.events.emit(CacheMiss(scope="worker-context", key=key))

    # ------------------------------------------------------------------
    # ledger emission (no-ops without an attached EventBus)
    # ------------------------------------------------------------------
    def _emit(self, event) -> None:
        if self.events is not None:
            self.events.emit(event)

    def _emit_chunk_failed(
        self,
        key: Any,
        fn: Callable,
        args: tuple,
        exc: BaseException,
        attempt: Optional[int] = None,
    ) -> None:
        """Announce a job that exhausted its retries, with forensics.

        Plain chunk jobs get a full repro bundle (pickled task/plan/spec
        triple for ``repro-cli replay-chunk``); grouped and point jobs
        carry traceback-only forensics.
        """
        if self.events is None:
            return
        bundle = None
        if fn in (_execute_chunk, _execute_chunk_cached):
            bundle = forensic_bundle(args[0], args[1], args[2])
        tb = "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        self.events.emit(
            ChunkFailed(
                chunk_id=_job_chunk_id(key, fn),
                error=f"{type(exc).__name__}: {exc}",
                traceback=tb,
                attempt=attempt,
                bundle=bundle,
            )
        )

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=workerctx.initialize_worker,
                initargs=(self.context_cache_size,),
            )
        return self._pool

    def _reset_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Shut the worker pool down (idempotent) and flush cache stats."""
        workerctx.clear_eviction_hook(self._context_evicted)
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self.cache is not None:
            try:
                self.cache.flush_session()
            except OSError:  # pragma: no cover - read-only cache dir
                pass

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def pop_telemetry(self) -> Optional[TelemetrySnapshot]:
        """The last run's telemetry, consumed (next call returns None)."""
        snapshot, self.last_telemetry = self.last_telemetry, None
        return snapshot

    # ------------------------------------------------------------------
    # fault-tolerant dispatch
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        jobs: dict[Any, tuple[Callable, tuple]],
        telemetry: TelemetryRecorder,
    ) -> dict[Any, Any]:
        """Execute ``jobs`` (key -> (fn, args)), retrying failures.

        Serial when ``workers == 1``; otherwise pool dispatch with up to
        ``max_retries`` resubmissions per job and an in-process fallback,
        so every job produces a result or raises from the driver itself.
        """
        if self.workers <= 1:
            results = {}
            for key, (fn, args) in jobs.items():
                try:
                    results[key] = fn(*args)
                except Exception as exc:
                    self._emit_chunk_failed(key, fn, args, exc)
                    raise
            return results

        results: dict[Any, Any] = {}
        pending = dict(jobs)
        attempts = {key: 0 for key in jobs}

        def note_failure(key: Any, error: Optional[str] = None) -> None:
            if key not in pending:
                return  # satisfied elsewhere (fallback or late completion)
            attempts[key] += 1
            telemetry.record_retry()
            if attempts[key] <= self.max_retries:
                self._emit(
                    ChunkRetried(
                        chunk_id=_job_chunk_id(key, pending[key][0]),
                        attempt=attempts[key],
                        error=error,
                    )
                )
            else:
                # last resort: the driver computes the chunk itself so the
                # round always completes with every chunk accounted for
                telemetry.record_fallback()
                fn, args = pending.pop(key)
                try:
                    results[key] = fn(*args)
                except Exception as exc:
                    self._emit_chunk_failed(
                        key, fn, args, exc, attempt=attempts[key]
                    )
                    raise

        while pending:
            pool = self._ensure_pool()
            try:
                futures: dict[Future, Any] = {
                    pool.submit(fn, *args): key
                    for key, (fn, args) in pending.items()
                }
            except RuntimeError:
                # pool broken before submission — rebuild and try again
                self._reset_pool()
                for key in list(pending):
                    note_failure(key, error="worker pool broken at submit")
                continue

            broken = False
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding,
                    timeout=self.chunk_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # watchdog: no chunk finished within chunk_timeout —
                    # treat the stragglers as lost and retry them
                    for future in outstanding:
                        future.cancel()
                        note_failure(
                            futures[future],
                            error=(
                                "timeout: no chunk progress within "
                                f"{self.chunk_timeout}s"
                            ),
                        )
                    break
                for future in done:
                    key = futures[future]
                    if key not in pending:
                        continue  # already satisfied by a fallback
                    try:
                        result = future.result()
                    except Exception as exc:
                        if isinstance(exc, BrokenProcessPool):
                            broken = True
                        note_failure(key, error=f"{type(exc).__name__}: {exc}")
                    else:
                        results[key] = result
                        pending.pop(key, None)
            if broken:
                self._reset_pool()
        return results

    # ------------------------------------------------------------------
    # Monte-Carlo runs
    # ------------------------------------------------------------------
    def run(
        self,
        task: ReplicationTask,
        *,
        seed: Optional[int] = None,
        n_replications: Optional[int] = None,
        rule: Optional[SequentialStoppingRule] = None,
    ) -> ParallelResult:
        """Estimate the task's mean over replications.

        Exactly one of ``n_replications`` (fixed budget) and ``rule``
        (sequential stopping) must be given.  For a fixed ``seed`` the
        result is bit-identical for every ``workers`` setting.
        """
        if (rule is None) == (n_replications is None):
            raise ValueError("pass exactly one of n_replications / rule")
        if n_replications is not None and n_replications < 1:
            raise ValueError(f"n_replications must be >= 1, got {n_replications}")

        plan = ReplicationPlan(seed, chunk_size=self.chunk_size)
        confidence = rule.confidence if rule is not None else self.confidence
        engine = str(getattr(task, "engine", "") or "")
        telemetry = TelemetryRecorder(
            self.workers, unit="replications", engine=engine
        )
        telemetry.start()
        self._emit(
            RunStarted(
                kind="run",
                workers=self.workers,
                unit="replications",
                engine=engine,
                total=n_replications,
                max_total=None if rule is None else rule.max_replications,
                detail={
                    "seed_entropy": plan.entropy,
                    "chunk_size": plan.chunk_size,
                    "task": type(task).__name__,
                },
            )
        )

        key: Optional[str] = None
        if self.cache is not None:
            key = cache_key(
                {
                    "kind": "replication-run",
                    "task": task.cache_token(),
                    "entropy": plan.entropy,
                    "chunk_size": plan.chunk_size,
                    "confidence": confidence,
                    "n_replications": n_replications,
                    "rule": None
                    if rule is None
                    else {
                        "confidence": rule.confidence,
                        "relative_width": rule.relative_width,
                        "min_replications": rule.min_replications,
                        "max_replications": rule.max_replications,
                    },
                }
            )
            with profile_span(self.profiler, "cache"):
                record = self.cache.get(key)
            telemetry.record_cache(hit=record is not None)
            if self.events is not None:
                self._emit(
                    CacheHit(scope="run", key=key)
                    if record is not None
                    else CacheMiss(scope="run", key=key)
                )
            if record is not None:
                telemetry.activity_metrics = record.get("activity_metrics")
                telemetry.finish()
                snapshot = telemetry.snapshot()
                self.last_telemetry = snapshot
                self._emit(
                    RunFinished(
                        outcome="cached",
                        units=int(record["n_replications"]),
                        converged=bool(record["converged"]),
                        telemetry=snapshot.to_dict()
                        if self.events is not None
                        else None,
                    )
                )
                return ParallelResult(
                    values=np.asarray(record["values"], dtype=float),
                    half_widths=np.asarray(record["half_widths"], dtype=float),
                    n_replications=int(record["n_replications"]),
                    converged=bool(record["converged"]),
                    from_cache=True,
                    telemetry=snapshot,
                )

        completed: dict[int, ChunkSummary] = {}
        done = 0
        converged = False
        try:
            if rule is None:
                self._run_window(
                    task, plan, 0, n_replications, completed, telemetry
                )
                done = n_replications
                converged = True
            else:
                round_size = plan.align_up(
                    min(rule.min_replications, rule.max_replications)
                )
                while done < rule.max_replications:
                    target = min(done + round_size, rule.max_replications)
                    self._run_window(
                        task, plan, done, target - done, completed, telemetry
                    )
                    done = target
                    with profile_span(self.profiler, "merge"):
                        pooled = combine(completed.values())
                    intervals = pooled_intervals(pooled, rule.confidence)
                    informative = [iv for iv in intervals if iv.mean > 0]
                    if informative and all(
                        rule.satisfied(iv) for iv in informative
                    ):
                        converged = True
                        break
        except Exception as exc:
            self._emit(
                RunFinished(
                    outcome="failed",
                    units=done,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            raise

        with profile_span(self.profiler, "merge"):
            pooled = combine(completed.values())
        intervals = pooled_intervals(pooled, confidence)
        values = np.atleast_1d(pooled.mean)
        halves = np.asarray([iv.half_width for iv in intervals])
        telemetry.activity_metrics = pooled.metrics
        telemetry.finish()

        if key is not None:
            record = {
                "values": [float(v) for v in values],
                "half_widths": [float(h) for h in halves],
                "n_replications": done,
                "converged": converged,
            }
            if pooled.metrics is not None:
                record["activity_metrics"] = pooled.metrics
            with profile_span(self.profiler, "cache"):
                self.cache.put(key, record)
        snapshot = telemetry.snapshot()
        self.last_telemetry = snapshot
        if self.events is not None:
            self._emit(
                RunFinished(
                    outcome="ok",
                    units=done,
                    converged=converged,
                    telemetry=snapshot.to_dict(),
                )
            )
        return ParallelResult(
            values=values,
            half_widths=halves,
            n_replications=done,
            converged=converged,
            from_cache=False,
            telemetry=snapshot,
        )

    def _run_window(
        self,
        task: ReplicationTask,
        plan: ReplicationPlan,
        start: int,
        count: int,
        completed: dict[int, ChunkSummary],
        telemetry: TelemetryRecorder,
    ) -> None:
        specs = plan.chunks(start, count)
        jobs, cached = self.chunk_jobs(task, plan, specs, telemetry)
        for summary in cached:
            completed[summary.chunk_index] = summary
        with profile_span(self.profiler, "simulate"):
            dispatched = self._dispatch(jobs, telemetry)
        for job_key, summary in dispatched.items():
            telemetry.record_chunk(
                summary.worker,
                summary.n,
                draws=summary.draws,
                busy_seconds=summary.elapsed_seconds,
                events=summary.events,
            )
            self._emit(
                ChunkCompleted(
                    chunk_id=_chunk_id(job_key),
                    n=summary.n,
                    worker=summary.worker,
                    elapsed_seconds=summary.elapsed_seconds,
                    events=summary.events,
                    draws=summary.draws,
                )
            )
            if self.profiler is not None and summary.compile_seconds > 0.0:
                # worker-side model build/compile time, carried home on the
                # summary; cached contexts report 0.0, so a multi-round run
                # shows at most one compile span per worker process
                self.profiler.add("compile", summary.compile_seconds)
            completed[summary.chunk_index] = summary

    # ------------------------------------------------------------------
    # chunk-level building blocks (also used by repro.orchestrate)
    # ------------------------------------------------------------------
    def chunk_jobs(
        self,
        task: ReplicationTask,
        plan: ReplicationPlan,
        specs: Sequence[ChunkSpec],
        telemetry: TelemetryRecorder,
        key_prefix: Any = None,
    ) -> tuple[dict[Any, tuple[Callable, tuple]], list[ChunkSummary]]:
        """Split chunk specs into dispatchable jobs and cached summaries.

        With :attr:`chunk_cache` enabled, already-computed chunks are
        restored from the cache (counted as telemetry cache hits) and the
        remaining jobs persist their summary worker-side as they finish.
        ``key_prefix`` namespaces the job keys so multiple tasks' chunks
        can ride in one :meth:`execute_jobs` dispatch.
        """
        jobs: dict[Any, tuple[Callable, tuple]] = {}
        cached: list[ChunkSummary] = []
        use_cache = self.chunk_cache and self.cache is not None
        point_id = None if key_prefix is None else str(key_prefix)
        for spec in specs:
            job_key = (
                spec.index if key_prefix is None else (key_prefix, spec.index)
            )
            if use_cache:
                entry_key = _chunk_cache_key(task, plan, spec)
                with profile_span(self.profiler, "cache"):
                    record = self.cache.get(entry_key)
                telemetry.record_cache(hit=record is not None)
                if self.events is not None:
                    self._emit(
                        CacheHit(
                            scope="chunk",
                            chunk_id=_chunk_id(job_key),
                            key=entry_key,
                        )
                        if record is not None
                        else CacheMiss(
                            scope="chunk",
                            chunk_id=_chunk_id(job_key),
                            key=entry_key,
                        )
                    )
                if record is not None:
                    cached.append(ChunkSummary.from_cache_dict(record))
                    continue
                jobs[job_key] = (
                    _execute_chunk_cached,
                    (task, plan, spec, self.cache, entry_key),
                )
            else:
                jobs[job_key] = (_execute_chunk, (task, plan, spec))
            self._emit(
                ChunkScheduled(
                    chunk_id=_chunk_id(job_key),
                    start=spec.start,
                    count=spec.count,
                    point_id=point_id,
                )
            )
        return jobs, cached

    def execute_jobs(
        self,
        jobs: dict[Any, tuple[Callable, tuple]],
        telemetry: TelemetryRecorder,
    ) -> dict[Any, Any]:
        """Dispatch prepared jobs through the fault-tolerant pool machinery.

        Public entry point for drivers (the adaptive orchestrator) that
        schedule chunks from *several* tasks in one round: retries,
        watchdog and in-process fallback behave exactly as in
        :meth:`run`.
        """
        return self._dispatch(jobs, telemetry)

    def execute_jobs_grouped(
        self,
        jobs: dict[Any, tuple[Callable, tuple]],
        telemetry: TelemetryRecorder,
        group_size: Optional[int] = None,
        tensorize: bool = False,
    ) -> dict[Any, Any]:
        """Dispatch prepared jobs in contiguous groups (sweep batching).

        Jobs are sliced in insertion order — the orchestrator emits them
        point-contiguously, so a group usually holds chunks of one or a
        few neighbouring sweep points and each worker reuses its memoised
        task context across the whole slice.  ``group_size`` defaults to
        ``ceil(len(jobs) / (workers * 2))``: every worker gets about two
        groups per round, enough slack for the pool to load-balance while
        still amortising dispatch overhead.

        Grouping is pure scheduling: each sub-job runs the identical
        ``(fn, args)`` it would run solo, so results are bit-identical to
        :meth:`execute_jobs` for any group size.  Retries, watchdog and
        in-process fallback act on whole groups through the same
        :meth:`_dispatch` machinery.

        ``tensorize`` routes each group through
        :func:`_execute_chunk_group_tensorized`, which stacks the
        group's eligible chunks into one cross-point SoA tensor run
        (see :mod:`repro.san.multipoint`); ineligible sub-jobs run solo
        inside the group unchanged.  Results stay bit-identical; groups
        default to one per worker — wider tensors amortise more
        per-step overhead — and the serial runner tensorizes too (the
        win is kernel-level, not scheduling-level).
        """
        group_fn: Callable = (
            _execute_chunk_group_tensorized if tensorize
            else _execute_chunk_group
        )
        if not tensorize and (self.workers <= 1 or len(jobs) <= 1):
            return self._dispatch(jobs, telemetry)
        items = list(jobs.items())
        if group_size is None:
            if tensorize:
                group_size = -(-len(items) // max(1, self.workers))
            else:
                group_size = -(-len(items) // (self.workers * 2))
        group_size = max(1, int(group_size))
        grouped: dict[int, tuple[Callable, tuple]] = {}
        for start in range(0, len(items), group_size):
            subjobs = tuple(
                (key, fn, args)
                for key, (fn, args) in items[start:start + group_size]
            )
            grouped[start] = (group_fn, (subjobs,))
        results: dict[Any, Any] = {}
        for pairs in self._dispatch(grouped, telemetry).values():
            results.update(pairs)
        return results

    # ------------------------------------------------------------------
    # sweep maps
    # ------------------------------------------------------------------
    def map(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Evaluate independent point tasks, preserving input order.

        Tasks exposing ``cache_token()`` participate in result caching;
        the rest are always computed.
        """
        telemetry = TelemetryRecorder(self.workers, unit="points")
        telemetry.start()
        self._emit(
            RunStarted(
                kind="map",
                workers=self.workers,
                unit="points",
                total=len(tasks),
            )
        )
        results: list[Any] = [None] * len(tasks)
        keys: dict[int, str] = {}
        jobs: dict[int, tuple[Callable, tuple]] = {}
        for index, task in enumerate(tasks):
            if self.cache is not None and hasattr(task, "cache_token"):
                key = cache_key({"kind": "sweep-point", "task": task.cache_token()})
                record = self.cache.get(key)
                telemetry.record_cache(hit=record is not None)
                if self.events is not None:
                    self._emit(
                        CacheHit(
                            scope="point",
                            chunk_id=f"point-{index}",
                            key=key,
                        )
                        if record is not None
                        else CacheMiss(
                            scope="point",
                            chunk_id=f"point-{index}",
                            key=key,
                        )
                    )
                if record is not None:
                    results[index] = record["value"]
                    continue
                keys[index] = key
            jobs[index] = (_execute_point, (task,))
        try:
            dispatched = self._dispatch(jobs, telemetry)
        except Exception as exc:
            self._emit(
                RunFinished(
                    outcome="failed",
                    units=0,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            raise
        for index, (value, worker, elapsed) in dispatched.items():
            telemetry.record_chunk(worker, 1, busy_seconds=elapsed)
            self._emit(
                ChunkCompleted(
                    chunk_id=f"point-{index}",
                    n=1,
                    worker=worker,
                    elapsed_seconds=elapsed,
                )
            )
            results[index] = value
            if index in keys:
                self.cache.put(keys[index], {"value": _jsonable(value)})
        telemetry.finish()
        snapshot = telemetry.snapshot()
        self.last_telemetry = snapshot
        if self.events is not None:
            self._emit(
                RunFinished(
                    outcome="ok",
                    units=len(tasks),
                    telemetry=snapshot.to_dict(),
                )
            )
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelRunner(workers={self.workers}, "
            f"chunk_size={self.chunk_size}, "
            f"cache={'on' if self.cache is not None else 'off'})"
        )
