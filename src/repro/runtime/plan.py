"""Deterministic sharding of replications into seed-stable chunks.

The contract that makes parallel execution trustworthy is *scheduling
independence*: the estimate produced for a given experiment seed must be
bit-identical whether the replications run serially, on 2 workers or on
16.  :class:`ReplicationPlan` delivers that by construction:

* replication ``i`` always draws from
  ``SeedSequence(entropy, spawn_key=(i,))`` — exactly the ``i``-th child a
  :class:`~repro.stochastic.rng.StreamFactory` with the same seed would
  hand out serially, but addressable at random without materialising the
  ``i-1`` streams before it;
* chunk boundaries are fixed multiples of ``chunk_size`` on the
  replication-index axis, so the partition of work never depends on the
  worker count — workers only change *who* computes a chunk, never *what*
  a chunk is;
* merging (:mod:`repro.runtime.merge`) consumes chunk summaries in chunk
  order, so the floating-point reduction order is fixed too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stochastic.rng import RandomStream

__all__ = ["ChunkSpec", "ReplicationPlan"]


@dataclass(frozen=True)
class ChunkSpec:
    """A contiguous slice of the replication index space.

    Chunks are the unit of dispatch, retry and caching.  ``index`` is the
    global chunk number (``start // chunk_size``), so a chunk keeps its
    identity across rounds and across worker counts.
    """

    index: int
    start: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.count <= 0:
            raise ValueError(
                f"invalid chunk: start={self.start}, count={self.count}"
            )

    @property
    def stop(self) -> int:
        """One past the last replication index of this chunk."""
        return self.start + self.count

    def replication_indices(self) -> range:
        """Global replication indices covered by this chunk."""
        return range(self.start, self.stop)


class ReplicationPlan:
    """Maps replication indices to independent random streams and chunks.

    Parameters
    ----------
    seed:
        Experiment seed (``None`` draws fresh OS entropy once, in the
        parent process, so every worker still agrees on the streams).
    chunk_size:
        Replications per dispatch unit.  Part of the reproducibility
        contract: changing it changes the floating-point merge grouping,
        so it is included in cache keys.
    """

    def __init__(self, seed: int | None = None, chunk_size: int = 256) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        root = np.random.SeedSequence(seed)
        #: the resolved root entropy — picklable, shipped to workers
        self.entropy = root.entropy
        self.seed = seed
        self.chunk_size = int(chunk_size)

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def seed_sequence(self, replication: int) -> np.random.SeedSequence:
        """The seed sequence of one replication, addressable at random."""
        if replication < 0:
            raise ValueError(f"replication index must be >= 0, got {replication}")
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=(replication,)
        )

    def stream(self, replication: int) -> RandomStream:
        """The :class:`RandomStream` of one replication."""
        return RandomStream(
            self.seed_sequence(replication), label=f"rep-{replication}"
        )

    def chunk_streams(self, spec: ChunkSpec) -> list[RandomStream]:
        """All streams of a chunk (what a worker materialises locally)."""
        return [self.stream(i) for i in spec.replication_indices()]

    # ------------------------------------------------------------------
    # chunking
    # ------------------------------------------------------------------
    def chunks(self, start: int, count: int) -> list[ChunkSpec]:
        """Chunks covering replications ``[start, start + count)``.

        Boundaries sit on fixed multiples of ``chunk_size`` regardless of
        the requested window, so ``chunks(0, 1000)`` and
        ``chunks(0, 500) + chunks(500, 500)`` produce identical specs.
        """
        if start < 0 or count < 0:
            raise ValueError(f"invalid window: start={start}, count={count}")
        specs: list[ChunkSpec] = []
        position = start
        stop = start + count
        while position < stop:
            boundary = (position // self.chunk_size + 1) * self.chunk_size
            upper = min(boundary, stop)
            specs.append(
                ChunkSpec(
                    index=position // self.chunk_size,
                    start=position,
                    count=upper - position,
                )
            )
            position = upper
        return specs

    def align_up(self, n: int) -> int:
        """Smallest multiple of ``chunk_size`` that is >= ``n`` (min 1 chunk)."""
        if n <= 0:
            return self.chunk_size
        return -(-n // self.chunk_size) * self.chunk_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicationPlan(seed={self.seed!r}, chunk_size={self.chunk_size})"
        )
