"""Parallel Monte-Carlo execution engine.

The runtime layer sits between the stochastic models (:mod:`repro.san`,
:mod:`repro.core`) and the output analysis (:mod:`repro.stats`): it shards
replications into deterministic, seed-stable chunks
(:mod:`~repro.runtime.plan`), executes them on a fault-tolerant process
pool (:mod:`~repro.runtime.pool`), pools per-chunk moment summaries
(:mod:`~repro.runtime.merge`), memoises finished runs in a
content-addressed on-disk cache (:mod:`~repro.runtime.cache`) and reports
throughput/utilization telemetry (:mod:`~repro.runtime.telemetry`).

The headline guarantee: for a fixed seed the merged estimate is
**bit-identical for any worker count** — parallelism changes who computes
a chunk, never what is computed or in which order it is merged.

See ``docs/parallel_runtime.md`` for the architecture notes.
"""

from repro.runtime.cache import ResultCache, cache_key, fingerprint
from repro.runtime.merge import (
    ChunkSummary,
    combine,
    merge_two,
    pooled_intervals,
)
from repro.runtime.plan import ChunkSpec, ReplicationPlan
from repro.runtime.pool import ParallelResult, ParallelRunner, ReplicationTask
from repro.runtime.telemetry import (
    TelemetryRecorder,
    TelemetrySnapshot,
    WorkerStats,
)

__all__ = [
    "ChunkSpec",
    "ReplicationPlan",
    "ChunkSummary",
    "merge_two",
    "combine",
    "pooled_intervals",
    "ResultCache",
    "cache_key",
    "fingerprint",
    "ParallelRunner",
    "ParallelResult",
    "ReplicationTask",
    "TelemetryRecorder",
    "TelemetrySnapshot",
    "WorkerStats",
]
