"""Order-stable combination of per-chunk moment summaries.

Workers never ship raw samples back to the driver — a chunk of
replications is reduced in-worker to a :class:`ChunkSummary` (count, mean
vector, sum of squared deviations) and the driver pools summaries with
Chan et al.'s parallel update.  Pooling is numerically exact enough that
the pooled mean/variance/CI agree with the serial
:func:`repro.stats.normal_ci` on the same samples to ~1e-15 relative
(tested at 1e-12), and it is performed in chunk-index order so the result
is bit-identical for any assignment of chunks to workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np
from scipy import stats as scipy_stats

from repro.obs.metrics import merge_metric_dicts
from repro.stats.confidence import ConfidenceInterval

__all__ = [
    "ChunkSummary",
    "merge_two",
    "combine",
    "pooled_intervals",
]


@dataclass
class ChunkSummary:
    """Sufficient statistics of one chunk of replications.

    ``mean``/``m2`` are per-coordinate (one coordinate per evaluation time
    in the unsafety workload).  ``draws`` is the total number of RNG
    variates consumed (:attr:`repro.stochastic.rng.RandomStream.draw_count`
    summed over the chunk's streams), carried for cross-worker audit
    trails.  ``events`` is the number of simulation events (timed activity
    firings) the chunk executed, when the task reports it — the basis of
    the telemetry footer's events/sec-per-engine figure.  ``metrics`` is
    the chunk's serialised per-activity
    :class:`~repro.obs.metrics.MetricSummary` when the task was run with
    observability metrics enabled — merged in the same chunk-index order
    as the moments, so parallel runs report metric summaries identical to
    serial ones.
    """

    chunk_index: int
    n: int
    mean: np.ndarray
    m2: np.ndarray
    draws: int = 0
    elapsed_seconds: float = 0.0
    worker: str = ""
    events: int = 0
    metrics: Optional[dict] = None
    #: worker-side model build/compile wall time for this chunk (0.0 when
    #: the worker served the chunk from its memoised context)
    compile_seconds: float = 0.0

    @classmethod
    def from_samples(
        cls,
        chunk_index: int,
        samples: np.ndarray,
        draws: int = 0,
        elapsed_seconds: float = 0.0,
        worker: str = "",
        events: int = 0,
        metrics: Optional[dict] = None,
        compile_seconds: float = 0.0,
    ) -> "ChunkSummary":
        """Reduce a ``(n, k)`` sample block to its summary."""
        block = np.atleast_2d(np.asarray(samples, dtype=float))
        if block.size == 0:
            raise ValueError("cannot summarise an empty sample block")
        mean = block.mean(axis=0)
        m2 = ((block - mean) ** 2).sum(axis=0)
        return cls(
            chunk_index=chunk_index,
            n=int(block.shape[0]),
            mean=mean,
            m2=m2,
            draws=int(draws),
            elapsed_seconds=float(elapsed_seconds),
            worker=worker,
            events=int(events),
            metrics=metrics,
            compile_seconds=float(compile_seconds),
        )

    @property
    def variance(self) -> np.ndarray:
        """Unbiased per-coordinate sample variance (NaN for n < 2)."""
        if self.n < 2:
            return np.full_like(self.mean, math.nan)
        return self.m2 / (self.n - 1)

    def to_cache_dict(self) -> dict:
        """JSON-serialisable record for chunk-level result caching.

        Floats round-trip exactly through JSON (``repr`` shortest form),
        so a summary restored with :meth:`from_cache_dict` merges
        bit-identically to the freshly computed one.
        """
        record = {
            "chunk_index": self.chunk_index,
            "n": self.n,
            "mean": [float(v) for v in np.atleast_1d(self.mean)],
            "m2": [float(v) for v in np.atleast_1d(self.m2)],
            "draws": self.draws,
            "elapsed_seconds": self.elapsed_seconds,
            "worker": self.worker,
            "events": self.events,
            "compile_seconds": self.compile_seconds,
        }
        if self.metrics is not None:
            record["metrics"] = self.metrics
        return record

    @classmethod
    def from_cache_dict(cls, record: dict) -> "ChunkSummary":
        """Rebuild a summary stored by :meth:`to_cache_dict`."""
        return cls(
            chunk_index=int(record["chunk_index"]),
            n=int(record["n"]),
            mean=np.asarray(record["mean"], dtype=float),
            m2=np.asarray(record["m2"], dtype=float),
            draws=int(record.get("draws", 0)),
            elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
            worker=str(record.get("worker", "")),
            events=int(record.get("events", 0)),
            metrics=record.get("metrics"),
            compile_seconds=float(record.get("compile_seconds", 0.0)),
        )


def merge_two(a: ChunkSummary, b: ChunkSummary) -> ChunkSummary:
    """Pool two summaries (Chan/Welford parallel update)."""
    n = a.n + b.n
    delta = b.mean - a.mean
    mean = a.mean + delta * (b.n / n)
    m2 = a.m2 + b.m2 + delta * delta * (a.n * b.n / n)
    return ChunkSummary(
        chunk_index=min(a.chunk_index, b.chunk_index),
        n=n,
        mean=mean,
        m2=m2,
        draws=a.draws + b.draws,
        elapsed_seconds=a.elapsed_seconds + b.elapsed_seconds,
        worker="pooled",
        events=a.events + b.events,
        metrics=merge_metric_dicts(a.metrics, b.metrics),
        compile_seconds=a.compile_seconds + b.compile_seconds,
    )


def combine(summaries: Iterable[ChunkSummary]) -> ChunkSummary:
    """Pool summaries in chunk-index order.

    Sorting fixes the floating-point reduction order, which is what makes
    the pooled result independent of completion order and worker count.
    """
    ordered = sorted(summaries, key=lambda s: s.chunk_index)
    if not ordered:
        raise ValueError("no chunk summaries to combine")
    pooled = ordered[0]
    for summary in ordered[1:]:
        pooled = merge_two(pooled, summary)
    return pooled


def pooled_intervals(
    summary: ChunkSummary, confidence: float = 0.95
) -> list[ConfidenceInterval]:
    """Per-coordinate CIs of a pooled summary.

    Uses the Student-t quantile, matching
    :func:`repro.stats.normal_ci` (``use_t=True``) on the same samples.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    if summary.n < 2:
        return [
            ConfidenceInterval(float(m), math.inf, confidence, summary.n)
            for m in np.atleast_1d(summary.mean)
        ]
    alpha = 1.0 - confidence
    quantile = float(scipy_stats.t.ppf(1.0 - alpha / 2.0, df=summary.n - 1))
    std = np.sqrt(summary.m2 / (summary.n - 1))
    halves = quantile * std / math.sqrt(summary.n)
    return [
        ConfidenceInterval(float(m), float(h), confidence, summary.n)
        for m, h in zip(np.atleast_1d(summary.mean), np.atleast_1d(halves))
    ]
