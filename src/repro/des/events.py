"""Event primitives for the discrete-event kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.des.environment import Environment

__all__ = ["Event", "Timeout", "AnyOf", "AllOf", "Interrupt", "EventAborted"]


class EventAborted(RuntimeError):
    """Raised into a process waiting on an event that failed."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    Attributes
    ----------
    cause:
        Arbitrary object describing why the interrupt happened.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    Life cycle: *pending* → *triggered* (scheduled in the queue) →
    *processed* (callbacks ran).  An event may instead *fail*, in which case
    waiting processes receive :class:`EventAborted` (or the failure's
    exception) at their ``yield``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True unless the event failed."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or its failure exception)."""
        return self._value

    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay:g}>"


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        return {
            event: event.value for event in self.events if event.processed
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of its constituent events fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect_values())


class AllOf(_Condition):
    """Fires when all of its constituent events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect_values())
