"""Shared resources for simulation processes.

Provides the classic trio: a counted :class:`Resource` (e.g. highway exit
gates), a :class:`PriorityResource` where waiters are served by priority
(used for maneuver coordination — Class-A maneuvers preempt the queue of
lower-severity requests), and a :class:`Store` for message queues in the
V2V communication substrate.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Optional

from repro.des.environment import Environment
from repro.des.events import Event

__all__ = ["Resource", "PriorityResource", "Store"]


class _Request(Event):
    """Pending acquisition of a resource; fires when granted."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)

    # context-manager sugar: ``with res.request() as req: yield req``
    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.triggered and self.ok:
            self.resource.release()
        else:
            self.cancel()


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO queue."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: list[tuple[Any, int, _Request]] = []
        self._counter = count()

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending requests."""
        return len(self._waiters)

    # ------------------------------------------------------------------
    def _sort_key(self, priority: Any) -> Any:
        return 0  # FIFO: heap orders by insertion counter only

    def request(self, priority: Any = None) -> _Request:
        """Ask for one slot; the returned event fires when granted."""
        key = self._sort_key(priority)  # validates priority up front
        req = _Request(self.env, self)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            req.succeed()
        else:
            heapq.heappush(self._waiters, (key, next(self._counter), req))
        return req

    def release(self) -> None:
        """Return one slot and grant it to the next waiter, if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching grant")
        if self._waiters:
            _, _, nxt = heapq.heappop(self._waiters)
            nxt.succeed()
            # slot transfers directly: _in_use unchanged
        else:
            self._in_use -= 1

    def _cancel(self, req: _Request) -> None:
        for i, (_, _, waiting) in enumerate(self._waiters):
            if waiting is req:
                self._waiters.pop(i)
                heapq.heapify(self._waiters)
                return


class PriorityResource(Resource):
    """A resource whose queue is served lowest-priority-value first."""

    def _sort_key(self, priority: Any) -> Any:
        if priority is None:
            raise ValueError("PriorityResource.request() requires a priority")
        return priority


class Store:
    """An unbounded (or bounded) FIFO store of items.

    ``put`` events fire when the item is accepted; ``get`` events fire with
    the retrieved item once one is available.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Event, Any]] = []

    # ------------------------------------------------------------------
    @property
    def items(self) -> list[Any]:
        """Snapshot of stored items (copy; mutation-safe)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Insert ``item``; the event fires when accepted."""
        event = Event(self.env)
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
            event.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Retrieve the oldest item; the event fires with the item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.pop(0))
            if self._putters:
                put_event, item = self._putters.pop(0)
                self._items.append(item)
                put_event.succeed()
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a pending ``get`` so it cannot swallow a later item.

        Returns True when the event was still queued (and is now removed);
        False when it already fired or was never a getter here.
        """
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False

    def get_filtered(self, predicate: Callable[[Any], bool]) -> Optional[Any]:
        """Immediately remove and return the first item matching ``predicate``.

        Returns ``None`` when no stored item matches (does not wait).
        """
        for i, item in enumerate(self._items):
            if predicate(item):
                return self._items.pop(i)
        return None
