"""The simulation environment: clock + event queue + run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Optional

from repro.des.events import Event, Timeout

__all__ = ["Environment", "StopSimulation"]


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Environment:
    """Discrete-event simulation environment.

    The environment advances simulated time from one scheduled event to the
    next.  Determinism: events scheduled for the same time fire in FIFO
    scheduling order (a monotone tiebreaker in the heap key).

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.
    observer:
        Optional observability hook (see :mod:`repro.obs`); its
        ``record_des_event(when)`` is called for every processed event.
    """

    def __init__(self, initial_time: float = 0.0, observer=None) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = count()
        self._active_process = None
        self.observer = observer

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self):
        """The process currently executing, if any."""
        return self._active_process

    @property
    def queue_size(self) -> int:
        """Number of scheduled events not yet processed."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator):
        """Start a new process from ``generator`` and return it."""
        from repro.des.process import Process

        return Process(self, generator)

    # ------------------------------------------------------------------
    # scheduling & run loop
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        if self.observer is not None:
            self.observer.record_des_event(when)
        event._run_callbacks()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the queue drains;
            a number — run until the clock reaches it (the clock is set to
            exactly ``until`` when the horizon is hit);
            an :class:`Event` — run until that event has been processed and
            return its value.

        Returns
        -------
        The value of the ``until`` event, if one was given.
        """
        stop_event: Optional[Event] = None
        horizon = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            stop_event.callbacks.append(_StopAtEvent())
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"run(until={horizon}) is in the past (now={self._now})"
                )

        try:
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None:
            raise RuntimeError(
                "simulation ended before the awaited event was triggered"
            )
        if horizon != float("inf"):
            self._now = horizon
        return None


class _StopAtEvent:
    """Callback that stops the run loop when its event processes."""

    def __call__(self, event: Event) -> None:
        if event.ok:
            raise StopSimulation(event.value)
        raise event.value
