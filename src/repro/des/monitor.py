"""Instrumentation for simulations: time series and summary statistics."""

from __future__ import annotations

import math
from typing import Any

import numpy as np

__all__ = ["Monitor", "TimeSeries"]


class Monitor:
    """Streaming summary statistics (Welford's algorithm).

    Accumulates count / mean / variance / min / max in O(1) memory —
    suitable for long simulations where storing every sample is wasteful.
    """

    __slots__ = ("name", "_n", "_mean", "_m2", "_min", "_max")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float) -> None:
        """Add one observation."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN for fewer than 2 observations)."""
        if self._n < 2:
            return math.nan
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    @property
    def minimum(self) -> float:
        """Smallest observation (inf when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (-inf when empty)."""
        return self._max

    def merge(self, other: "Monitor") -> "Monitor":
        """Combine two monitors (parallel Welford merge); returns ``self``."""
        if other._n == 0:
            return self
        if self._n == 0:
            self._n, self._mean, self._m2 = other._n, other._mean, other._m2
            self._min, self._max = other._min, other._max
            return self
        n = self._n + other._n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._n * other._n / n
        self._mean += delta * other._n / n
        self._n = n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Monitor({self.name!r}, n={self._n}, mean={self.mean:.4g}, "
            f"std={self.std:.4g})"
        )


class TimeSeries:
    """A recorded (time, value) trajectory with time-average utilities.

    Used for piecewise-constant state observables, e.g. platoon occupancy
    over time in the traffic substrate.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time went backwards: {time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def time_average(self, until: float | None = None) -> float:
        """Time-weighted average assuming piecewise-constant values.

        Parameters
        ----------
        until:
            Horizon closing the last segment; defaults to the last
            recorded time (in which case the final sample has zero weight).
        """
        if not self.times:
            return math.nan
        end = self.times[-1] if until is None else float(until)
        if end < self.times[-1]:
            raise ValueError(f"until={end} precedes last sample {self.times[-1]}")
        times = np.asarray(self.times + [end])
        values = np.asarray(self.values + [self.values[-1]])
        widths = np.diff(times)
        total = float(widths.sum())
        if total == 0.0:
            return float(values[0])
        return float(np.dot(widths, values[:-1]) / total)

    def value_at(self, time: float) -> float:
        """Value of the piecewise-constant trajectory at ``time``."""
        if not self.times or time < self.times[0]:
            raise ValueError(f"no sample at or before t={time}")
        idx = int(np.searchsorted(np.asarray(self.times), time, side="right")) - 1
        return self.values[idx]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (times, values) as NumPy arrays."""
        return np.asarray(self.times), np.asarray(self.values)
