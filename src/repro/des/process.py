"""Generator-based simulation processes."""

from __future__ import annotations

from typing import Any, Generator

from repro.des.events import Event, EventAborted, Interrupt

__all__ = ["Process", "ProcessDied"]


class ProcessDied(RuntimeError):
    """Raised when interacting with a process that has already finished."""


class Process(Event):
    """A running simulation process.

    A process is itself an :class:`Event` that fires (with the generator's
    return value) when the generator finishes, so processes can wait for each
    other simply by yielding them.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env, generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off the process at the current time via an initialisation event.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The interrupted process stops waiting on its current event and must
        handle (or propagate) the exception.
        """
        if self._triggered:
            raise ProcessDied(f"cannot interrupt finished process {self!r}")
        if self._waiting_on is self:
            raise RuntimeError("a process cannot interrupt itself")
        # Deliver asynchronously via a zero-delay event so that interrupts
        # issued while the target is actively executing are deferred.
        deliver = Event(self.env)
        deliver.callbacks.append(lambda _e: self._throw(Interrupt(cause)))
        deliver.succeed()

    # ------------------------------------------------------------------
    def _detach(self) -> None:
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:  # finished in the meantime; drop the interrupt
            return
        self._detach()
        self._step(exc, throwing=True)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value, throwing=False)
        else:
            exc = event.value
            if not isinstance(exc, BaseException):
                exc = EventAborted(repr(exc))
            self._step(exc, throwing=True)

    def _step(self, payload: Any, throwing: bool) -> None:
        env = self.env
        previous, env._active_process = env._active_process, self
        try:
            if throwing:
                target = self._generator.throw(payload)
            else:
                target = self._generator.send(payload)
        except StopIteration as stop:
            env._active_process = previous
            self.succeed(stop.value)
            return
        except Interrupt:
            env._active_process = previous
            self.fail(RuntimeError("process did not handle an Interrupt"))
            return
        except Exception as exc:  # noqa: BLE001 - process failure, not crash
            env._active_process = previous
            self.fail(exc)
            return
        finally:
            env._active_process = previous

        if not isinstance(target, Event):
            self._crash(
                TypeError(
                    f"process yielded {target!r}; processes must yield Event "
                    f"objects (Timeout, Process, AnyOf, ...)"
                )
            )
            return
        if target.callbacks is None:
            # Already processed: resume immediately via a zero-delay event to
            # preserve FIFO fairness.
            immediate = Event(env)
            immediate.callbacks.append(
                lambda _e: self._resume(target)
            )
            immediate.succeed()
            self._waiting_on = target
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def _crash(self, exc: BaseException) -> None:
        try:
            self._generator.throw(exc)
        except BaseException as raised:  # noqa: BLE001 - propagate as failure
            if not self._triggered:
                self.fail(raised)
            return
        if not self._triggered:
            self.fail(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self._generator, "__name__", "process")
        return f"<Process {name} {'alive' if self.is_alive else 'done'}>"
