"""Process-based discrete-event simulation kernel.

A small SimPy-like kernel: an :class:`~repro.des.environment.Environment`
owns a time-ordered event queue; *processes* are Python generators that
``yield`` events (timeouts, other events, other processes) and are resumed
when those events fire.  The microscopic traffic substrate
(:mod:`repro.agents`) is written against this kernel; the SAN executor uses
the lower-level event queue directly.
"""

from repro.des.events import Event, Timeout, AnyOf, AllOf, Interrupt, EventAborted
from repro.des.environment import Environment, StopSimulation
from repro.des.process import Process, ProcessDied
from repro.des.resources import Resource, Store, PriorityResource
from repro.des.monitor import Monitor, TimeSeries

__all__ = [
    "Environment",
    "StopSimulation",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "EventAborted",
    "Process",
    "ProcessDied",
    "Resource",
    "Store",
    "PriorityResource",
    "Monitor",
    "TimeSeries",
]
