"""Batch-means analysis for steady-state simulation output."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.confidence import ConfidenceInterval, normal_ci

__all__ = ["batch_means", "BatchMeansResult"]


@dataclass
class BatchMeansResult:
    """Outcome of a batch-means analysis."""

    interval: ConfidenceInterval
    n_batches: int
    batch_size: int
    warmup_discarded: int
    lag1_autocorrelation: float


def _lag1_autocorrelation(values: np.ndarray) -> float:
    if values.size < 3:
        return math.nan
    centered = values - values.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        return 0.0
    return float(np.dot(centered[:-1], centered[1:]) / denom)


def batch_means(
    observations: Sequence[float],
    n_batches: int = 20,
    warmup_fraction: float = 0.1,
    confidence: float = 0.95,
) -> BatchMeansResult:
    """Classical non-overlapping batch means.

    Discards a warm-up prefix, splits the remainder into ``n_batches``
    equal batches, and builds a t-based CI over the batch means.  The
    lag-1 autocorrelation of the batch means is reported so callers can
    detect under-batching (|ρ₁| ≫ 0 means batches are too small).

    Parameters
    ----------
    observations:
        Raw output sequence from one long run.
    n_batches:
        Number of batches (≥ 2).
    warmup_fraction:
        Fraction of the sequence discarded as initialisation bias.
    confidence:
        CI level.
    """
    if n_batches < 2:
        raise ValueError(f"need at least 2 batches, got {n_batches}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup_fraction must be in [0,1), got {warmup_fraction}")
    data = np.asarray(observations, dtype=float)
    warmup = int(data.size * warmup_fraction)
    usable = data[warmup:]
    batch_size = usable.size // n_batches
    if batch_size < 1:
        raise ValueError(
            f"{usable.size} post-warmup observations cannot fill "
            f"{n_batches} batches"
        )
    trimmed = usable[: batch_size * n_batches]
    means = trimmed.reshape(n_batches, batch_size).mean(axis=1)
    return BatchMeansResult(
        interval=normal_ci(means, confidence),
        n_batches=n_batches,
        batch_size=batch_size,
        warmup_discarded=warmup,
        lag1_autocorrelation=_lag1_autocorrelation(means),
    )
