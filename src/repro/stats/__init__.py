"""Output analysis for stochastic simulation.

Implements the estimation machinery the paper relies on: independent
replications with confidence intervals and the Möbius-style *relative
half-width* stopping rule ("converging within 95% probability in a 0.1
relative interval", §4.1), plus batch-means for steady-state measures.
"""

from repro.stats.confidence import (
    ConfidenceInterval,
    normal_ci,
    relative_precision_reached,
)
from repro.stats.batch import batch_means, BatchMeansResult
from repro.stats.estimators import (
    ReplicationEstimator,
    SequentialStoppingRule,
    weighted_mean_and_ci,
)

__all__ = [
    "ConfidenceInterval",
    "normal_ci",
    "relative_precision_reached",
    "batch_means",
    "BatchMeansResult",
    "ReplicationEstimator",
    "SequentialStoppingRule",
    "weighted_mean_and_ci",
]
