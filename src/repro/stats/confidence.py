"""Confidence intervals and precision criteria."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["ConfidenceInterval", "normal_ci", "relative_precision_reached"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric two-sided confidence interval."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        """Lower bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound."""
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width relative to the mean (inf when the mean is 0)."""
        if self.mean == 0.0:
            return math.inf
        return abs(self.half_width / self.mean)

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.mean:.6g} ± {self.half_width:.3g} "
            f"({self.confidence:.0%}, n={self.n})"
        )


def normal_ci(
    samples: Sequence[float], confidence: float = 0.95, use_t: bool = True
) -> ConfidenceInterval:
    """CI for the mean of i.i.d. samples.

    Uses the Student-t quantile for small samples (``use_t=True``, default)
    and the normal quantile otherwise.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("need at least one sample")
    mean = float(data.mean())
    if data.size == 1:
        return ConfidenceInterval(mean, math.inf, confidence, 1)
    alpha = 1.0 - confidence
    if use_t:
        quantile = float(scipy_stats.t.ppf(1.0 - alpha / 2.0, df=data.size - 1))
    else:
        quantile = float(scipy_stats.norm.ppf(1.0 - alpha / 2.0))
    half = quantile * float(data.std(ddof=1)) / math.sqrt(data.size)
    return ConfidenceInterval(mean, half, confidence, int(data.size))


def relative_precision_reached(
    interval: ConfidenceInterval, relative_width: float = 0.1
) -> bool:
    """Möbius-style stopping criterion.

    True when the CI half-width is within ``relative_width`` of the mean —
    the paper's "0.1 relative interval" at 95 % confidence.
    A zero mean never satisfies the criterion (nothing has been observed).
    """
    if relative_width <= 0.0:
        raise ValueError(f"relative_width must be > 0, got {relative_width}")
    return interval.relative_half_width <= relative_width
