"""Replication-based estimation with sequential stopping.

The paper estimates each point "as a mean of at least 10000 simulation
batches, converging within 95% probability in a 0.1 relative interval".
:class:`ReplicationEstimator` reproduces exactly that protocol: run
replications in rounds, stop when the relative-precision criterion holds
(or a replication budget is exhausted).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.stats.confidence import (
    ConfidenceInterval,
    normal_ci,
    relative_precision_reached,
)

__all__ = ["ReplicationEstimator", "SequentialStoppingRule", "weighted_mean_and_ci"]


@dataclass
class SequentialStoppingRule:
    """When to stop adding replications.

    Attributes
    ----------
    confidence:
        CI level (paper: 0.95).
    relative_width:
        Target relative half-width (paper: 0.1).
    min_replications:
        Never stop before this many replications.
    max_replications:
        Hard budget; estimation stops here even without convergence.
    """

    confidence: float = 0.95
    relative_width: float = 0.1
    min_replications: int = 1_000
    max_replications: int = 200_000

    def __post_init__(self) -> None:
        if self.min_replications < 2:
            raise ValueError("min_replications must be >= 2")
        if self.max_replications < self.min_replications:
            raise ValueError("max_replications < min_replications")

    def satisfied(self, interval: ConfidenceInterval) -> bool:
        """True when the precision target is met."""
        if interval.n < self.min_replications:
            return False
        return relative_precision_reached(interval, self.relative_width)


@dataclass
class ReplicationEstimator:
    """Sequential mean estimation over replications of a sample function.

    Parameters
    ----------
    sample_fn:
        Called with the replication index; returns one observation (or an
        array of simultaneous observations, e.g. the indicator at several
        time points — the rule is then applied to the *least converged*
        coordinate with a non-zero mean).
    rule:
        The stopping rule.
    round_size:
        Replications added between convergence checks.
    """

    sample_fn: Callable[[int], float | np.ndarray]
    rule: SequentialStoppingRule = field(default_factory=SequentialStoppingRule)
    round_size: int = 1_000

    def estimate(self) -> tuple[np.ndarray, np.ndarray, int, bool]:
        """Run replications until the rule is satisfied.

        Returns
        -------
        (means, half_widths, n_replications, converged)
        """
        samples: list[np.ndarray] = []
        index = 0
        converged = False
        while index < self.rule.max_replications:
            target = min(index + self.round_size, self.rule.max_replications)
            while index < target:
                samples.append(np.atleast_1d(np.asarray(self.sample_fn(index), float)))
                index += 1
            stacked = np.vstack(samples)
            intervals = [
                normal_ci(stacked[:, j], self.rule.confidence)
                for j in range(stacked.shape[1])
            ]
            informative = [iv for iv in intervals if iv.mean > 0]
            if informative and all(self.rule.satisfied(iv) for iv in informative):
                converged = True
                break
        stacked = np.vstack(samples)
        means = stacked.mean(axis=0)
        halves = np.array(
            [
                normal_ci(stacked[:, j], self.rule.confidence).half_width
                for j in range(stacked.shape[1])
            ]
        )
        return means, halves, index, converged


def weighted_mean_and_ci(
    values: Sequence[float],
    weights: Sequence[float],
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """CI for an importance-sampling estimator ``mean(w_i x_i)``.

    The IS estimator is the plain mean of the per-replication products, so
    the normal-approximation CI applies to those products directly.
    """
    products = np.asarray(values, dtype=float) * np.asarray(weights, dtype=float)
    return normal_ci(products, confidence)
