"""Command-line interface.

Examples
--------
``repro-cli list``                      — all reproducible artifacts
``repro-cli figure 14``                 — regenerate Figure 14
``repro-cli table 2``                   — print Table 2 (from the model)
``repro-cli unsafety --n 12 --lam 1e-4 --times 2,6,10 --method analytical``
``repro-cli calibrate``                 — kinematic maneuver durations
``repro-cli all``                       — every table and figure
``repro-cli figure 10 --workers 4``     — sweep on 4 worker processes
``repro-cli orchestrate 12 --target-ci 0.1 --policy greedy``
                                        — adaptive budgeted sweep estimation
``repro-cli cache stats``               — result-cache size and hit rates

The ``unsafety``, ``figure`` and ``all`` commands accept ``--workers N``
(shard the work over N processes via :mod:`repro.runtime`),
``--cache-dir PATH`` (content-addressed result cache; defaults to
``$REPRO_CACHE_DIR`` or ``~/.cache/repro-ahs``) and ``--no-cache``.

Observability (:mod:`repro.obs`): ``repro-cli trace`` exports structured
JSONL trajectory traces; ``repro-cli unsafety`` accepts ``--metrics``
(per-activity breakdown table), ``--trace-out FILE`` (JSONL trace, serial
only) and ``--profile`` (per-phase wall-time spans).  The run ledger
(``repro-events/1``): ``unsafety``/``orchestrate`` accept ``--ledger
FILE`` (append-only JSONL event stream + ``status.json`` sidecar);
``repro-cli watch`` tails a running ledger with live progress/ETA;
``repro-cli metrics`` renders a ledger or estimate artifact as
OpenMetrics exposition text; ``repro-cli replay-chunk`` re-executes a
failed chunk serially from its forensic bundle; ``repro-cli ledger
validate|summary`` checks a ledger against the event schema.

Static analysis (:mod:`repro.analysis`): ``repro-cli lint`` runs the
footprint / determinism / structural / vectorization / lowering /
tensor analyzers over the built-in AHS models and exits nonzero per
``--fail-on`` (rule catalog: ``docs/static_analysis.md``).  The
lint-gated model registry (:mod:`repro.san.registry`): ``repro-cli
models list`` enumerates registered models, ``repro-cli models lint``
runs the admission gate (full analyzer + lowering-IR digest, cached
content-addressed on a clean pass) and ``repro-cli models describe``
prints one entry's stats and kernel-IR digest.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.san.compiled import ENGINES

__all__ = ["main", "build_parser"]


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    """Parallel-runtime options shared by unsafety/figure/all."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run through the parallel runtime with this many processes",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-ahs); only used with --workers",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--context-cache",
        type=int,
        default=None,
        metavar="N",
        help="per-process compiled-context FIFO size (default 16); "
        "evictions emit CacheMiss ledger events in the driver process",
    )


def _resolve_cache_dir(cache_dir):
    """The cache directory a CLI flag / env / default resolves to."""
    import os
    from pathlib import Path

    cache_dir = cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if cache_dir is None:
        cache_dir = Path.home() / ".cache" / "repro-ahs"
    if Path(cache_dir).exists() and not Path(cache_dir).is_dir():
        raise SystemExit(
            f"--cache-dir {cache_dir} exists and is not a directory"
        )
    return Path(cache_dir)


def _build_cache(args):
    """A ResultCache from CLI flags, or None with --no-cache."""
    if getattr(args, "no_cache", False):
        return None
    from repro.runtime import ResultCache

    return ResultCache(_resolve_cache_dir(getattr(args, "cache_dir", None)))


def _build_runner(args):
    """A ParallelRunner from CLI flags, or None for the serial path."""
    workers = getattr(args, "workers", None)
    if workers is None:
        return None
    if workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {workers}")
    from repro.runtime import ParallelRunner

    return ParallelRunner(
        workers=workers,
        cache=_build_cache(args),
        context_cache_size=getattr(args, "context_cache", None),
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description=(
            "Safety modeling and evaluation of Automated Highway Systems "
            "(DSN 2009 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible tables and figures")

    fig = sub.add_parser("figure", help="regenerate one figure (10-15)")
    fig.add_argument("number", help="figure number, e.g. 14")
    fig.add_argument("--fast", action="store_true", help="trimmed sweep")
    fig.add_argument(
        "--plot", action="store_true", help="also draw an ASCII chart"
    )
    fig.add_argument(
        "--json", dest="json_path", default=None, help="save a JSON artifact"
    )
    _add_runtime_flags(fig)

    tab = sub.add_parser("table", help="print one table (1-3)")
    tab.add_argument("number", help="table number, e.g. 2")

    alle = sub.add_parser("all", help="run every table and figure")
    alle.add_argument("--fast", action="store_true", help="trimmed sweeps")
    _add_runtime_flags(alle)

    uns = sub.add_parser("unsafety", help="evaluate S(t) for custom parameters")
    uns.add_argument("--n", type=int, default=10, help="max platoon size")
    uns.add_argument("--lam", type=float, default=1e-5, help="base failure rate (1/hr)")
    uns.add_argument("--join", type=float, default=12.0, help="join rate (1/hr)")
    uns.add_argument("--leave", type=float, default=4.0, help="leave rate (1/hr)")
    uns.add_argument(
        "--strategy", default="DD", choices=["DD", "DC", "CD", "CC"]
    )
    uns.add_argument(
        "--times", default="2,4,6,8,10", help="comma-separated trip hours"
    )
    uns.add_argument(
        "--method",
        default="analytical",
        choices=["analytical", "simulation", "importance", "splitting", "approx"],
    )
    uns.add_argument("--replications", type=int, default=10_000)
    uns.add_argument("--seed", type=int, default=None)
    uns.add_argument(
        "--engine",
        default="compiled",
        choices=list(ENGINES),
        help="jump-chain executor for the simulation methods "
        "(seed-identical results; compiled is several times faster; "
        "batched advances replications in NumPy lockstep)",
    )
    uns.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="lockstep width for --engine batched (throughput knob only; "
        "results are bit-identical at any width)",
    )
    uns.add_argument(
        "--metrics",
        action="store_true",
        help="collect per-activity metrics and print the per-failure-mode /"
        " per-maneuver breakdown table (simulation methods only)",
    )
    uns.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a JSONL trajectory trace (simulation methods; forces "
        "serial execution — traces cannot cross process boundaries)",
    )
    uns.add_argument(
        "--trace-capacity",
        type=int,
        default=10_000,
        help="trace ring-buffer capacity (older events are dropped)",
    )
    uns.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase wall-time spans (compile/simulate/merge/cache)",
    )
    uns.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="FILE",
        help="save the estimate as a machine-readable JSON artifact "
        "(repro-estimates/1 schema, shared with orchestrate and figure)",
    )
    uns.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        help="append a structured run ledger (repro-events/1 JSONL + "
        "status.json sidecar) for the simulation methods; never changes "
        "estimates",
    )
    _add_runtime_flags(uns)

    orch = sub.add_parser(
        "orchestrate",
        help="adaptive budgeted estimation of a figure sweep "
        "(repro.orchestrate)",
    )
    orch.add_argument("figure", help="figure number or id, e.g. 12")
    orch.add_argument("--fast", action="store_true", help="trimmed sweep")
    orch.add_argument(
        "--budget",
        type=int,
        default=None,
        help="global replication pool shared across every sweep point",
    )
    orch.add_argument(
        "--target-ci",
        type=float,
        default=None,
        help="uniform target relative CI half-width (default 0.1, the "
        "paper's criterion, when no other budget is given)",
    )
    orch.add_argument(
        "--wall-seconds",
        type=float,
        default=None,
        help="best-effort wall-clock allowance, checked between rounds",
    )
    orch.add_argument(
        "--policy",
        default="greedy",
        choices=["greedy", "proportional", "cost", "flat"],
        help="round allocation policy (flat is the non-adaptive baseline)",
    )
    orch.add_argument(
        "--seed", type=int, default=None, help="experiment seed"
    )
    orch.add_argument(
        "--rounds", type=int, default=64, help="maximum allocation rounds"
    )
    orch.add_argument(
        "--engine",
        default="compiled",
        choices=list(ENGINES),
        help="jump-chain executor for the simulation-backed estimators",
    )
    orch.add_argument(
        "--sweep-batch",
        action="store_true",
        help="dispatch each round's chunks to the pool in point-contiguous "
        "groups (fewer, larger pool tasks; byte-identical estimates)",
    )
    orch.add_argument(
        "--tensorize",
        action="store_true",
        help="stack every stepped-engine point of a round into one "
        "cross-point SoA tensor per pool task (requires --engine stepped; "
        "byte-identical estimates, one vectorised step loop per round)",
    )
    orch.add_argument(
        "--cost-model",
        default="events",
        choices=["events", "wall"],
        help="allocator cost proxy: 'events' (pooled simulator events per "
        "replication; deterministic schedule) or 'wall' (measured busy "
        "worker-seconds per replication; schedule may vary run to run, "
        "estimates per chunk stay bit-identical)",
    )
    orch.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="FILE",
        help="save the full report (points, rounds, ledger, telemetry) "
        "as a repro-estimates/1 JSON artifact",
    )
    orch.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        help="append a structured run ledger (repro-events/1 JSONL + "
        "status.json sidecar): round allocations, chunk completions, "
        "budget stops; never changes estimates or artifacts",
    )
    _add_runtime_flags(orch)

    cache_cmd = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache_cmd.add_argument(
        "action",
        choices=["stats", "clear"],
        help="stats: entry count, bytes and last run's hit/miss counters; "
        "clear: remove every entry",
    )
    cache_cmd.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-ahs)",
    )

    watch = sub.add_parser(
        "watch",
        help="tail a run ledger and render live point/round/ETA progress",
    )
    watch.add_argument("ledger", help="ledger JSONL file (may not exist yet)")
    watch.add_argument(
        "--once",
        action="store_true",
        help="render the current state once and exit instead of following",
    )
    watch.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between file polls while following",
    )
    watch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="stop following after this many seconds without a new event "
        "(default: wait until the run finishes)",
    )
    watch.add_argument(
        "--json",
        action="store_true",
        help="emit the status.json digest per refresh instead of one-liners",
    )

    met = sub.add_parser(
        "metrics",
        help="render run accounting as OpenMetrics/Prometheus exposition "
        "text",
    )
    met.add_argument(
        "source",
        help="a run-ledger JSONL file or a repro-estimates/1 JSON artifact",
    )
    met.add_argument(
        "--format",
        dest="fmt",
        default="openmetrics",
        choices=["openmetrics", "json"],
        help="openmetrics: Prometheus text exposition (default); "
        "json: the folded status/telemetry digest",
    )

    replay = sub.add_parser(
        "replay-chunk",
        help="re-execute a failed chunk serially from its ledger forensic "
        "bundle",
    )
    replay.add_argument("ledger", help="ledger JSONL file")
    replay.add_argument(
        "chunk_id",
        help="failed chunk id, e.g. chunk-3 or figure12/s=DD/chunk-0 "
        "(see `repro-cli ledger summary`)",
    )

    ledger_cmd = sub.add_parser(
        "ledger", help="validate or summarise a run-ledger file"
    )
    ledger_cmd.add_argument(
        "action",
        choices=["validate", "summary"],
        help="validate: check every line against the repro-events/1 "
        "schema (exit 1 on violations); summary: print the folded "
        "status digest",
    )
    ledger_cmd.add_argument("ledger", help="ledger JSONL file")

    trc = sub.add_parser(
        "trace",
        help="export a structured JSONL trajectory trace of simulated runs",
    )
    trc.add_argument("--n", type=int, default=10, help="max platoon size")
    trc.add_argument(
        "--lam", type=float, default=1e-5, help="base failure rate (1/hr)"
    )
    trc.add_argument(
        "--strategy", default="DD", choices=["DD", "DC", "CD", "CC"]
    )
    trc.add_argument(
        "--horizon", type=float, default=6.0, help="trip duration (hours)"
    )
    trc.add_argument(
        "--method",
        default="simulation",
        choices=["simulation", "importance", "splitting"],
        help="which simulation method to trace",
    )
    trc.add_argument("--replications", type=int, default=100)
    trc.add_argument("--seed", type=int, default=None)
    trc.add_argument(
        "--engine", default="compiled", choices=list(ENGINES)
    )
    trc.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="lockstep width for --engine batched",
    )
    trc.add_argument(
        "--boost",
        type=float,
        default=30.0,
        help="failure-rate multiplier for method=importance",
    )
    trc.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="JSONL output path (default: stdout)",
    )
    trc.add_argument(
        "--capacity",
        type=int,
        default=10_000,
        help="ring-buffer capacity (older events are dropped)",
    )
    trc.add_argument(
        "--no-deltas",
        action="store_true",
        help="omit per-firing marking deltas (smaller, cheaper traces)",
    )

    cal = sub.add_parser(
        "calibrate", help="measure kinematic maneuver durations (repro.agents)"
    )
    cal.add_argument(
        "--sizes", default="4,8,12", help="comma-separated platoon sizes"
    )
    cal.add_argument("--repetitions", type=int, default=4)
    cal.add_argument("--seed", type=int, default=2009)

    sens = sub.add_parser(
        "sensitivity", help="tornado (elasticity) analysis of S(t)"
    )
    sens.add_argument("--time", type=float, default=6.0, help="trip hours")
    sens.add_argument("--delta", type=float, default=0.25)
    sens.add_argument("--n", type=int, default=10)
    sens.add_argument("--lam", type=float, default=1e-5)

    mttu = sub.add_parser(
        "mttu", help="mean time to unsafety + hazard rate"
    )
    mttu.add_argument("--n", type=int, default=10)
    mttu.add_argument("--lam", type=float, default=1e-5)
    mttu.add_argument(
        "--strategy", default="DD", choices=["DD", "DC", "CD", "CC"]
    )

    multi = sub.add_parser(
        "platoons", help="extension: unsafety vs number of platoons"
    )
    multi.add_argument(
        "--counts", default="2,3,4,6", help="comma-separated platoon counts"
    )
    multi.add_argument("--time", type=float, default=6.0)
    multi.add_argument("--n", type=int, default=10)
    multi.add_argument("--lam", type=float, default=1e-5)

    verify = sub.add_parser(
        "verify", help="recompute every figure and check the paper's claims"
    )
    verify.add_argument(
        "--figure", default=None, help="restrict to one figure, e.g. 14"
    )

    lint = sub.add_parser(
        "lint",
        help="static analysis of the SAN models (repro.analysis)",
    )
    lint.add_argument(
        "--strategy",
        default="all",
        choices=["all", "DD", "DC", "CD", "CC"],
        help="which built-in AHS model(s) to analyze",
    )
    lint.add_argument("--n", type=int, default=2, help="max platoon size")
    lint.add_argument(
        "--families",
        default=None,
        help="comma-separated analyzer families "
        "(footprint,determinism,structural,vectorization,lowering,tensor; "
        "default: all)",
    )
    lint.add_argument(
        "--max-states",
        type=int,
        default=256,
        help="bounded-reachability cap feeding dry-run probes and "
        "incidence sampling",
    )
    lint.add_argument(
        "--max-rows",
        type=int,
        default=None,
        help="truncate the text report to this many diagnostics",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the JSON report instead"
    )
    lint.add_argument(
        "--fail-on",
        default="error",
        choices=["error", "warning", "info", "never"],
        help="exit nonzero when a diagnostic at or above this severity "
        "is reported (default: error)",
    )

    models = sub.add_parser(
        "models",
        help="lint-gated model registry (repro.san.registry)",
    )
    models.add_argument(
        "action",
        choices=["list", "lint", "describe"],
        help="list: registered models; lint: run the admission gate "
        "(full analyzer + lowering-IR digest, cached when clean); "
        "describe: one model's registry entry, stats and IR digest",
    )
    models.add_argument(
        "--name",
        default=None,
        help="restrict to one registered model (required for describe)",
    )
    models.add_argument(
        "--max-states",
        type=int,
        default=256,
        help="bounded-reachability cap for the admission analyzers",
    )
    models.add_argument(
        "--fail-on",
        default="error",
        choices=["error", "warning", "info", "never"],
        help="exit nonzero when an admission report carries a "
        "diagnostic at or above this severity (default: error)",
    )
    models.add_argument(
        "--json", action="store_true", help="emit JSON records instead"
    )
    models.add_argument(
        "--cache-dir",
        default=None,
        help="admission cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-ahs)",
    )
    models.add_argument(
        "--no-cache",
        action="store_true",
        help="re-run admission without reading or writing the cache",
    )

    design = sub.add_parser(
        "design", help="answer the paper's design questions for a budget"
    )
    design.add_argument(
        "--budget", type=float, default=1e-6, help="unsafety budget"
    )
    design.add_argument("--time", type=float, default=6.0, help="trip hours")
    design.add_argument("--lam", type=float, default=1e-5)

    return parser


def _cmd_list() -> int:
    from repro.experiments import list_experiments

    for experiment in list_experiments():
        print(f"{experiment.experiment_id:10s}  {experiment.description}")
        print(f"{'':10s}  parameters: {experiment.parameters}")
    return 0


def _cmd_experiment(
    kind: str,
    number: str,
    fast: bool,
    plot: bool = False,
    json_path: Optional[str] = None,
    runner=None,
) -> int:
    from repro.experiments import run_experiment

    outcome = run_experiment(f"{kind}{number}", fast=fast, runner=runner)
    print(outcome.rendered)
    if plot:
        from repro.experiments.figures import FigureResult
        from repro.experiments.report import format_ascii_chart

        if isinstance(outcome.result, FigureResult):
            print()
            print(format_ascii_chart(outcome.result))
    if json_path:
        from repro.experiments.runner import save_outcome

        saved = save_outcome(outcome, json_path)
        print(f"[saved {saved}]")
    print(f"[{outcome.experiment_id} in {outcome.elapsed_seconds:.2f}s]")
    return 0


def _cmd_all(fast: bool, runner=None) -> int:
    from repro.experiments import list_experiments, run_experiment

    for experiment in list_experiments():
        outcome = run_experiment(experiment.experiment_id, fast=fast, runner=runner)
        print(outcome.rendered)
        print(f"[{outcome.experiment_id} in {outcome.elapsed_seconds:.2f}s]")
        print()
    return 0


_SIMULATION_METHODS = ("simulation", "importance", "splitting")


def _build_observation(args):
    """An :class:`repro.obs.Observation` from CLI flags, or None."""
    wants_trace = getattr(args, "trace_out", None) is not None
    wants_metrics = getattr(args, "metrics", False)
    wants_profile = getattr(args, "profile", False)
    if not (wants_trace or wants_metrics or wants_profile):
        return None
    from repro.obs import (
        MetricsRecorder,
        Observation,
        PhaseProfiler,
        TraceRecorder,
    )

    return Observation(
        trace=TraceRecorder(capacity=args.trace_capacity)
        if wants_trace
        else None,
        metrics=MetricsRecorder() if wants_metrics else None,
        profiler=PhaseProfiler() if wants_profile else None,
    )


def _open_ledger_bus(args, token):
    """An EventBus writing a RunLedger from ``--ledger``, or None."""
    path = getattr(args, "ledger", None)
    if path is None:
        return None
    from pathlib import Path

    from repro.obs import EventBus, RunLedger, deterministic_run_id

    ledger = RunLedger(Path(path))
    return EventBus(deterministic_run_id(token), sinks=[ledger])


def _close_ledger_bus(bus, path) -> None:
    if bus is not None:
        bus.close()
        print(f"[ledger: {bus.events_emitted} events -> {path}]")


def _cmd_unsafety(args) -> int:
    import warnings

    from repro.core import AHSParameters, Strategy, unsafety

    params = AHSParameters(
        max_platoon_size=args.n,
        base_failure_rate=args.lam,
        join_rate=args.join,
        leave_rate=args.leave,
        strategy=Strategy(args.strategy),
    )
    times = [float(t) for t in args.times.split(",")]
    runner = _build_runner(args)
    if runner is not None and args.method != "simulation":
        print(
            f"[note: --workers applies to method=simulation; "
            f"{args.method} runs serially]"
        )
        runner = None
    observer = _build_observation(args)
    if observer is not None and args.method not in _SIMULATION_METHODS:
        print(
            f"[note: --metrics/--trace-out/--profile apply to the "
            f"simulation methods; {args.method} runs uninstrumented]"
        )
        observer = None
    if observer is not None and observer.trace is not None and runner is not None:
        if runner.workers > 1:
            warnings.warn(
                f"--trace-out forces serial execution: --workers "
                f"{runner.workers} is ignored because traces cannot cross "
                f"process boundaries",
                UserWarning,
                stacklevel=2,
            )
        print(
            "[note: --trace-out forces serial execution — traces cannot "
            "cross process boundaries]"
        )
        runner = None
    if runner is not None and observer is not None:
        # the driver-side spans (simulate/merge/cache) live in the runner
        runner.profiler = observer.profiler
    bus = None
    if args.method in _SIMULATION_METHODS:
        bus = _open_ledger_bus(
            args,
            {
                "kind": "unsafety",
                "params": params.summary(),
                "times": times,
                "method": args.method,
                "n_replications": args.replications,
                "seed": args.seed,
                "engine": args.engine,
            },
        )
    elif getattr(args, "ledger", None) is not None:
        print(
            f"[note: --ledger applies to the simulation methods; "
            f"{args.method} runs without one]"
        )
    try:
        estimate = unsafety(
            params,
            times,
            method=args.method,
            n_replications=args.replications,
            seed=args.seed,
            boost=getattr(args, "boost", 30.0),
            runner=runner,
            engine=args.engine,
            observer=observer,
            batch_size=args.batch_size,
            events=bus,
        )
    finally:
        _close_ledger_bus(bus, getattr(args, "ledger", None))
    if runner is not None:
        snapshot = runner.pop_telemetry()
        if snapshot is not None:
            print(snapshot.format())
    print(f"method={estimate.method}  params={params.summary()}")
    for t, value, half in zip(
        estimate.times, estimate.values, estimate.half_widths
    ):
        suffix = f"  (+/- {half:.2e})" if half > 0 else ""
        print(f"  S({t:g}h) = {value:.6e}{suffix}")
    if estimate.truncation_error:
        print(f"  truncation error bound: {estimate.truncation_error:.2e}")
    if observer is not None:
        _report_observation(observer, getattr(args, "trace_out", None))
    if args.json_path:
        import json as _json
        from pathlib import Path

        from repro.orchestrate import estimate_record

        stochastic = any(h > 0 for h in estimate.half_widths)
        record = {
            "schema": "repro-estimates/1",
            "params": params.summary(),
            "points": [
                estimate_record(
                    point_id=f"unsafety/n={args.n}/lam={args.lam:g}/"
                    f"{args.strategy}",
                    estimator=estimate.method,
                    times=estimate.times,
                    values=estimate.values,
                    half_widths=estimate.half_widths if stochastic else None,
                    confidence=0.95 if stochastic else None,
                    n_replications=estimate.n_samples,
                    converged=not estimate.method.endswith("-unconverged"),
                    source="unsafety",
                )
            ],
        }
        if estimate.truncation_error:
            record["truncation_error"] = estimate.truncation_error
        path = Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(record, indent=2))
        print(f"[saved {path}]")
    return 0


def _report_observation(observer, trace_out) -> None:
    """Print/export whatever the Observation collected."""
    if observer.metrics is not None:
        from repro.obs import format_metrics_table

        print(format_metrics_table(observer.metrics.summary()))
    if observer.profiler is not None:
        print(observer.profiler.format())
    if observer.trace is not None and trace_out is not None:
        written = observer.trace.write_jsonl(trace_out)
        dropped = observer.trace.dropped
        note = f" ({dropped} older events dropped)" if dropped else ""
        print(f"[trace: {written} events -> {trace_out}{note}]")


def _cmd_trace(args) -> int:
    import sys as _sys

    from repro.core import AHSParameters, Strategy, unsafety
    from repro.obs import Observation, TraceRecorder

    params = AHSParameters(
        max_platoon_size=args.n,
        base_failure_rate=args.lam,
        strategy=Strategy(args.strategy),
    )
    recorder = TraceRecorder(
        capacity=args.capacity, deltas=not args.no_deltas
    )
    observer = Observation(trace=recorder)
    unsafety(
        params,
        [args.horizon],
        method=args.method,
        n_replications=args.replications,
        seed=args.seed,
        boost=args.boost,
        engine=args.engine,
        observer=observer,
        batch_size=args.batch_size,
    )
    if args.out is None:
        recorder.write_jsonl(_sys.stdout)
        return 0
    written = recorder.write_jsonl(args.out)
    dropped = recorder.dropped
    note = f" ({dropped} older events dropped)" if dropped else ""
    print(f"[trace: {written} events -> {args.out}{note}]")
    return 0


def _cmd_orchestrate(args) -> int:
    from repro.experiments.figures import run_adaptive, sweep_definition
    from repro.experiments.report import format_experiment
    from repro.orchestrate import DEFAULT_SEED, Budget
    from repro.runtime import ParallelRunner

    figure_id = (
        args.figure
        if args.figure.startswith("figure")
        else f"figure{args.figure}"
    )
    try:
        sweep_definition(figure_id, args.fast)
    except KeyError as exc:
        raise SystemExit(exc.args[0])
    target = args.target_ci
    if args.budget is None and target is None and args.wall_seconds is None:
        target = 0.1  # the paper's sequential-stopping criterion
    budget = Budget(
        replications=args.budget,
        target_relative_ci=target,
        wall_seconds=args.wall_seconds,
        max_rounds=args.rounds,
    )
    workers = args.workers if args.workers is not None else 1
    if workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {workers}")
    cache = _build_cache(args)
    seed = args.seed if args.seed is not None else DEFAULT_SEED
    bus = _open_ledger_bus(
        args,
        {
            "kind": "orchestrate",
            "figure": figure_id,
            "fast": args.fast,
            "budget": budget.to_dict(),
            "policy": args.policy,
            "seed": seed,
            "engine": args.engine,
            "tensorize": args.tensorize,
            "cost_model": args.cost_model,
        },
    )
    if args.tensorize and args.engine != "stepped":
        print(
            f"[note: --tensorize requires --engine stepped; engine "
            f"{args.engine!r} cannot lower the cross-point tensor loop — "
            f"running per-point]"
        )
    # chunk_cache makes interrupted runs resumable: re-running the same
    # orchestration replays finished chunks from the cache bit-identically
    try:
        with ParallelRunner(
            workers=workers,
            cache=cache,
            chunk_cache=cache is not None,
            context_cache_size=args.context_cache,
        ) as runner:
            figure, report = run_adaptive(
                figure_id,
                budget,
                runner,
                fast=args.fast,
                policy=args.policy,
                seed=seed,
                engine=args.engine,
                sweep_batch=args.sweep_batch,
                tensorize=args.tensorize,
                cost_model=args.cost_model,
                events=bus,
            )
    finally:
        _close_ledger_bus(bus, args.ledger)
    print(report.format())
    print()
    print(format_experiment(figure_id, figure))
    if args.json_path:
        import json as _json
        from pathlib import Path

        record = report.to_dict()
        record["figure"] = {
            "figure_id": figure.figure_id,
            "x_label": figure.x_label,
            "x_values": [float(x) for x in figure.x_values],
            "series": {
                label: [float(v) for v in values]
                for label, values in figure.series.items()
            },
        }
        path = Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(record, indent=2))
        print(f"[saved {path}]")
    return 0


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{int(n)} B"  # pragma: no cover - unreachable


def _cmd_cache(args) -> int:
    from repro.runtime import ResultCache

    cache = ResultCache(_resolve_cache_dir(args.cache_dir))
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache root : {stats['root']}")
    print(f"entries    : {stats['entries']}")
    print(f"total size : {_format_bytes(stats['total_bytes'])}")
    session = stats["last_session"]
    if session is None:
        print("last run   : no session recorded")
    else:
        hits = session.get("hits", 0)
        misses = session.get("misses", 0)
        lookups = hits + misses
        rate = hits / lookups if lookups else 0.0
        print(
            f"last run   : {hits}/{lookups} hits ({rate:.0%}), "
            f"{session.get('puts', 0)} writes"
        )
    return 0


def _cmd_watch(args) -> int:
    import json as _json
    from pathlib import Path

    from repro.obs import LedgerStatus
    from repro.obs.ledger import follow_events, read_events

    path = Path(args.ledger)
    status = LedgerStatus()

    def render() -> None:
        if args.json:
            print(_json.dumps(status.to_dict(), sort_keys=True))
        else:
            print(status.format())

    if args.once:
        if not path.exists():
            raise SystemExit(f"ledger {path} does not exist")
        for envelope in read_events(path):
            status.update(envelope)
        render()
        return 0

    last_line = None
    for envelope in follow_events(
        path, poll_seconds=args.poll, timeout_seconds=args.timeout
    ):
        status.update(envelope)
        line = (
            _json.dumps(status.to_dict(), sort_keys=True)
            if args.json
            else status.format()
        )
        # re-render only on change so a quiet ledger doesn't spam
        if line != last_line:
            print(line, flush=True)
            last_line = line
    return 0


def _load_metrics_source(path):
    """(kind, payload) of a metrics source: ledger events or artifact."""
    import json as _json
    from pathlib import Path

    source = Path(path)
    if not source.exists():
        raise SystemExit(f"{source} does not exist")
    with open(source, "r", encoding="utf-8") as fh:
        head = ""
        for line in fh:
            if line.strip():
                head = line.strip()
                break
    try:
        first = _json.loads(head) if head else None
    except _json.JSONDecodeError:
        first = None
    if isinstance(first, dict) and first.get("schema") == "repro-events/1":
        from repro.obs.ledger import read_events

        return "ledger", read_events(source)
    try:
        payload = _json.loads(source.read_text(encoding="utf-8"))
    except _json.JSONDecodeError as exc:
        raise SystemExit(
            f"{source} is neither a repro-events/1 ledger nor a JSON "
            f"artifact: {exc}"
        )
    if not isinstance(payload, dict):
        raise SystemExit(f"{source} does not hold a JSON object artifact")
    return "artifact", payload


def _cmd_metrics(args) -> int:
    import json as _json

    from repro.obs import LedgerStatus, render_openmetrics

    kind, payload = _load_metrics_source(args.source)
    if args.fmt == "openmetrics":
        sys.stdout.write(render_openmetrics(payload))
        return 0
    if kind == "ledger":
        status = LedgerStatus()
        for envelope in payload:
            status.update(envelope)
        print(_json.dumps(status.to_dict(), sort_keys=True, indent=2))
    else:
        telemetry = payload.get("telemetry", payload)
        print(_json.dumps(telemetry, sort_keys=True, indent=2))
    return 0


def _cmd_replay_chunk(args) -> int:
    from pathlib import Path

    from repro.obs.ledger import bundle_of, read_events, replay_chunk

    path = Path(args.ledger)
    if not path.exists():
        raise SystemExit(f"ledger {path} does not exist")
    events = read_events(path)
    try:
        bundle = bundle_of(events, args.chunk_id)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    task = bundle.get("task", {})
    print(
        f"replaying {args.chunk_id}: task={task.get('type', '?')} "
        f"start={bundle.get('start')} count={bundle.get('count')} "
        f"entropy={bundle.get('seed_entropy')}"
    )
    try:
        summary = replay_chunk(bundle)
    except Exception as exc:
        import traceback as _tb

        print(f"[reproduced] {type(exc).__name__}: {exc}")
        _tb.print_exc()
        return 1
    print(
        f"[not reproduced — chunk completed] n={summary.n} "
        f"mean={summary.mean} draws={summary.draws} "
        f"elapsed={summary.elapsed_seconds:.3f}s"
    )
    return 0


def _cmd_ledger(args) -> int:
    import json as _json
    from pathlib import Path

    from repro.obs import LedgerStatus, validate_events
    from repro.obs.ledger import read_events

    path = Path(args.ledger)
    if not path.exists():
        raise SystemExit(f"ledger {path} does not exist")
    events = read_events(path)
    if args.action == "validate":
        errors = validate_events(events)
        for error in errors:
            print(f"INVALID  {error}")
        runs = len({e.get("run_id") for e in events})
        if errors:
            print(f"{len(errors)} schema violations in {len(events)} events")
            return 1
        print(f"ok: {len(events)} events, {runs} run(s), repro-events/1")
        return 0
    status = LedgerStatus()
    for envelope in events:
        status.update(envelope)
    print(_json.dumps(status.to_dict(), sort_keys=True, indent=2))
    return 0


def _cmd_calibrate(args) -> int:
    from repro.agents import calibrate_maneuver_durations
    from repro.core.maneuvers import Maneuver
    from repro.experiments.report import format_table

    sizes = tuple(int(s) for s in args.sizes.split(","))
    report = calibrate_maneuver_durations(
        platoon_sizes=sizes, repetitions=args.repetitions, seed=args.seed
    )
    print(format_table(report.summary_rows(), title="kinematic maneuver durations"))
    print()
    for maneuver in Maneuver:
        try:
            kappa = report.fitted_duration_scaling(maneuver)
            print(f"duration_scaling fit for {maneuver.value}: {kappa:.3f}")
        except ValueError:
            pass
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.core import AHSParameters
    from repro.experiments.report import format_table
    from repro.experiments.sensitivity import tornado

    params = AHSParameters(max_platoon_size=args.n, base_failure_rate=args.lam)
    rows = tornado(params, time=args.time, delta=args.delta)
    print(
        format_table(
            [
                {
                    "parameter": row.parameter,
                    "elasticity": row.elasticity,
                    "S_minus": row.s_low,
                    "S_plus": row.s_high,
                    "meaning": row.meaning,
                }
                for row in rows
            ],
            title=f"tornado: d log S({args.time:g}h) / d log theta",
        )
    )
    return 0


def _cmd_mttu(args) -> int:
    from repro.core import (
        AHSParameters,
        Strategy,
        mean_time_to_unsafety,
        unsafety_hazard,
    )

    params = AHSParameters(
        max_platoon_size=args.n,
        base_failure_rate=args.lam,
        strategy=Strategy(args.strategy),
    )
    mttu = mean_time_to_unsafety(params)
    hazard = unsafety_hazard(params, 6.0)
    print(f"params: {params.summary()}")
    print(f"mean time to unsafety : {mttu:.4e} hours ({mttu / 8760:.1f} years)")
    print(f"hazard rate at t=6h   : {hazard:.4e} /hr")
    return 0


def _cmd_platoons(args) -> int:
    from repro.core import AHSParameters, MultiPlatoonEngine

    params = AHSParameters(max_platoon_size=args.n, base_failure_rate=args.lam)
    counts = [int(c) for c in args.counts.split(",")]
    print(
        f"unsafety vs number of platoons (paper §5 extension), "
        f"t={args.time:g}h, n={args.n}, lambda={args.lam:g}"
    )
    for count in counts:
        engine = MultiPlatoonEngine(params, count)
        result = engine.unsafety([args.time])
        print(
            f"  m={count:2d}: S={result.unsafety[0]:.4e}  "
            f"(occ/platoon={engine.occupancy_per_platoon:.2f}, "
            f"states={result.n_states})"
        )
    return 0


def _cmd_verify(args) -> int:
    from repro.experiments.claims import verify_all, verify_figure

    if args.figure:
        key = args.figure if args.figure.startswith("figure") else f"figure{args.figure}"
        verdicts = verify_figure(key)
    else:
        verdicts = verify_all()
    failures = 0
    current = None
    for verdict in verdicts:
        if verdict.experiment_id != current:
            current = verdict.experiment_id
            print(f"{current}:")
        mark = "PASS" if verdict.holds else "FAIL"
        print(f"  [{mark}] {verdict.claim}")
        print(f"         {verdict.evidence}")
        failures += 0 if verdict.holds else 1
    total = len(verdicts)
    print(f"\n{total - failures}/{total} paper claims reproduced")
    return 0 if failures == 0 else 1


def _cmd_lint(args) -> int:
    import json as _json

    from repro.analysis import FAMILIES, Severity, analyze_model
    from repro.core import AHSParameters, Strategy, build_composed_model

    strategies = (
        [s for s in Strategy]
        if args.strategy == "all"
        else [Strategy(args.strategy)]
    )
    families = (
        None
        if args.families is None
        else [f.strip() for f in args.families.split(",") if f.strip()]
    )
    if families is not None:
        unknown = sorted(set(families) - set(FAMILIES))
        if unknown:
            print(
                f"error: unknown analyzer families {unknown}; "
                f"choose from {list(FAMILIES)}",
                file=sys.stderr,
            )
            return 2
    threshold = (
        None if args.fail_on == "never" else Severity.parse(args.fail_on)
    )
    reports = []
    failed = False
    for strategy in strategies:
        params = AHSParameters(max_platoon_size=args.n, strategy=strategy)
        model = build_composed_model(params).model
        model.name = f"AHS[{strategy.value}, n={args.n}]"
        report = analyze_model(
            model, families=families, max_states=args.max_states
        )
        reports.append(report)
        if threshold is not None and report.at_least(threshold):
            failed = True
    if args.json:
        payload = [report.to_dict() for report in reports]
        print(_json.dumps(payload if len(payload) > 1 else payload[0], indent=2))
    else:
        for index, report in enumerate(reports):
            if index:
                print()
            print(report.format_text(max_rows=args.max_rows))
    return 1 if failed else 0


def _cmd_models(args) -> int:
    import json as _json

    from repro.analysis import Severity
    from repro.san.registry import admit, get_model, list_models

    if args.action == "list":
        specs = list_models()
        if args.json:
            payload = [
                {
                    "name": spec.name,
                    "description": spec.description,
                    "tags": list(spec.tags),
                }
                for spec in specs
            ]
            print(_json.dumps(payload, indent=2))
            return 0
        width = max((len(spec.name) for spec in specs), default=4)
        for spec in specs:
            tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
            print(f"{spec.name:<{width}}  {spec.description}{tags}")
        return 0

    if args.action == "describe":
        if args.name is None:
            print("error: models describe requires --name", file=sys.stderr)
            return 2
        try:
            spec = get_model(args.name)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = admit(
            spec, _build_cache(args), max_states=args.max_states
        )
        if args.json:
            print(_json.dumps(result.report, indent=2))
            return 0
        from repro.san.describe import describe_lowering
        from repro.san.stepped import SteppedJumpEngine

        model = spec.build()
        print(f"model       : {spec.name}")
        print(f"description : {spec.description or '(none)'}")
        print(f"tags        : {', '.join(spec.tags) or '(none)'}")
        print(f"admitted    : {'yes' if result.admitted else 'NO'}"
              f" ({result.errors} errors, {result.warnings} warnings)")
        print(f"admission   : {'cache hit' if result.cached else 'computed'}"
              f" (key {result.key[:16]}…)")
        print(f"ir digest   : {result.ir_digest}")
        print()
        if model.timed_activities:
            print(describe_lowering(SteppedJumpEngine(model, diagnose=True)))
        else:
            print("(no timed activities — nothing to lower)")
        return 0

    # action == "lint": run the admission gate
    try:
        specs = [get_model(args.name)] if args.name else list_models()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = _build_cache(args)
    threshold = (
        None if args.fail_on == "never" else Severity.parse(args.fail_on)
    )
    results = []
    failed = False
    for spec in specs:
        result = admit(spec, cache, max_states=args.max_states)
        results.append(result)
        summary = result.report.get("summary", {})
        counts = {
            Severity.ERROR: summary.get("errors", 0),
            Severity.WARNING: summary.get("warnings", 0),
            Severity.INFO: summary.get("infos", 0),
        }
        if threshold is not None and any(
            count for sev, count in counts.items() if sev >= threshold
        ):
            failed = True
    if args.json:
        payload = [
            {
                "name": result.name,
                "admitted": result.admitted,
                "cached": result.cached,
                "key": result.key,
                "ir_digest": result.ir_digest,
                "report": result.report,
            }
            for result in results
        ]
        print(_json.dumps(payload if len(payload) > 1 else payload[0],
                          indent=2))
    else:
        width = max((len(result.name) for result in results), default=4)
        for result in results:
            verdict = "admitted" if result.admitted else "REJECTED"
            source = "cache" if result.cached else "fresh"
            print(
                f"{result.name:<{width}}  {verdict:<8}  "
                f"{result.errors} errors, {result.warnings} warnings  "
                f"({source}, ir {result.ir_digest[:12]}…)"
            )
    return 1 if failed else 0


def _cmd_design(args) -> int:
    from repro.core import AHSParameters
    from repro.core.design import (
        best_strategy,
        max_platoon_size_for,
        max_trip_duration,
    )

    params = AHSParameters(base_failure_rate=args.lam)
    print(
        f"design answers for budget S <= {args.budget:g} at "
        f"t = {args.time:g}h (lambda = {args.lam:g}/hr)"
    )
    n = max_platoon_size_for(params, args.budget, args.time)
    print(f"1) optimal (largest admissible) platoon size: "
          f"{n if n is not None else 'none — budget unreachable'}")
    duration = max_trip_duration(params, args.budget)
    if duration is None:
        print("2) maximum trip duration: none — budget unreachable")
    else:
        print(f"2) maximum trip duration: {duration:.2f} h")
    winner, values = best_strategy(params, args.time)
    ranking = ", ".join(
        f"{s.value}={v:.2e}" for s, v in sorted(values.items(), key=lambda kv: kv[1])
    )
    print(f"3) most suitable coordination strategy: {winner.value} ({ranking})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        import os

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _dispatch(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "figure":
        return _cmd_experiment(
            "figure",
            args.number,
            args.fast,
            args.plot,
            args.json_path,
            runner=_build_runner(args),
        )
    if args.command == "table":
        return _cmd_experiment("table", args.number, False)
    if args.command == "all":
        return _cmd_all(args.fast, runner=_build_runner(args))
    if args.command == "unsafety":
        return _cmd_unsafety(args)
    if args.command == "orchestrate":
        return _cmd_orchestrate(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "sensitivity":
        return _cmd_sensitivity(args)
    if args.command == "mttu":
        return _cmd_mttu(args)
    if args.command == "platoons":
        return _cmd_platoons(args)
    if args.command == "design":
        return _cmd_design(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "models":
        return _cmd_models(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "replay-chunk":
        return _cmd_replay_chunk(args)
    if args.command == "ledger":
        return _cmd_ledger(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
