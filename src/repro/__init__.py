"""repro — Safety Modeling and Evaluation of Automated Highway Systems.

A full, open reproduction of Hamouda, Kaâniche & Kanoun (DSN 2009):
compositional Stochastic-Activity-Network safety models of vehicle
platooning, together with every substrate the paper relies on — a SAN
formalism with Join/Rep composition and Möbius-style execution semantics, a
discrete-event kernel, CTMC transient solvers, rare-event simulation, and a
microscopic platoon-traffic simulator standing in for the PATH testbed.

Quickstart
----------
>>> from repro.core import AHSParameters, unsafety
>>> params = AHSParameters(max_platoon_size=10, base_failure_rate=1e-5)
>>> curve = unsafety(params, times=[2.0, 6.0, 10.0])   # doctest: +SKIP
"""

from repro._version import __version__

__all__ = ["__version__"]
