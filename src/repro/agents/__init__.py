"""Microscopic platoon-traffic substrate.

The paper's maneuver-duration band (2–4 minutes, §4.1) and platoon
geometry (1–3 m intra-platoon spacing, 30–60 m between platoons, §2) come
from the PATH experimental program.  This subpackage replaces that closed
testbed with a kinematic simulator built on the :mod:`repro.des` kernel:

* :mod:`~repro.agents.kinematics` — vehicle state and motion integration;
* :mod:`~repro.agents.controllers` — longitudinal control laws (leader
  cruise, constant-spacing following, braking profiles);
* :mod:`~repro.agents.comms` — V2V messaging with latency and loss;
* :mod:`~repro.agents.platoon` — platoon membership and geometry;
* :mod:`~repro.agents.maneuver_exec` — kinematic execution of the six
  recovery maneuvers (durations measured, feeding the SAN's μ rates);
* :mod:`~repro.agents.highway` — two-lane scenario assembly and the
  calibration entry point used by the examples and the ablation bench.
"""

from repro.agents.kinematics import VehicleState, integrate
from repro.agents.controllers import (
    LeaderCruiseController,
    ConstantSpacingController,
    BrakeToStopController,
    GAP_INTRA_PLATOON,
    GAP_INTER_PLATOON,
)
from repro.agents.comms import Message, MessageBus
from repro.agents.platoon import KinematicPlatoon
from repro.agents.vehicle_agent import VehicleAgent
from repro.agents.maneuver_exec import ManeuverExecutor, ManeuverOutcome
from repro.agents.atomic import AtomicManeuvers, FormationOutcome
from repro.agents.failure_scenario import FailureInjectionScenario, InjectionReport
from repro.agents.workload import DemandProfile, ScenarioReport, TrafficScenario
from repro.agents.highway import Highway, CalibrationReport, calibrate_maneuver_durations

__all__ = [
    "VehicleState",
    "integrate",
    "LeaderCruiseController",
    "ConstantSpacingController",
    "BrakeToStopController",
    "GAP_INTRA_PLATOON",
    "GAP_INTER_PLATOON",
    "Message",
    "MessageBus",
    "KinematicPlatoon",
    "VehicleAgent",
    "ManeuverExecutor",
    "ManeuverOutcome",
    "AtomicManeuvers",
    "FormationOutcome",
    "FailureInjectionScenario",
    "InjectionReport",
    "DemandProfile",
    "ScenarioReport",
    "TrafficScenario",
    "Highway",
    "CalibrationReport",
    "calibrate_maneuver_durations",
]
