"""A platooned vehicle: state + active control mode."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.agents.controllers import (
    BrakeToStopController,
    ConstantSpacingController,
    GAP_INTRA_PLATOON,
    LeaderCruiseController,
)
from repro.agents.kinematics import HIGHWAY_SPEED, VehicleState

__all__ = ["ControlMode", "VehicleAgent"]


class ControlMode(enum.Enum):
    """What the longitudinal controller is currently doing."""

    #: leader / free agent holding the highway speed
    CRUISE = "cruise"
    #: follower tracking its predecessor at the platoon gap
    FOLLOW = "follow"
    #: braking to a stop (gentle or emergency profile)
    BRAKE = "brake"
    #: off the highway / parked; no commands issued
    INACTIVE = "inactive"


@dataclass
class VehicleAgent:
    """One vehicle of the kinematic substrate.

    The agent is deliberately passive: the :class:`~repro.agents.highway.
    Highway` tick integrates every agent each control period, and the
    :class:`~repro.agents.maneuver_exec.ManeuverExecutor` mutates modes and
    gap targets to realise maneuvers.
    """

    vehicle_id: str
    state: VehicleState
    mode: ControlMode = ControlMode.FOLLOW
    #: current spacing target (enlarged during gap-opening phases)
    gap_target: float = GAP_INTRA_PLATOON
    cruise: LeaderCruiseController = field(
        default_factory=lambda: LeaderCruiseController(HIGHWAY_SPEED)
    )
    spacing: ConstantSpacingController = field(
        default_factory=ConstantSpacingController
    )
    brake: Optional[BrakeToStopController] = None
    #: set when the vehicle suffered a failure (diagnostics)
    failed: bool = False

    def command(self, predecessor: Optional[VehicleState]) -> float:
        """Acceleration command for the current control period."""
        if self.mode is ControlMode.INACTIVE:
            return 0.0
        if self.mode is ControlMode.BRAKE:
            if self.brake is None:
                raise RuntimeError(
                    f"{self.vehicle_id}: BRAKE mode without a brake controller"
                )
            return self.brake.command(self.state)
        if self.mode is ControlMode.FOLLOW and predecessor is not None:
            self.spacing.gap_target = self.gap_target
            return self.spacing.command(self.state, predecessor)
        return self.cruise.command(self.state)

    def start_braking(self, deceleration: float) -> None:
        """Switch to a braking profile."""
        self.brake = BrakeToStopController(deceleration)
        self.mode = ControlMode.BRAKE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VehicleAgent({self.vehicle_id!r}, mode={self.mode.value}, "
            f"x={self.state.position:.1f}, v={self.state.speed:.1f})"
        )
