"""Two-lane highway scenarios and maneuver-duration calibration.

:class:`Highway` assembles platoons of :class:`~repro.agents.vehicle_agent.
VehicleAgent` objects, integrates all vehicles at a fixed control period on
the DES kernel, and exposes the condition-waiting helpers the maneuver
executor needs.  :func:`calibrate_maneuver_durations` reproduces the
paper's 2–4 minute maneuver-duration band and measures how durations grow
with platoon size — the justification for ``AHSParameters.duration_scaling``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.agents.comms import MessageBus
from repro.agents.controllers import GAP_INTER_PLATOON, GAP_INTRA_PLATOON
from repro.agents.kinematics import HIGHWAY_SPEED, VEHICLE_LENGTH, VehicleState, integrate
from repro.agents.platoon import KinematicPlatoon
from repro.agents.vehicle_agent import ControlMode, VehicleAgent
from repro.core.maneuvers import Maneuver
from repro.des import Environment
from repro.stochastic import RandomStream, StreamFactory

__all__ = ["Highway", "CalibrationReport", "calibrate_maneuver_durations"]

#: control period of the tick loop (s); 2 Hz is coarse for control design
#: but accurate to well under a second for maneuver durations
CONTROL_PERIOD = 0.5


class Highway:
    """A two-lane automated highway with platoons of kinematic vehicles."""

    def __init__(
        self,
        env: Environment,
        stream: RandomStream,
        comm_latency: float = 0.02,
        comm_loss: float = 0.0,
    ) -> None:
        self.env = env
        self.stream = stream
        self.bus = MessageBus(env, stream, latency=comm_latency, loss_probability=comm_loss)
        self.agents: dict[str, VehicleAgent] = {}
        self.platoons: dict[str, KinematicPlatoon] = {}
        self._ticking = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_platoon(
        self, name: str, lane: int, size: int, head_position: float = 0.0
    ) -> KinematicPlatoon:
        """Create a platoon of ``size`` vehicles at nominal spacing."""
        if size < 1:
            raise ValueError(f"platoon size must be >= 1, got {size}")
        if name in self.platoons:
            raise ValueError(f"platoon {name!r} already exists")
        platoon = KinematicPlatoon(name, lane)
        pitch = VEHICLE_LENGTH + GAP_INTRA_PLATOON
        for index in range(size):
            vehicle_id = f"{name}.v{index}"
            state = VehicleState(
                position=head_position - index * pitch, lane=lane
            )
            mode = ControlMode.CRUISE if index == 0 else ControlMode.FOLLOW
            agent = VehicleAgent(vehicle_id, state, mode=mode)
            self.agents[vehicle_id] = agent
            self.bus.register(vehicle_id)
            platoon.append(vehicle_id)
        self.platoons[name] = platoon
        return platoon

    def platoon_of(self, vehicle_id: str) -> Optional[KinematicPlatoon]:
        """The platoon containing a vehicle (None for detached vehicles)."""
        for platoon in self.platoons.values():
            if vehicle_id in platoon.vehicle_ids:
                return platoon
        return None

    # ------------------------------------------------------------------
    # simulation loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the control/integration tick (idempotent)."""
        if not self._ticking:
            self._ticking = True
            self.env.process(self._tick_loop())

    def _tick_loop(self):
        while True:
            self._tick_once(CONTROL_PERIOD)
            yield self.env.timeout(CONTROL_PERIOD)

    def _tick_once(self, dt: float) -> None:
        # Two-phase update: every controller reads the *pre-tick* states
        # (all vehicles sense simultaneously), then all states integrate.
        commands: dict[str, float] = {}
        seen: set[str] = set()
        for platoon in self.platoons.values():
            predecessor: Optional[VehicleState] = None
            for vehicle_id in platoon.vehicle_ids:
                agent = self.agents[vehicle_id]
                commands[vehicle_id] = agent.command(predecessor)
                predecessor = agent.state
                seen.add(vehicle_id)
        for vehicle_id, agent in self.agents.items():
            if vehicle_id not in seen and agent.mode is not ControlMode.INACTIVE:
                commands[vehicle_id] = agent.command(None)
        for vehicle_id, command in commands.items():
            integrate(self.agents[vehicle_id].state, command, dt)

    # ------------------------------------------------------------------
    # condition helpers for maneuver procedures
    # ------------------------------------------------------------------
    def wait_until(
        self, condition: Callable[[], bool], timeout: float = 900.0
    ):
        """Process helper: poll ``condition`` each control period.

        Returns (via the process value) the time waited; raises
        ``TimeoutError`` if the condition does not hold within ``timeout``
        simulated seconds — a maneuver that cannot complete kinematically
        is a *failed* maneuver.
        """
        start = self.env.now
        while not condition():
            if self.env.now - start > timeout:
                raise TimeoutError("kinematic condition not reached")
            yield self.env.timeout(CONTROL_PERIOD)
        return self.env.now - start

    def gap_behind(self, vehicle_id: str) -> float:
        """Gap between a vehicle and its follower (inf for the tail)."""
        platoon = self.platoon_of(vehicle_id)
        if platoon is None:
            return math.inf
        successor = platoon.successor_of(vehicle_id)
        if successor is None:
            return math.inf
        return self.agents[successor].state.gap_to(self.agents[vehicle_id].state)


@dataclass
class CalibrationReport:
    """Measured maneuver durations, by maneuver and platoon size."""

    #: duration samples (s): {maneuver: {platoon_size: [samples]}}
    samples: dict[Maneuver, dict[int, list[float]]]

    def mean_duration(self, maneuver: Maneuver, size: int) -> float:
        """Mean measured duration (s) for one configuration."""
        data = self.samples[maneuver][size]
        return float(np.mean(data))

    def rate_per_hour(self, maneuver: Maneuver, size: int) -> float:
        """Equivalent exponential rate (1/hr) for the SAN model."""
        return 3600.0 / self.mean_duration(maneuver, size)

    def fitted_duration_scaling(self, maneuver: Maneuver) -> float:
        """Least-squares κ in ``duration(occ) = d₀·(1 + κ·(occ − 2))``.

        Joint linear regression of mean durations on ``(1, occ − 2)``;
        κ is the slope relative to the intercept d₀.
        """
        sizes = sorted(self.samples[maneuver])
        if len(sizes) < 2:
            raise ValueError("need at least two platoon sizes to fit κ")
        durations = np.array([self.mean_duration(maneuver, s) for s in sizes])
        crowd = np.array([max(s - 2, 0) for s in sizes], dtype=float)
        design = np.vstack([np.ones_like(crowd), crowd]).T
        (d0, slope), *_ = np.linalg.lstsq(design, durations, rcond=None)
        if d0 <= 0:
            raise ValueError("degenerate duration fit (non-positive intercept)")
        return float(slope / d0)

    def summary_rows(self) -> list[dict]:
        """Flat rows for report printing."""
        rows = []
        for maneuver, by_size in sorted(
            self.samples.items(), key=lambda kv: kv[0].name
        ):
            for size, data in sorted(by_size.items()):
                rows.append(
                    {
                        "maneuver": maneuver.value,
                        "platoon_size": size,
                        "mean_duration_s": float(np.mean(data)),
                        "rate_per_hr": 3600.0 / float(np.mean(data)),
                        "samples": len(data),
                    }
                )
        return rows


def calibrate_maneuver_durations(
    platoon_sizes: tuple[int, ...] = (4, 8, 12),
    repetitions: int = 3,
    seed: int = 2009,
    maneuvers: tuple[Maneuver, ...] = tuple(Maneuver),
) -> CalibrationReport:
    """Measure kinematic maneuver durations across platoon sizes.

    For each (maneuver, platoon size, repetition): build a fresh two-platoon
    highway, inject the failure in a random member of platoon 1, execute the
    maneuver kinematically and record its duration.
    """
    from repro.agents.maneuver_exec import ManeuverExecutor

    factory = StreamFactory(seed)
    samples: dict[Maneuver, dict[int, list[float]]] = {
        maneuver: {size: [] for size in platoon_sizes} for maneuver in maneuvers
    }
    for maneuver in maneuvers:
        for size in platoon_sizes:
            for rep in range(repetitions):
                stream = factory.stream(f"{maneuver.name}-{size}-{rep}")
                env = Environment()
                highway = Highway(env, stream)
                highway.add_platoon("p1", lane=2, size=size, head_position=0.0)
                highway.add_platoon(
                    "p2",
                    lane=2,
                    size=size,
                    head_position=-(size * (VEHICLE_LENGTH + GAP_INTRA_PLATOON))
                    - GAP_INTER_PLATOON,
                )
                highway.start()
                executor = ManeuverExecutor(highway, stream)
                # faulty vehicle: a non-leader member when one exists
                index = 1 + stream.integers(0, max(size - 1, 1)) if size > 1 else 0
                faulty = f"p1.v{min(index, size - 1)}"
                outcome = executor.run_to_completion(maneuver, faulty)
                samples[maneuver][size].append(outcome.duration)
    return CalibrationReport(samples=samples)
