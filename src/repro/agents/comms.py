"""V2V communication with latency and loss.

The platooning application coordinates maneuvers over an ad-hoc wireless
network; FM3 in Table 1 is precisely the failure of this channel.  The
bus delivers point-to-point and broadcast messages with configurable
latency and loss probability, on top of the DES kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.des import Environment, Store
from repro.stochastic import RandomStream

__all__ = ["Message", "MessageBus"]


@dataclass(frozen=True)
class Message:
    """One V2V frame."""

    sender: str
    recipient: str  # vehicle id or "*" for broadcast
    kind: str  # e.g. "maneuver-request", "maneuver-grant", "state"
    payload: Any = None
    sent_at: float = 0.0


class MessageBus:
    """Delivers messages between named endpoints.

    Parameters
    ----------
    env:
        The simulation environment.
    stream:
        Randomness for loss decisions and latency jitter.
    latency:
        Mean one-way latency (s).
    loss_probability:
        Independent per-frame loss probability.
    """

    def __init__(
        self,
        env: Environment,
        stream: RandomStream,
        latency: float = 0.02,
        loss_probability: float = 0.0,
    ) -> None:
        if latency < 0.0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0,1), got {loss_probability}"
            )
        self.env = env
        self.stream = stream
        self.latency = latency
        self.loss_probability = loss_probability
        self._mailboxes: dict[str, Store] = {}
        self.frames_sent = 0
        self.frames_lost = 0

    # ------------------------------------------------------------------
    def register(self, endpoint: str) -> None:
        """Create a mailbox for ``endpoint``."""
        if endpoint in self._mailboxes:
            raise ValueError(f"endpoint {endpoint!r} already registered")
        self._mailboxes[endpoint] = Store(self.env)

    @property
    def endpoints(self) -> list[str]:
        """Registered endpoint names."""
        return list(self._mailboxes)

    def send(self, message: Message) -> None:
        """Send one frame (delivered after the latency unless lost)."""
        self.frames_sent += 1
        if self.loss_probability and self.stream.bernoulli(self.loss_probability):
            self.frames_lost += 1
            return
        targets = (
            list(self._mailboxes)
            if message.recipient == "*"
            else [message.recipient]
        )
        for target in targets:
            if target == message.sender:
                continue
            mailbox = self._mailboxes.get(target)
            if mailbox is None:
                raise KeyError(f"unknown endpoint {message.recipient!r}")
            self.env.process(self._deliver(mailbox, message))

    def _deliver(self, mailbox: Store, message: Message):
        delay = self.latency
        if delay > 0.0:
            # small multiplicative jitter keeps deliveries from synchronising
            delay *= 0.5 + self.stream.random()
            yield self.env.timeout(delay)
        yield mailbox.put(message)

    def receive(self, endpoint: str):
        """Event yielding the next message for ``endpoint``."""
        mailbox = self._mailboxes.get(endpoint)
        if mailbox is None:
            raise KeyError(f"unknown endpoint {endpoint!r}")
        return mailbox.get()

    def cancel_receive(self, endpoint: str, event) -> bool:
        """Withdraw a pending :meth:`receive` (e.g. after a timeout)."""
        mailbox = self._mailboxes.get(endpoint)
        if mailbox is None:
            raise KeyError(f"unknown endpoint {endpoint!r}")
        return mailbox.cancel_get(event)

    @property
    def loss_rate(self) -> float:
        """Observed frame loss fraction."""
        if self.frames_sent == 0:
            return 0.0
        return self.frames_lost / self.frames_sent
