"""End-to-end failure injection: Table 1 shocks on the kinematic highway.

The integration layer between the stochastic model and the traffic
substrate: failure modes strike operational vehicles as Poisson shocks
with the Table-1 rate ratios (accelerated so that a simulation of a few
hours sees events), and each triggers the corresponding recovery maneuver
*kinematically*.  Maneuvers are serialized (one at a time per highway —
the leader/SAP coordination discipline of §2.1.2, with queued requests
waiting their turn), and per-maneuver statistics come back out:
durations, success rates, and the empirical rate band to compare against
the SAN parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.agents.highway import Highway
from repro.agents.kinematics import VEHICLE_LENGTH
from repro.agents.controllers import GAP_INTER_PLATOON, GAP_INTRA_PLATOON
from repro.agents.maneuver_exec import ManeuverExecutor, ManeuverOutcome
from repro.agents.vehicle_agent import ControlMode
from repro.core.failure_modes import FAILURE_MODES
from repro.core.maneuvers import maneuver_for_failure_mode
from repro.core.parameters import AHSParameters
from repro.des import Environment
from repro.stochastic import StreamFactory

__all__ = ["FailureInjectionScenario", "InjectionReport"]


@dataclass
class InjectionReport:
    """Statistics from one failure-injection run."""

    duration_hours: float
    injected: int
    executed: int
    refused_small_platoon: int
    replenished: int = 0
    outcomes: list[ManeuverOutcome] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Fraction of executed maneuvers that completed successfully."""
        if not self.outcomes:
            return float("nan")
        return sum(o.success for o in self.outcomes) / len(self.outcomes)

    def mean_duration(self) -> float:
        """Mean duration (s) over successful maneuvers."""
        durations = [o.duration for o in self.outcomes if o.success]
        if not durations:
            return float("nan")
        return float(np.mean(durations))

    def by_maneuver(self) -> dict[str, dict]:
        """Per-maneuver count / success-rate / mean-duration summary."""
        summary: dict[str, dict] = {}
        for outcome in self.outcomes:
            entry = summary.setdefault(
                outcome.maneuver.value,
                {"count": 0, "successes": 0, "durations": []},
            )
            entry["count"] += 1
            entry["successes"] += int(outcome.success)
            if outcome.success:
                entry["durations"].append(outcome.duration)
        for entry in summary.values():
            durations = entry.pop("durations")
            entry["mean_duration_s"] = (
                float(np.mean(durations)) if durations else float("nan")
            )
        return summary


class FailureInjectionScenario:
    """Poisson failure shocks driving kinematic recovery maneuvers.

    Parameters
    ----------
    params:
        The AHS parameterisation; the Table-1 rate *ratios* come from
        here, scaled by ``acceleration`` so that events occur within a
        simulable horizon (λ = 1e-5/hr would need millennia otherwise).
    acceleration:
        Multiplier on the per-vehicle failure intensity.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        params: AHSParameters,
        acceleration: float = 1e4,
        seed: Optional[int] = None,
    ) -> None:
        if acceleration <= 0:
            raise ValueError(f"acceleration must be > 0, got {acceleration}")
        self.params = params
        self.acceleration = acceleration
        self.factory = StreamFactory(seed)

    # ------------------------------------------------------------------
    def run(self, duration_hours: float) -> InjectionReport:
        """Inject failures for ``duration_hours`` and execute recoveries."""
        if duration_hours <= 0:
            raise ValueError(f"duration_hours must be > 0, got {duration_hours}")
        stream = self.factory.stream("inject")
        env = Environment()
        highway = Highway(env, stream)
        n = self.params.max_platoon_size
        highway.add_platoon("p1", lane=2, size=n, head_position=0.0)
        highway.add_platoon(
            "p2",
            lane=2,
            size=n,
            head_position=-(n * (VEHICLE_LENGTH + GAP_INTRA_PLATOON))
            - GAP_INTER_PLATOON,
        )
        highway.start()
        executor = ManeuverExecutor(highway, stream)

        report = InjectionReport(
            duration_hours=duration_hours,
            injected=0,
            executed=0,
            refused_small_platoon=0,
        )
        busy = {"maneuver": False}
        spawned = {"count": 0}

        def replenisher():
            # the closed population of the stochastic model: exited
            # vehicles re-enter at the join rate.  Re-seating is
            # administrative (a formed-up vehicle appears at the tail);
            # the kinematic join procedure is exercised separately by
            # repro.agents.workload.  Gated on maneuver-idle periods so
            # container mutations never race a split/overtake.
            if self.params.join_rate <= 0:
                return
            # the acceleration applies to the whole failure/rejoin
            # timeline so the scenario keeps the model's relative pacing
            rate_per_s = self.params.join_rate * self.acceleration / 3600.0
            while True:
                yield env.timeout(stream.exponential(rate_per_s))
                if busy["maneuver"]:
                    continue
                candidates = [
                    p
                    for p in highway.platoons.values()
                    if 0 < p.size < self.params.max_platoon_size
                    and p.lane == 2
                ]
                if not candidates:
                    continue
                platoon = min(candidates, key=lambda p: p.size)
                tail = highway.agents[platoon.vehicle_ids[-1]]
                spawned["count"] += 1
                vehicle_id = f"fresh{spawned['count']}"
                from repro.agents.kinematics import VehicleState
                from repro.agents.vehicle_agent import VehicleAgent

                agent = VehicleAgent(
                    vehicle_id,
                    VehicleState(
                        position=tail.state.position
                        - (VEHICLE_LENGTH + GAP_INTRA_PLATOON),
                        speed=tail.state.speed,
                        lane=platoon.lane,
                    ),
                    mode=ControlMode.FOLLOW,
                )
                highway.agents[vehicle_id] = agent
                highway.bus.register(vehicle_id)
                platoon.append(vehicle_id)
                report.replenished += 1
        per_vehicle_rate = (
            self.params.total_failure_rate() * self.acceleration / 3600.0
        )  # per second
        fm_weights = [
            self.params.failure_mode_rate(fm) for fm in FAILURE_MODES
        ]
        horizon_s = duration_hours * 3600.0

        def injector():
            while True:
                operational = [
                    vid
                    for platoon in highway.platoons.values()
                    for vid in platoon.vehicle_ids
                    if highway.agents[vid].mode
                    in (ControlMode.CRUISE, ControlMode.FOLLOW)
                ]
                if not operational:
                    return
                total_rate = per_vehicle_rate * len(operational)
                yield env.timeout(stream.exponential(total_rate))
                if env.now >= horizon_s:
                    return
                report.injected += 1
                victim = operational[stream.integers(0, len(operational))]
                platoon = highway.platoon_of(victim)
                if platoon is None or platoon.size < 3:
                    # too few members to coordinate a maneuver; the
                    # stochastic model's occupancy never drains this far
                    # because of rejoins, which this scenario omits
                    report.refused_small_platoon += 1
                    continue
                fm = FAILURE_MODES[stream.choice_index(fm_weights)]
                maneuver = maneuver_for_failure_mode(fm)
                # serialized execution: the injector process itself runs
                # the maneuver to completion (leader/SAP discipline);
                # failures arriving meanwhile queue behind it naturally
                start = env.now
                busy["maneuver"] = True
                process = env.process(executor.procedure(maneuver, victim))
                try:
                    yield process
                    success = True
                except TimeoutError:
                    success = False
                finally:
                    busy["maneuver"] = False
                report.executed += 1
                report.outcomes.append(
                    ManeuverOutcome(
                        maneuver=maneuver,
                        vehicle_id=victim,
                        duration=env.now - start,
                        success=success,
                    )
                )

        env.process(injector())
        env.process(replenisher())
        env.run(until=horizon_s)
        return report
