"""Kinematic execution of the six recovery maneuvers.

Each maneuver is a DES process over the :class:`~repro.agents.highway.
Highway`: coordination handshakes go over the V2V bus, gap openings and
platoon re-formations are driven by the spacing controllers, exits travel
to a randomly placed off-ramp, and Class-A stops trigger the full incident
procedure (split the tail, overtake the stopped vehicle on the free lane,
re-form behind the front part).  The measured durations land in the
paper's 2–4 minute band and grow with platoon size — the source of
``AHSParameters.duration_scaling``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.agents.controllers import GAP_INTER_PLATOON, GAP_INTRA_PLATOON
from repro.agents.highway import Highway
from repro.agents.kinematics import HIGHWAY_SPEED, VEHICLE_LENGTH
from repro.agents.vehicle_agent import ControlMode
from repro.agents.comms import Message
from repro.core.maneuvers import Maneuver
from repro.des import AnyOf
from repro.stochastic import RandomStream

__all__ = ["ManeuverOutcome", "ManeuverExecutor"]

#: lane-change execution time (s)
LANE_CHANGE_TIME = 4.0
#: speed while driving to the off-ramp as a free agent (m/s)
EXIT_SPEED = 22.0
#: speed while being escorted to the off-ramp (m/s)
ESCORT_SPEED = 18.0
#: catch-up overspeed while a split tail re-forms (m/s)
CATCH_UP_SPEED = HIGHWAY_SPEED + 1.5
#: settled when speeds are within this of the target (m/s)
SPEED_TOLERANCE = 0.4
#: off-ramp distance range (m): next exit is 0.8–3.6 km away
EXIT_DISTANCE_RANGE = (800.0, 3600.0)
#: per-frame acknowledgment timeout before a handshake retransmission (s)
HANDSHAKE_TIMEOUT = 1.0
#: handshake retransmissions before declaring the coordination failed
#: (a persistent V2V outage is itself failure mode FM3)
HANDSHAKE_RETRIES = 8
#: incident-clearance time range (s) after a Class-A stop: the paper's
#: "specific control laws ... to ease congestion, divert traffic away from
#: the incident, assist emergency vehicles, and get the queued vehicles
#: out" (§2.1.1).  Clearing a stopped vehicle from the automated lane is
#: not a kinematic process of the platoon itself, so it is modeled as a
#: timed phase (see DESIGN.md substitutions).
CLEARANCE_TIME_RANGE = (90.0, 180.0)
#: extra clearance for an aided stop (two vehicles end up stopped)
AIDED_CLEARANCE_EXTRA = 40.0


@dataclass
class ManeuverOutcome:
    """Result of one kinematic maneuver execution."""

    maneuver: Maneuver
    vehicle_id: str
    duration: float
    success: bool
    phase_durations: dict[str, float] = field(default_factory=dict)


class ManeuverExecutor:
    """Runs recovery maneuvers on a highway scenario."""

    def __init__(self, highway: Highway, stream: RandomStream) -> None:
        self.highway = highway
        self.stream = stream

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def procedure(self, maneuver: Maneuver, vehicle_id: str):
        """The maneuver as a raw process generator (for embedding in
        larger scenarios — see :mod:`repro.agents.failure_scenario`)."""
        dispatch = {
            Maneuver.TIE_N: self._tie_normal,
            Maneuver.TIE: self._tie,
            Maneuver.TIE_E: self._tie_escorted,
            Maneuver.GS: self._gentle_stop,
            Maneuver.CS: self._crash_stop,
            Maneuver.AS: self._aided_stop,
        }
        return dispatch[maneuver](vehicle_id)

    def run_to_completion(
        self, maneuver: Maneuver, vehicle_id: str
    ) -> ManeuverOutcome:
        """Execute one maneuver and run the simulation until it finishes."""
        env = self.highway.env
        self.highway.start()
        process = env.process(self.procedure(maneuver, vehicle_id))
        start = env.now
        try:
            phases = env.run(until=process)
            return ManeuverOutcome(
                maneuver=maneuver,
                vehicle_id=vehicle_id,
                duration=env.now - start,
                success=True,
                phase_durations=phases or {},
            )
        except TimeoutError:
            return ManeuverOutcome(
                maneuver=maneuver,
                vehicle_id=vehicle_id,
                duration=env.now - start,
                success=False,
            )

    # ------------------------------------------------------------------
    # shared building blocks
    # ------------------------------------------------------------------
    def _receive_or_timeout(self, endpoint: str):
        """Wait for the next frame at ``endpoint``; None on timeout.

        A timed-out wait is withdrawn from the mailbox so it cannot
        swallow a later retransmission.
        """
        env = self.highway.env
        bus = self.highway.bus
        get_event = bus.receive(endpoint)
        timer = env.timeout(HANDSHAKE_TIMEOUT)
        yield AnyOf(env, [get_event, timer])
        if get_event.processed:
            return get_event.value
        bus.cancel_receive(endpoint, get_event)
        return None

    def _handshake(self, vehicle_id: str, parties: list[str]):
        """Request/grant exchange with each coordinating party.

        Frames may be lost (the bus models the ad-hoc wireless channel);
        the faulty vehicle retransmits after a timeout.  A party that
        stays unreachable for :data:`HANDSHAKE_RETRIES` rounds makes the
        coordination — and hence the maneuver — fail, surfacing as a
        ``TimeoutError`` (the caller reports an unsuccessful maneuver).
        """
        env = self.highway.env
        bus = self.highway.bus
        for party in parties:
            if party is None or party == vehicle_id:
                continue
            for attempt in range(HANDSHAKE_RETRIES):
                bus.send(
                    Message(
                        vehicle_id, party, "maneuver-request", sent_at=env.now
                    )
                )
                request = yield from self._receive_or_timeout(party)
                if request is None:
                    continue  # request lost: retransmit
                bus.send(
                    Message(party, vehicle_id, "maneuver-grant", sent_at=env.now)
                )
                grant = yield from self._receive_or_timeout(vehicle_id)
                if grant is not None:
                    break  # granted
            else:
                raise TimeoutError(
                    f"handshake with {party!r} failed after "
                    f"{HANDSHAKE_RETRIES} retransmissions"
                )

    def _settled(self, vehicle_ids: list[str], target_speed: float) -> bool:
        agents = self.highway.agents
        return all(
            abs(agents[v].state.speed - target_speed) <= SPEED_TOLERANCE
            for v in vehicle_ids
        )

    def _open_gap_behind(self, vehicle_id: str, gap: float):
        """Enlarge the follower's spacing target and wait for the platoon
        to settle at the new geometry (rear settling grows with length)."""
        highway = self.highway
        platoon = highway.platoon_of(vehicle_id)
        if platoon is None:
            return 0.0
        successor = platoon.successor_of(vehicle_id)
        if successor is None:
            return 0.0
        highway.agents[successor].gap_target = gap
        tail = platoon.vehicle_ids[platoon.position_of(vehicle_id) + 1 :]
        waited = yield from highway.wait_until(
            lambda: highway.gap_behind(vehicle_id) >= 0.92 * gap
            and self._settled(tail, HIGHWAY_SPEED)
        )
        return waited

    def _leave_platoon(self, vehicle_id: str) -> Optional[str]:
        """Remove the vehicle from its platoon; reconnect its follower.

        Returns the id of the follower that now closes the gap.
        """
        highway = self.highway
        platoon = highway.platoon_of(vehicle_id)
        if platoon is None:
            return None
        successor = platoon.successor_of(vehicle_id)
        was_leader = platoon.leader_id == vehicle_id
        platoon.remove(vehicle_id)
        if was_leader and platoon.vehicle_ids:
            # leadership passes to the next vehicle (paper §2: specific
            # maneuvers select a new leader)
            highway.agents[platoon.vehicle_ids[0]].mode = ControlMode.CRUISE
        if successor is not None and successor in platoon.vehicle_ids:
            highway.agents[successor].gap_target = GAP_INTRA_PLATOON
        return successor

    def _drive_to_exit(self, vehicle_id: str, speed: float):
        """Lane-change onto lane 1, drive to the off-ramp, leave the AHS."""
        highway = self.highway
        env = highway.env
        agent = highway.agents[vehicle_id]
        yield env.timeout(LANE_CHANGE_TIME)
        agent.state.lane = 1
        agent.mode = ControlMode.CRUISE
        agent.cruise.set_speed = speed
        distance = self.stream.uniform(*EXIT_DISTANCE_RANGE)
        target = agent.state.position + distance
        yield from highway.wait_until(
            lambda: agent.state.position >= target, timeout=600.0
        )
        agent.state.lane = 0
        agent.mode = ControlMode.INACTIVE

    def _close_ranks(self, platoon_name: str):
        """Wait until a platoon is back at nominal gaps and speed."""
        highway = self.highway
        platoon = highway.platoons[platoon_name]

        def formed() -> bool:
            members = platoon.vehicle_ids
            if len(members) <= 1:
                return self._settled(members, HIGHWAY_SPEED)
            agents = highway.agents
            for ahead, behind in zip(members, members[1:]):
                gap = agents[behind].state.gap_to(agents[ahead].state)
                if gap > 1.6 * GAP_INTRA_PLATOON or gap < 0.0:
                    return False
            return self._settled(members, HIGHWAY_SPEED)

        waited = yield from highway.wait_until(formed)
        return waited

    # ------------------------------------------------------------------
    # exit maneuvers (Class B / C)
    # ------------------------------------------------------------------
    def _tie_normal(self, vehicle_id: str):
        """TIE-N: unassisted exit; the leader is merely notified."""
        highway = self.highway
        env = highway.env
        phases: dict[str, float] = {}
        platoon = highway.platoon_of(vehicle_id)
        leader = platoon.leader_id if platoon else None
        t0 = env.now
        yield from self._handshake(vehicle_id, [leader] if leader else [])
        phases["handshake"] = env.now - t0

        t0 = env.now
        yield from self._open_gap_behind(vehicle_id, 8.0)
        phases["gap"] = env.now - t0

        home = platoon.name if platoon else None
        self._leave_platoon(vehicle_id)
        t0 = env.now
        yield from self._drive_to_exit(vehicle_id, EXIT_SPEED)
        phases["exit"] = env.now - t0

        if home is not None:
            t0 = env.now
            yield from self._close_ranks(home)
            phases["reform"] = env.now - t0
        return phases

    def _tie(self, vehicle_id: str):
        """TIE: exit with adjacent-vehicle cooperation (front + behind)."""
        highway = self.highway
        env = highway.env
        phases: dict[str, float] = {}
        platoon = highway.platoon_of(vehicle_id)
        parties = []
        if platoon:
            parties = [
                platoon.leader_id,
                platoon.predecessor_of(vehicle_id),
                platoon.successor_of(vehicle_id),
            ]
        t0 = env.now
        yield from self._handshake(vehicle_id, [p for p in parties if p])
        phases["handshake"] = env.now - t0

        t0 = env.now
        yield from self._open_gap_behind(vehicle_id, 20.0)
        phases["gap"] = env.now - t0

        home = platoon.name if platoon else None
        self._leave_platoon(vehicle_id)
        t0 = env.now
        yield from self._drive_to_exit(vehicle_id, EXIT_SPEED)
        phases["exit"] = env.now - t0

        if home is not None:
            t0 = env.now
            yield from self._close_ranks(home)
            phases["reform"] = env.now - t0
        return phases

    def _tie_escorted(self, vehicle_id: str):
        """TIE-E: exit escorted by the neighbouring platoon."""
        highway = self.highway
        env = highway.env
        phases: dict[str, float] = {}
        platoon = highway.platoon_of(vehicle_id)
        neighbor_leader = None
        for other in highway.platoons.values():
            if platoon is not None and other.name != platoon.name and other.vehicle_ids:
                neighbor_leader = other.leader_id
                break
        parties = []
        if platoon:
            parties = [
                platoon.leader_id,
                platoon.predecessor_of(vehicle_id),
                platoon.successor_of(vehicle_id),
                neighbor_leader,
            ]
        t0 = env.now
        yield from self._handshake(vehicle_id, [p for p in parties if p])
        phases["handshake"] = env.now - t0

        t0 = env.now
        yield from self._open_gap_behind(vehicle_id, 25.0)
        phases["gap"] = env.now - t0

        home = platoon.name if platoon else None
        self._leave_platoon(vehicle_id)
        t0 = env.now
        yield from self._drive_to_exit(vehicle_id, ESCORT_SPEED)
        phases["exit"] = env.now - t0

        if home is not None:
            t0 = env.now
            yield from self._close_ranks(home)
            phases["reform"] = env.now - t0
        return phases

    # ------------------------------------------------------------------
    # stop maneuvers (Class A) with the incident procedure
    # ------------------------------------------------------------------
    def _stop_with_incident_procedure(
        self, vehicle_id: str, deceleration: float, aided: bool
    ):
        highway = self.highway
        env = highway.env
        phases: dict[str, float] = {}
        platoon = highway.platoon_of(vehicle_id)
        leader = platoon.leader_id if platoon else None

        t0 = env.now
        yield from self._handshake(vehicle_id, [leader] if leader else [])
        phases["handshake"] = env.now - t0

        # detach the tail before anyone brakes hard
        tail_ids: list[str] = []
        home = platoon.name if platoon else None
        if platoon is not None:
            tail_ids = platoon.split_behind(vehicle_id)

        assistant: Optional[str] = None
        if aided and platoon is not None:
            assistant = platoon.predecessor_of(vehicle_id)

        # faulty (and assistant, for AS) brake to a stop
        faulty = highway.agents[vehicle_id]
        if platoon is not None:
            platoon.remove(vehicle_id)
        faulty.start_braking(deceleration)
        if assistant is not None:
            platoon.remove(assistant)
            highway.agents[assistant].start_braking(deceleration)

        # the tail becomes its own platoon, overtakes on lane 1, re-forms
        tail_name = None
        if tail_ids:
            tail_name = f"{home}.tail{int(env.now * 10)}"
            tail = highway.platoons.setdefault(
                tail_name,
                type(platoon)(tail_name, lane=1, vehicle_ids=list(tail_ids)),
            )
            tail_leader = highway.agents[tail_ids[0]]
            yield env.timeout(LANE_CHANGE_TIME)
            for member in tail_ids:
                highway.agents[member].state.lane = 1
            tail_leader.mode = ControlMode.CRUISE
            tail_leader.cruise.set_speed = HIGHWAY_SPEED

        t0 = env.now
        yield from highway.wait_until(lambda: faulty.state.stopped)
        if assistant is not None:
            helper = highway.agents[assistant]
            yield from highway.wait_until(lambda: helper.state.stopped)
            helper.mode = ControlMode.INACTIVE
        faulty.mode = ControlMode.INACTIVE
        phases["stop"] = env.now - t0

        # incident clearance: divert traffic, assist, clear the lane
        t0 = env.now
        clearance = self.stream.uniform(*CLEARANCE_TIME_RANGE)
        if aided:
            clearance += AIDED_CLEARANCE_EXTRA
        yield env.timeout(clearance)
        phases["clearance"] = env.now - t0

        if tail_name is not None:
            tail = highway.platoons[tail_name]
            tail_leader = highway.agents[tail.vehicle_ids[0]]
            # pass the stopped vehicle with a safety margin
            t0 = env.now
            yield from highway.wait_until(
                lambda: highway.agents[tail.vehicle_ids[-1]].state.position
                > faulty.state.position + 60.0
            )
            yield env.timeout(LANE_CHANGE_TIME)
            for member in tail.vehicle_ids:
                highway.agents[member].state.lane = 2
            phases["overtake"] = env.now - t0

            # catch up with the front part (if any) and re-form
            t0 = env.now
            front = highway.platoons.get(home) if home else None
            if front is not None and front.vehicle_ids:
                front_tail = highway.agents[front.vehicle_ids[-1]]
                tail_leader.cruise.set_speed = CATCH_UP_SPEED
                yield from highway.wait_until(
                    lambda: tail_leader.state.gap_to(front_tail.state)
                    <= GAP_INTER_PLATOON
                )
                tail_leader.cruise.set_speed = HIGHWAY_SPEED
            yield from self._close_ranks(tail_name)
            phases["reform"] = env.now - t0
        return phases

    def _gentle_stop(self, vehicle_id: str):
        """GS: smooth braking to a stop on the highway."""
        return (
            yield from self._stop_with_incident_procedure(
                vehicle_id, deceleration=2.0, aided=False
            )
        )

    def _crash_stop(self, vehicle_id: str):
        """CS: maximum emergency braking."""
        return (
            yield from self._stop_with_incident_procedure(
                vehicle_id, deceleration=7.5, aided=False
            )
        )

    def _aided_stop(self, vehicle_id: str):
        """AS: stopped by the vehicle immediately ahead."""
        return (
            yield from self._stop_with_incident_procedure(
                vehicle_id, deceleration=1.5, aided=True
            )
        )
