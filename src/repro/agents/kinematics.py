"""Vehicle kinematic state and motion integration."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["VehicleState", "integrate", "VEHICLE_LENGTH", "HIGHWAY_SPEED"]

#: vehicle length (m); PATH test vehicles were full-size sedans
VEHICLE_LENGTH = 4.5
#: nominal automated-highway cruise speed (m/s), ≈ 105 km/h
HIGHWAY_SPEED = 29.0


@dataclass
class VehicleState:
    """Longitudinal + lane state of one vehicle.

    ``position`` is the longitudinal coordinate of the front bumper along
    the highway (m); ``lane`` is an integer index (the paper's two-lane
    setting uses 1 and 2, with 0 as the exit/shoulder).
    """

    position: float = 0.0
    speed: float = HIGHWAY_SPEED
    acceleration: float = 0.0
    lane: int = 1
    #: maximum acceleration the drivetrain can deliver (m/s²)
    max_acceleration: float = 2.5
    #: maximum service braking (m/s², positive number)
    max_braking: float = 4.0
    #: maximum emergency braking (m/s², positive number)
    emergency_braking: float = 8.0

    def gap_to(self, ahead: "VehicleState") -> float:
        """Bumper-to-bumper gap to the vehicle ahead (m)."""
        return ahead.position - self.position - VEHICLE_LENGTH

    @property
    def stopped(self) -> bool:
        """True once the vehicle is (numerically) at rest."""
        return self.speed <= 1e-9


def integrate(state: VehicleState, command: float, dt: float) -> None:
    """Advance ``state`` by ``dt`` seconds under an acceleration command.

    The command is clipped to the drivetrain envelope; speed is clipped at
    zero (no reversing on the automated highway).
    """
    if dt <= 0.0:
        raise ValueError(f"dt must be > 0, got {dt}")
    command = max(-state.emergency_braking, min(command, state.max_acceleration))
    state.acceleration = command
    new_speed = state.speed + command * dt
    if new_speed < 0.0:
        # solve the exact stopping sub-step, then stay at rest
        if state.speed > 0.0 and command < 0.0:
            t_stop = state.speed / (-command)
            state.position += state.speed * t_stop + 0.5 * command * t_stop * t_stop
        state.speed = 0.0
        return
    state.position += state.speed * dt + 0.5 * command * dt * dt
    state.speed = new_speed
