"""Atomic platoon-formation maneuvers: split, merge, join.

Paper §2: "The main maneuvers consist in splitting a platoon, merging
platoons, or making a vehicle exit or enter the platoon."  The recovery
procedures of :mod:`~repro.agents.maneuver_exec` compose these; they are
also exposed directly for traffic-management scenarios (the Dynamicity
submodel's join/leave/change events, kinematically).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.controllers import GAP_INTER_PLATOON, GAP_INTRA_PLATOON
from repro.agents.highway import Highway
from repro.agents.kinematics import HIGHWAY_SPEED
from repro.agents.platoon import KinematicPlatoon
from repro.agents.vehicle_agent import ControlMode

__all__ = ["AtomicManeuvers", "FormationOutcome"]

#: catch-up overspeed while closing an inter-platoon gap (m/s)
_CATCH_UP = HIGHWAY_SPEED + 2.0


@dataclass
class FormationOutcome:
    """Result of an atomic formation maneuver."""

    kind: str
    duration: float
    platoon: str


class AtomicManeuvers:
    """Split / merge / join procedures over a :class:`Highway`."""

    def __init__(self, highway: Highway) -> None:
        self.highway = highway

    # ------------------------------------------------------------------
    def run(self, procedure) -> FormationOutcome:
        """Run one maneuver process to completion."""
        env = self.highway.env
        self.highway.start()
        process = env.process(procedure)
        return env.run(until=process)

    # ------------------------------------------------------------------
    def split(self, platoon_name: str, at_vehicle: str, new_name: str):
        """Split a platoon behind ``at_vehicle`` into a trailing platoon.

        The trailing platoon's new leader opens the inter-platoon gap
        (30–60 m, paper §2) by briefly slowing down.
        """
        highway = self.highway
        env = highway.env
        platoon = highway.platoons[platoon_name]
        start = env.now

        tail_ids = platoon.split_behind(at_vehicle)
        if not tail_ids:
            raise ValueError(
                f"{at_vehicle!r} is the tail of {platoon_name!r}; nothing to split"
            )
        if new_name in highway.platoons:
            raise ValueError(f"platoon {new_name!r} already exists")
        tail = KinematicPlatoon(new_name, platoon.lane, list(tail_ids))
        highway.platoons[new_name] = tail

        new_leader = highway.agents[tail_ids[0]]
        new_leader.mode = ControlMode.CRUISE
        new_leader.cruise.set_speed = HIGHWAY_SPEED - 2.0

        def gap_open() -> bool:
            front_tail = highway.agents[platoon.vehicle_ids[-1]]
            return (
                new_leader.state.gap_to(front_tail.state)
                >= GAP_INTER_PLATOON * 0.95
            )

        yield from highway.wait_until(gap_open)
        new_leader.cruise.set_speed = HIGHWAY_SPEED
        yield from highway.wait_until(
            lambda: abs(new_leader.state.speed - HIGHWAY_SPEED) < 0.3
        )
        return FormationOutcome("split", env.now - start, new_name)

    def merge(self, front_name: str, back_name: str):
        """Merge the ``back`` platoon into the tail of ``front``.

        The back platoon's leader closes the inter-platoon gap at a small
        overspeed, then every member re-targets the intra-platoon gap and
        the containers are unified (the back leader stops leading —
        paper §2.2.2: the leader is the platoon's representative, so the
        merged platoon keeps the front leader).
        """
        highway = self.highway
        env = highway.env
        front = highway.platoons[front_name]
        back = highway.platoons[back_name]
        if not front.vehicle_ids or not back.vehicle_ids:
            raise ValueError("cannot merge empty platoons")
        start = env.now

        back_leader = highway.agents[back.vehicle_ids[0]]
        back_leader.mode = ControlMode.CRUISE
        back_leader.cruise.set_speed = _CATCH_UP

        def close_enough() -> bool:
            front_tail = highway.agents[front.vehicle_ids[-1]]
            return back_leader.state.gap_to(front_tail.state) <= 1.5 * GAP_INTRA_PLATOON

        yield from highway.wait_until(close_enough, timeout=600.0)

        # unify containers: back members join the front platoon's tail
        members = list(back.vehicle_ids)
        back.vehicle_ids.clear()
        del highway.platoons[back_name]
        for vehicle_id in members:
            front.append(vehicle_id)
            highway.agents[vehicle_id].mode = ControlMode.FOLLOW
            highway.agents[vehicle_id].gap_target = GAP_INTRA_PLATOON

        def formed() -> bool:
            agents = highway.agents
            for ahead, behind in zip(front.vehicle_ids, front.vehicle_ids[1:]):
                gap = agents[behind].state.gap_to(agents[ahead].state)
                if not 0.0 <= gap <= 1.6 * GAP_INTRA_PLATOON:
                    return False
            return all(
                abs(agents[v].state.speed - HIGHWAY_SPEED) < 0.4
                for v in front.vehicle_ids
            )

        yield from highway.wait_until(formed, timeout=600.0)
        return FormationOutcome("merge", env.now - start, front_name)

    def join(self, vehicle_id: str, platoon_name: str):
        """A free agent joins the tail of a platoon (paper: last position)."""
        highway = self.highway
        env = highway.env
        platoon = highway.platoons[platoon_name]
        if highway.platoon_of(vehicle_id) is not None:
            raise ValueError(f"{vehicle_id!r} is already platooned")
        start = env.now

        agent = highway.agents[vehicle_id]
        agent.state.lane = platoon.lane
        agent.mode = ControlMode.CRUISE
        tail_agent = highway.agents[platoon.vehicle_ids[-1]]
        behind = agent.state.position < tail_agent.state.position
        agent.cruise.set_speed = _CATCH_UP if behind else HIGHWAY_SPEED - 2.0

        def in_slot() -> bool:
            gap = agent.state.gap_to(tail_agent.state)
            return 0.0 < gap <= 2.0 * GAP_INTRA_PLATOON

        yield from highway.wait_until(in_slot, timeout=600.0)
        platoon.append(vehicle_id)
        agent.mode = ControlMode.FOLLOW
        agent.gap_target = GAP_INTRA_PLATOON
        yield from highway.wait_until(
            lambda: abs(agent.state.speed - HIGHWAY_SPEED) < 0.4
            and 0.0 < agent.state.gap_to(tail_agent.state) <= 1.6 * GAP_INTRA_PLATOON
        )
        return FormationOutcome("join", env.now - start, platoon_name)
