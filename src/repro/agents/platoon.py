"""Platoon membership and geometry for the kinematic substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.agents.controllers import GAP_INTRA_PLATOON
from repro.agents.kinematics import VEHICLE_LENGTH, VehicleState

__all__ = ["KinematicPlatoon"]


@dataclass
class KinematicPlatoon:
    """An ordered platoon of vehicle ids, leader first.

    The container tracks ordering only; vehicle states live with their
    :class:`~repro.agents.vehicle_agent.VehicleAgent`.
    """

    name: str
    lane: int
    vehicle_ids: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def leader_id(self) -> Optional[str]:
        """Id of the platoon leader (None for an empty platoon)."""
        return self.vehicle_ids[0] if self.vehicle_ids else None

    @property
    def size(self) -> int:
        """Number of member vehicles."""
        return len(self.vehicle_ids)

    def is_free_agent(self) -> bool:
        """A platoon of exactly one vehicle is a free agent (paper §2)."""
        return self.size == 1

    def position_of(self, vehicle_id: str) -> int:
        """Index of a member (0 = leader)."""
        try:
            return self.vehicle_ids.index(vehicle_id)
        except ValueError:
            raise KeyError(f"{vehicle_id!r} is not in platoon {self.name!r}")

    def predecessor_of(self, vehicle_id: str) -> Optional[str]:
        """The member immediately ahead (None for the leader)."""
        index = self.position_of(vehicle_id)
        return self.vehicle_ids[index - 1] if index > 0 else None

    def successor_of(self, vehicle_id: str) -> Optional[str]:
        """The member immediately behind (None for the tail)."""
        index = self.position_of(vehicle_id)
        if index + 1 < len(self.vehicle_ids):
            return self.vehicle_ids[index + 1]
        return None

    # ------------------------------------------------------------------
    def append(self, vehicle_id: str) -> None:
        """Add a vehicle at the tail (paper: joiners take the last position)."""
        if vehicle_id in self.vehicle_ids:
            raise ValueError(f"{vehicle_id!r} already in platoon {self.name!r}")
        self.vehicle_ids.append(vehicle_id)

    def remove(self, vehicle_id: str) -> None:
        """Remove a member (leadership passes to the next vehicle)."""
        self.position_of(vehicle_id)  # raises if absent
        self.vehicle_ids.remove(vehicle_id)

    def split_behind(self, vehicle_id: str) -> list[str]:
        """Detach and return every member behind ``vehicle_id``."""
        index = self.position_of(vehicle_id)
        tail = self.vehicle_ids[index + 1 :]
        del self.vehicle_ids[index + 1 :]
        return tail

    # ------------------------------------------------------------------
    @staticmethod
    def slot_position(leader: VehicleState, index: int) -> float:
        """Nominal front-bumper position of the member at ``index``."""
        pitch = VEHICLE_LENGTH + GAP_INTRA_PLATOON
        return leader.position - index * pitch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KinematicPlatoon({self.name!r}, lane={self.lane}, "
            f"members={self.vehicle_ids})"
        )
