"""Longitudinal control laws for platooned vehicles.

The PATH architecture combines a cruise controller for leaders with a
constant-spacing follower law fed by the magnetic positioning equipment
and V2V state broadcasts.  The follower law here is the classic
PD-with-feedforward spacing controller: it is string-stable for the gains
chosen (tested in tests/agents) and holds the paper's 1–3 m intra-platoon
spacing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.kinematics import VehicleState

__all__ = [
    "GAP_INTRA_PLATOON",
    "GAP_INTER_PLATOON",
    "LeaderCruiseController",
    "ConstantSpacingController",
    "BrakeToStopController",
]

#: target intra-platoon gap (m); the paper quotes 1–3 m
GAP_INTRA_PLATOON = 2.0
#: target inter-platoon separation (m); the paper quotes 30–60 m
GAP_INTER_PLATOON = 45.0


@dataclass
class LeaderCruiseController:
    """Holds a set speed (platoon leader / free agent)."""

    set_speed: float
    gain: float = 0.6

    def command(self, me: VehicleState) -> float:
        """Acceleration command tracking the set speed."""
        return self.gain * (self.set_speed - me.speed)


@dataclass
class ConstantSpacingController:
    """PD constant-spacing follower with predecessor-acceleration feedforward.

    ``u = ka·a_pred + kv·(v_pred − v) + kp·(gap − gap_target)``
    """

    gap_target: float = GAP_INTRA_PLATOON
    kp: float = 0.45
    kv: float = 1.1
    ka: float = 0.35

    def command(self, me: VehicleState, predecessor: VehicleState) -> float:
        """Acceleration command tracking the predecessor at the target gap."""
        gap_error = me.gap_to(predecessor) - self.gap_target
        return (
            self.ka * predecessor.acceleration
            + self.kv * (predecessor.speed - me.speed)
            + self.kp * gap_error
        )


@dataclass
class BrakeToStopController:
    """Open-loop braking at a fixed deceleration until standstill.

    ``deceleration`` is positive; gentle stops use the service braking
    envelope (~2 m/s²), crash stops the emergency envelope (~8 m/s²).
    """

    deceleration: float

    def __post_init__(self) -> None:
        if self.deceleration <= 0.0:
            raise ValueError(
                f"deceleration must be > 0, got {self.deceleration}"
            )

    def command(self, me: VehicleState) -> float:
        """Braking command (zero once stopped)."""
        return -self.deceleration if not me.stopped else 0.0
