"""Traffic workload generation and long-run highway scenarios.

The paper motivates AHS by traffic-flow improvement; this module provides
the workload side: a time-varying demand profile (rush-hour shaped,
generated as a non-homogeneous Poisson process by thinning) and a
long-run scenario runner in which arriving free agents join platoons,
platoon members leave for their exits, and the platoon occupancy
trajectory is recorded — the kinematic counterpart of the paper's
Dynamicity submodel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.agents.atomic import AtomicManeuvers
from repro.agents.controllers import GAP_INTER_PLATOON, GAP_INTRA_PLATOON
from repro.agents.highway import Highway
from repro.agents.kinematics import HIGHWAY_SPEED, VEHICLE_LENGTH, VehicleState
from repro.agents.vehicle_agent import ControlMode, VehicleAgent
from repro.des import Environment, TimeSeries
from repro.stochastic import RandomStream, StreamFactory, thinning_nhpp

__all__ = ["DemandProfile", "TrafficScenario", "ScenarioReport"]


@dataclass(frozen=True)
class DemandProfile:
    """A time-varying highway entry demand λ(t), in vehicles per hour.

    The default shape is a base flow plus a rush-hour Gaussian bump —
    the profile used by the traffic-flow studies the paper cites.
    """

    base_rate: float = 60.0
    peak_rate: float = 240.0
    peak_time_hours: float = 1.0
    peak_width_hours: float = 0.5

    def __post_init__(self) -> None:
        if self.base_rate < 0 or self.peak_rate < self.base_rate:
            raise ValueError("need 0 <= base_rate <= peak_rate")
        if self.peak_width_hours <= 0:
            raise ValueError("peak_width_hours must be > 0")

    def rate_at(self, hours: float) -> float:
        """Instantaneous demand (vehicles/hour) at time ``hours``."""
        bump = math.exp(
            -0.5 * ((hours - self.peak_time_hours) / self.peak_width_hours) ** 2
        )
        return self.base_rate + (self.peak_rate - self.base_rate) * bump

    def arrival_times(
        self, stream: RandomStream, duration_hours: float
    ) -> list[float]:
        """Arrival instants (hours) over the scenario, by NHPP thinning."""
        return thinning_nhpp(
            stream, self.rate_at, self.peak_rate, duration_hours
        )


@dataclass
class ScenarioReport:
    """Outcome of a long-run traffic scenario."""

    duration_hours: float
    arrivals: int
    joins_completed: int
    departures: int
    occupancy: TimeSeries
    #: final platoon sizes by name
    final_sizes: dict[str, int] = field(default_factory=dict)

    @property
    def mean_occupancy(self) -> float:
        """Time-average number of platooned vehicles."""
        return self.occupancy.time_average()


class TrafficScenario:
    """A long-run two-platoon highway under a demand profile.

    Arriving vehicles enter as free agents behind the tail platoon and
    execute the kinematic ``join``; platoon members depart at the leave
    rate.  Capacity follows the paper: platoons refuse joiners beyond
    ``max_platoon_size``.
    """

    def __init__(
        self,
        demand: DemandProfile,
        max_platoon_size: int = 10,
        leave_rate_per_hour: float = 4.0,
        seed: Optional[int] = None,
    ) -> None:
        if max_platoon_size < 1:
            raise ValueError("max_platoon_size must be >= 1")
        if leave_rate_per_hour < 0:
            raise ValueError("leave_rate_per_hour must be >= 0")
        self.demand = demand
        self.max_platoon_size = max_platoon_size
        self.leave_rate = leave_rate_per_hour
        self.factory = StreamFactory(seed)

    # ------------------------------------------------------------------
    def run(self, duration_hours: float) -> ScenarioReport:
        """Simulate ``duration_hours`` of traffic and report."""
        if duration_hours <= 0:
            raise ValueError("duration_hours must be > 0")
        stream = self.factory.stream("scenario")
        env = Environment()
        highway = Highway(env, stream)
        initial = max(self.max_platoon_size // 2, 1)
        highway.add_platoon("p1", lane=2, size=initial, head_position=0.0)
        highway.add_platoon(
            "p2",
            lane=2,
            size=initial,
            head_position=-(
                initial * (VEHICLE_LENGTH + GAP_INTRA_PLATOON)
            )
            - GAP_INTER_PLATOON,
        )
        highway.start()
        atomic = AtomicManeuvers(highway)
        occupancy = TimeSeries("platooned-vehicles")
        counters = {"arrivals": 0, "joins": 0, "departures": 0}

        def record() -> None:
            total = sum(p.size for p in highway.platoons.values())
            occupancy.record(env.now, total)

        record()

        def occupancy_sampler():
            while True:
                yield env.timeout(30.0)
                record()

        def departures():
            # per-platoon leave process at the configured rate
            while True:
                if self.leave_rate <= 0:
                    return
                yield env.timeout(stream.exponential(self.leave_rate / 3600.0))
                candidates = [
                    p for p in highway.platoons.values() if p.size > 1
                ]
                if not candidates:
                    continue
                platoon = candidates[stream.integers(0, len(candidates))]
                vehicle_id = platoon.vehicle_ids[-1]  # tail leaves
                platoon.remove(vehicle_id)
                agent = highway.agents[vehicle_id]
                agent.mode = ControlMode.INACTIVE
                agent.state.lane = 0
                counters["departures"] += 1
                record()

        pending_joins: dict[str, int] = {}

        def arrival(vehicle_id: str):
            counters["arrivals"] += 1
            # pick the platoon with space (counting in-flight joiners)
            candidates = sorted(
                (
                    p
                    for p in highway.platoons.values()
                    if p.size + pending_joins.get(p.name, 0)
                    < self.max_platoon_size
                    and p.size > 0
                ),
                key=lambda p: p.size,
            )
            if not candidates:
                return  # refused: highway at capacity
            platoon = candidates[0]
            pending_joins[platoon.name] = pending_joins.get(platoon.name, 0) + 1
            tail = highway.agents[platoon.vehicle_ids[-1]]
            agent = VehicleAgent(
                vehicle_id,
                VehicleState(
                    position=tail.state.position - 80.0,
                    speed=HIGHWAY_SPEED,
                    lane=platoon.lane,
                ),
                mode=ControlMode.CRUISE,
            )
            highway.agents[vehicle_id] = agent
            highway.bus.register(vehicle_id)
            try:
                yield from atomic.join(vehicle_id, platoon.name)
            except TimeoutError:
                agent.mode = ControlMode.INACTIVE
                return
            finally:
                pending_joins[platoon.name] -= 1
            counters["joins"] += 1
            record()

        env.process(occupancy_sampler())
        env.process(departures())
        arrival_stream = self.factory.stream("arrivals")
        for index, hours in enumerate(
            self.demand.arrival_times(arrival_stream, duration_hours)
        ):
            def spawn(vehicle_id=f"arr{index}", delay=hours * 3600.0):
                yield env.timeout(delay)
                yield env.process(arrival(vehicle_id))

            env.process(spawn())

        env.run(until=duration_hours * 3600.0)
        record()
        return ScenarioReport(
            duration_hours=duration_hours,
            arrivals=counters["arrivals"],
            joins_completed=counters["joins"],
            departures=counters["departures"],
            occupancy=occupancy,
            final_sizes={
                name: platoon.size
                for name, platoon in highway.platoons.items()
            },
        )
