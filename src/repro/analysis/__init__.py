"""Static analysis of SAN models before compilation and simulation.

``repro.analysis`` checks a model the way the engines will *use* it:

* :mod:`~repro.analysis.footprint` — gate predicates / rates / case
  probabilities must be pure functions of their declared place bindings
  (the compiled engine's incremental propensity maintenance depends on
  it);
* :mod:`~repro.analysis.determinism` — gate code must not reach
  nondeterministic modules, hash-ordered iteration, or captured mutable
  state (bit-identical replay across engines and worker counts);
* :mod:`~repro.analysis.structural` — P-invariants, disconnected
  places, never-enabled activities, instantaneous-activity cycles;
* :mod:`~repro.analysis.vectorize` — which activities the batched
  engine lowers to column kernels and why the rest fall back;
* :mod:`~repro.analysis.lowering` — the static lowering verifier:
  extracts the typed kernel IR of the batched/stepped compile and
  verifies it by abstract interpretation over the reachable envelope
  (value ranges, NaN-sentinel collisions, table-span bounds, case
  normalization, AST/lowered footprint parity), plus the
  tensor-eligibility predictor for cross-point sweeps.

Run everything with :func:`analyze_model`, or from the command line with
``repro-cli lint``.  Rule catalog and JSON schema:
``docs/static_analysis.md``.
"""

from repro.analysis.determinism import check_determinism
from repro.analysis.diagnostics import (
    RULES,
    AnalysisReport,
    Diagnostic,
    Rule,
    Severity,
)
from repro.analysis.footprint import check_footprints
from repro.analysis.lowering import (
    TENSOR_FALLBACK_RULE,
    KernelIR,
    check_lowering,
    check_tensor,
    extract_kernel_ir,
)
from repro.analysis.probe import CodeFacts, code_facts, explore, fire_deltas
from repro.analysis.runner import FAMILIES, analyze_model
from repro.analysis.structural import check_structure
from repro.analysis.vectorize import check_vectorization, lowering_summary

__all__ = [
    "AnalysisReport",
    "CodeFacts",
    "Diagnostic",
    "FAMILIES",
    "KernelIR",
    "RULES",
    "Rule",
    "Severity",
    "TENSOR_FALLBACK_RULE",
    "analyze_model",
    "check_determinism",
    "check_footprints",
    "check_lowering",
    "check_structure",
    "check_tensor",
    "check_vectorization",
    "code_facts",
    "explore",
    "extract_kernel_ir",
    "fire_deltas",
    "lowering_summary",
]
