"""Vectorization report (rules VEC001-VEC003).

Runs the batched engine's compile pass in diagnose mode (nothing is
simulated) and reports which timed activities lowered to fused NumPy
column kernels and which fell back to per-row compiled closures — with
the recorded ``_CannotLower`` reason, so a perf cliff shows up in lint
output instead of silently costing a batch-size worth of throughput.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.san.model import SANModel

__all__ = ["check_vectorization", "lowering_summary"]

#: Rep replica suffix ("leave1[7]" -> "leave1") for deduplication
_REPLICA_SUFFIX = re.compile(r"\[\d+\]$")

#: warn when at least this fraction of timed activities falls back
_FALLBACK_WARN_FRACTION = 0.5


def lowering_summary(model: SANModel) -> Optional[dict]:
    """``{stats, reasons}`` from a diagnose-mode stepped compile.

    The stepped engine subsumes the batched compile pass, so its stats
    carry the batched lowering coverage plus the stepped-only figures:
    ``fire_cases``/``fire_lowered`` (delta-program firing coverage),
    ``insta_lowered`` (instantaneous gate conjunctions) and
    ``groups_tabulated`` (refresh groups served by direct-address
    tables).  Returns None when the model cannot go through the batch
    compile pass at all (non-exponential activities, or NumPy missing).
    """
    try:
        from repro.san.stepped import SteppedJumpEngine
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return None
    if not model.timed_activities or not model.is_markovian:
        return None
    engine = SteppedJumpEngine(model, diagnose=True)
    return {
        "stats": engine.lowering_stats(),
        "reasons": dict(engine.fallback_reasons),
    }


def check_vectorization(model: SANModel) -> Iterator[Diagnostic]:
    """Run VEC001-VEC003 via a diagnose-mode batched compile."""
    summary = lowering_summary(model)
    if summary is None:
        reason = (
            "no timed activities"
            if not model.timed_activities
            else "non-exponential timed activities"
        )
        yield Diagnostic(
            "VEC003",
            f"batched engine not applicable ({reason}); "
            f"vectorization report skipped",
        )
        return
    stats = summary["stats"]
    reasons: dict[str, str] = summary["reasons"]
    # Replicas of one submodel activity share gate code and therefore a
    # fallback reason: fold them into one diagnostic with a count.
    grouped: dict[tuple[str, str], int] = {}
    for name, reason in sorted(reasons.items()):
        base = _REPLICA_SUFFIX.sub("", name)
        grouped[(base, reason)] = grouped.get((base, reason), 0) + 1
    for (base, reason), count in grouped.items():
        yield Diagnostic(
            "VEC001",
            f"falls back to the scalar per-row path: {reason}",
            activity=base,
            count=count,
        )
    timed = stats.get("timed_activities", 0)
    fallback = stats.get("fallback", 0)
    if timed > 0 and fallback / timed >= _FALLBACK_WARN_FRACTION:
        yield Diagnostic(
            "VEC002",
            f"{fallback}/{timed} timed activities are not vectorized; "
            f"the batched engine will run mostly on the per-row "
            f"fallback, forfeiting its throughput advantage",
        )
