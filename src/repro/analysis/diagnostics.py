"""Diagnostics: severities, stable rule IDs, reports, JSON output.

Every analyzer in :mod:`repro.analysis` emits :class:`Diagnostic` records
tagged with a rule from the :data:`RULES` catalog.  A rule ID is stable
across releases (tests and CI gates key on it); the human-readable
message is not.  Reports aggregate diagnostics per model, deduplicate
replica-identical findings (the composed AHS model stamps the same gate
code across ``2n`` One_vehicle replicas), and serialise to the JSON
schema documented in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

#: Rep replica suffix ("configure[7]" -> "configure")
_REPLICA_SUFFIX = re.compile(r"\[\d+\]$")


def _base_name(name: Optional[str]) -> Optional[str]:
    """Strip the Rep replica suffix so replica findings fold together."""
    if name is None:
        return None
    return _REPLICA_SUFFIX.sub("", name)

__all__ = [
    "Severity",
    "Rule",
    "RULES",
    "Diagnostic",
    "AnalysisReport",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; higher values are more severe."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse ``"error"``/``"warning"``/``"info"`` (case-insensitive)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One catalogued check: stable ID, family, default severity, title."""

    rule_id: str
    family: str
    severity: Severity
    title: str


#: the rule catalog (see docs/static_analysis.md for the prose version)
RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rule in [
        # -- footprint verification ------------------------------------
        Rule("FP001", "footprint", Severity.ERROR,
             "side-effecting enabling predicate, rate, or case probability"),
        Rule("FP002", "footprint", Severity.ERROR,
             "gate code uses a local place name missing from its binding"),
        Rule("FP003", "footprint", Severity.INFO,
             "gate binding declares a place the gate code never touches"),
        Rule("FP004", "footprint", Severity.INFO,
             "gate code could not be statically analyzed"),
        # -- determinism lints -----------------------------------------
        Rule("DT001", "determinism", Severity.ERROR,
             "gate code reaches a nondeterministic module"),
        Rule("DT002", "determinism", Severity.WARNING,
             "gate code iterates over a set (hash-order dependent)"),
        Rule("DT003", "determinism", Severity.WARNING,
             "gate code captures a mutable global or closure object"),
        # -- structural analyses ---------------------------------------
        Rule("ST001", "structural", Severity.WARNING,
             "place is connected to no activity"),
        Rule("ST002", "structural", Severity.ERROR,
             "activity can never become enabled"),
        Rule("ST003", "structural", Severity.WARNING,
             "potential instantaneous-activity cycle"),
        Rule("ST004", "structural", Severity.INFO,
             "P-invariant (conserved weighted token sum)"),
        Rule("ST005", "structural", Severity.INFO,
             "structural-analysis coverage note"),
        # -- vectorization report --------------------------------------
        Rule("VEC001", "vectorization", Severity.INFO,
             "activity falls back to the scalar per-row path"),
        Rule("VEC002", "vectorization", Severity.WARNING,
             "most timed activities are not vectorized"),
        Rule("VEC003", "vectorization", Severity.INFO,
             "vectorization report not applicable to this model"),
        # -- lowering verifier (abstract interpretation of kernel IR) --
        Rule("LW001", "lowering", Severity.WARNING,
             "rate can evaluate to NaN, colliding with the rate-table "
             "miss sentinel"),
        Rule("LW002", "lowering", Severity.ERROR,
             "lowered rate tree evaluates negative at a reachable marking"),
        Rule("LW003", "lowering", Severity.WARNING,
             "direct-address table span exceeds the 2^20 cap"),
        Rule("LW004", "lowering", Severity.ERROR,
             "case probabilities do not normalise at a reachable marking"),
        Rule("LW005", "lowering", Severity.ERROR,
             "lowered kernel footprint diverges from the AST-derived "
             "footprint"),
        Rule("LW006", "lowering", Severity.INFO,
             "dtype propagation finding in a lowered tree"),
        Rule("LW007", "lowering", Severity.INFO,
             "lowering-verifier coverage note"),
        # -- tensor-eligibility predictor ------------------------------
        Rule("TZ001", "tensor", Severity.WARNING,
             "cross-point tensorization unavailable; sweeps fall back "
             "to per-point execution"),
        Rule("TZ002", "tensor", Severity.INFO,
             "per-row fallback work limits tensor-step throughput"),
        Rule("TZ003", "tensor", Severity.INFO,
             "tensor-eligibility report not applicable to this model"),
    ]
}


@dataclass
class Diagnostic:
    """One finding of one rule against one model element.

    ``location`` is a ``"path/to/file.py:lineno"`` string pointing at the
    gate/rate function's definition when one is involved, else ``None``.
    ``count`` aggregates replica-identical findings (see
    :meth:`AnalysisReport.add`).
    """

    rule_id: str
    message: str
    severity: Severity = field(default=None)  # type: ignore[assignment]
    model: str = ""
    activity: Optional[str] = None
    gate: Optional[str] = None
    place: Optional[str] = None
    location: Optional[str] = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.rule_id not in RULES:
            raise ValueError(f"unknown rule id {self.rule_id!r}")
        if self.severity is None:
            self.severity = RULES[self.rule_id].severity

    def dedup_key(self) -> tuple:
        """Replica-identical findings share this key.

        Activity and gate names are compared with their ``[i]`` replica
        suffix stripped, so the same finding against each of the ``2n``
        One_vehicle replicas collapses into one record.
        """
        return (
            self.rule_id,
            self.severity,
            self.message,
            _base_name(self.activity),
            _base_name(self.gate),
            self.place,
            self.location,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable record (schema in docs/static_analysis.md)."""
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "family": RULES[self.rule_id].family,
            "message": self.message,
            "model": self.model,
            "activity": self.activity,
            "gate": self.gate,
            "place": self.place,
            "location": self.location,
            "count": self.count,
        }

    def format(self) -> str:
        """One-line rendering for terminal output."""
        subject = self.activity or self.place or self.gate or "-"
        times = f" (x{self.count})" if self.count > 1 else ""
        where = f"  [{self.location}]" if self.location else ""
        return (
            f"{str(self.severity):7s} {self.rule_id}  {subject}: "
            f"{self.message}{times}{where}"
        )


class AnalysisReport:
    """All diagnostics of one analysis run over one model."""

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name
        self.diagnostics: list[Diagnostic] = []
        #: free-form analyzer statistics (places, contexts explored, ...)
        self.stats: dict[str, Any] = {}
        self._dedup: dict[tuple, Diagnostic] = {}

    # ------------------------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        """Record a diagnostic, folding replica-identical duplicates.

        Two findings with the same :meth:`~Diagnostic.dedup_key` (same
        rule, message, gate, place and source location — only the
        activity name differs, as it does across Rep replicas) are
        merged into one record with an incremented ``count``.
        """
        diagnostic.model = diagnostic.model or self.model_name
        key = diagnostic.dedup_key()
        existing = self._dedup.get(key)
        if existing is not None:
            existing.count += diagnostic.count
            # Display the replica-free base name once findings merge.
            existing.activity = _base_name(existing.activity)
            existing.gate = _base_name(existing.gate)
            return
        self._dedup[key] = diagnostic
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Record several diagnostics (with deduplication)."""
        for diagnostic in diagnostics:
            self.add(diagnostic)

    # ------------------------------------------------------------------
    def count(self, severity: Severity) -> int:
        """Number of (deduplicated) diagnostics at exactly ``severity``."""
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        """Diagnostics at or above ``severity``."""
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def max_severity(self) -> Optional[Severity]:
        """The worst severity present, or ``None`` for a clean report."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics most-severe first, then by rule and subject."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                -d.severity,
                d.rule_id,
                d.activity or "",
                d.place or "",
            ),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable report."""
        return {
            "model": self.model_name,
            "summary": {
                "errors": self.count(Severity.ERROR),
                "warnings": self.count(Severity.WARNING),
                "infos": self.count(Severity.INFO),
            },
            "stats": self.stats,
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    def format_text(self, max_rows: Optional[int] = None) -> str:
        """Terminal rendering: header, diagnostics, summary footer."""
        lines = [f"model {self.model_name!r}:"]
        rows = self.sorted()
        shown = rows if max_rows is None else rows[:max_rows]
        for diagnostic in shown:
            lines.append("  " + diagnostic.format())
        omitted = len(rows) - len(shown)
        if omitted > 0:
            lines.append(f"  ... and {omitted} more diagnostics")
        lines.append(
            f"  {self.count(Severity.ERROR)} errors, "
            f"{self.count(Severity.WARNING)} warnings, "
            f"{self.count(Severity.INFO)} infos"
        )
        return "\n".join(lines)
