"""Entry point tying the analyzer families together."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.determinism import check_determinism
from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.footprint import check_footprints
from repro.analysis.lowering import check_lowering, check_tensor
from repro.analysis.probe import explore
from repro.analysis.structural import check_structure
from repro.analysis.vectorize import check_vectorization
from repro.san.model import SANModel

__all__ = ["FAMILIES", "analyze_model"]

#: analyzer families in run order
FAMILIES = (
    "footprint",
    "determinism",
    "structural",
    "vectorization",
    "lowering",
    "tensor",
)

#: dry-run purity probing uses at most this many explored markings
_MAX_PROBE_MARKINGS = 32


def analyze_model(
    model: SANModel,
    families: Optional[Iterable[str]] = None,
    max_states: int = 256,
) -> AnalysisReport:
    """Run the selected analyzer ``families`` over ``model``.

    ``max_states`` caps the bounded reachability sweep feeding the
    dry-run purity probes and the incidence sampling; larger values
    establish more (activity, case) deltas at cubically growing cost.
    """
    selected = set(FAMILIES if families is None else families)
    unknown = selected - set(FAMILIES)
    if unknown:
        raise ValueError(
            f"unknown analyzer families {sorted(unknown)}; "
            f"choose from {list(FAMILIES)}"
        )
    report = AnalysisReport(model.name)
    markings, complete = explore(model, max_states=max_states)
    report.stats = {
        **model.stats(),
        "explored_markings": len(markings),
        "exploration_complete": complete,
        "families": sorted(selected),
    }
    if "footprint" in selected:
        report.extend(check_footprints(model, markings[:_MAX_PROBE_MARKINGS]))
    if "determinism" in selected:
        report.extend(check_determinism(model))
    if "structural" in selected:
        report.extend(check_structure(model, markings, complete))
    if "vectorization" in selected:
        report.extend(check_vectorization(model))
    if "lowering" in selected:
        report.extend(check_lowering(model, markings, complete))
    if "tensor" in selected:
        report.extend(check_tensor(model))
    return report
