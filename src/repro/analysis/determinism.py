"""Determinism lints (rules DT001-DT003).

Every engine (interpreted, compiled, batched) and every worker count must
produce bit-identical trajectories from the same seed.  Gate code that
consults wall-clock time, the process environment, or an unseeded RNG
breaks that immediately (DT001); iterating over a set makes behaviour
depend on ``PYTHONHASHSEED`` (DT002); and a captured mutable object
shared between replicas or across replications is state the simulator
does not snapshot or restore (DT003).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.probe import code_facts, source_location
from repro.san.marking import MarkingFunction
from repro.san.model import SANModel

__all__ = ["check_determinism"]


def _gate_functions(activity: Any) -> Iterator[tuple[str, str, Any]]:
    for gate in activity.input_gates:
        yield "enabling predicate", gate.name, gate.predicate
        if gate.function is not None:
            yield "input function", gate.name, gate.function
    rate = getattr(activity, "rate", None)
    if isinstance(rate, MarkingFunction):
        yield "rate", activity.name, rate.fn
    for index, case in enumerate(activity.cases):
        if isinstance(case.probability, MarkingFunction):
            yield f"case[{index}] probability", activity.name, case.probability.fn
        for gate in case.output_gates:
            yield f"case[{index}] output function", gate.name, gate.function


def check_determinism(model: SANModel) -> Iterator[Diagnostic]:
    """Run DT001-DT003 over every gate function of every activity."""
    for activity in model.activities:
        seen: set[int] = set()
        for role, gate_name, fn in _gate_functions(activity):
            if id(fn) in seen:
                continue
            seen.add(id(fn))
            facts = code_facts(fn)
            if not facts.analyzable:
                continue  # FP004 already reports unanalyzable code
            location = source_location(fn)
            if facts.nondet_modules:
                modules = ", ".join(sorted(facts.nondet_modules))
                yield Diagnostic(
                    "DT001",
                    f"{role} reaches nondeterministic module(s) {modules}; "
                    f"gate code must depend only on the marking, or replay "
                    f"across engines and worker counts diverges",
                    activity=activity.name,
                    gate=gate_name,
                    location=location,
                )
            if facts.set_iteration:
                yield Diagnostic(
                    "DT002",
                    f"{role} iterates over a set; iteration order depends "
                    f"on PYTHONHASHSEED, so runs are not reproducible "
                    f"across processes",
                    activity=activity.name,
                    gate=gate_name,
                    location=location,
                )
            if facts.mutable_captures:
                names = ", ".join(sorted(facts.mutable_captures))
                yield Diagnostic(
                    "DT003",
                    f"{role} captures mutable object(s) {names} from its "
                    f"closure or module globals; mutations there are "
                    f"invisible to the marking and are not restored "
                    f"between replications",
                    activity=activity.name,
                    gate=gate_name,
                    location=location,
                )
