"""Footprint verification (rules FP001-FP004).

The compiled engine's incremental propensity maintenance re-evaluates an
activity only when a fired transition wrote one of the places the
activity *declared* (its gate bindings).  Two silent-breakage modes:

* a predicate / rate / case probability with a **side effect** — the
  interpreted engine re-evaluates every predicate after every jump, the
  compiled engine only the affected ones, so the side effects happen a
  different number of times and the engines diverge (FP001);
* gate code addressing a local place name **missing from its binding** —
  a latent ``KeyError`` on whichever path uses the name (FP002).

Verification is two-pronged: the AST facts give path-insensitive
coverage (names used on *any* path), and a concrete dry-run evaluation
over sample markings catches writes the static pass could not see.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.probe import CodeFacts, code_facts, source_location
from repro.san.marking import Marking, MarkingFunction
from repro.san.model import SANModel

__all__ = ["check_footprints"]

#: cap on place names spelled out in one diagnostic message
_NAME_CAP = 5


def _names(names: set[str]) -> str:
    shown = sorted(names)[:_NAME_CAP]
    extra = len(names) - len(shown)
    text = ", ".join(repr(n) for n in shown)
    return f"{text} (+{extra} more)" if extra > 0 else text


def _gate_functions(
    activity: Any,
) -> Iterator[tuple[str, str, dict, Any, bool]]:
    """Yield ``(role, gate_name, binding, fn, must_be_pure)`` per function."""
    for gate in activity.input_gates:
        yield "enabling predicate", gate.name, gate.binding, gate.predicate, True
        if gate.function is not None:
            yield "input function", gate.name, gate.binding, gate.function, False
    rate = getattr(activity, "rate", None)
    if isinstance(rate, MarkingFunction):
        yield "rate", activity.name, rate.binding, rate.fn, True
    for index, case in enumerate(activity.cases):
        if isinstance(case.probability, MarkingFunction):
            yield (
                f"case[{index}] probability",
                activity.name,
                case.probability.binding,
                case.probability.fn,
                True,
            )
        for gate in case.output_gates:
            yield (
                f"case[{index}] output function",
                gate.name,
                gate.binding,
                gate.function,
                False,
            )


def _dry_run_writes(
    activity: Any, markings: list[Marking]
) -> list[tuple[str, str]]:
    """``(role, gate_name)`` pairs whose evaluation wrote the marking."""
    offenders: list[tuple[str, str]] = []
    for marking in markings:
        scratch = marking.copy()
        scratch.clear_changed()
        for gate in activity.input_gates:
            try:
                gate.holds(scratch)
            except Exception:  # noqa: BLE001 - probing must not crash
                continue
            if scratch.clear_changed():
                offenders.append(("enabling predicate", gate.name))
        rate = getattr(activity, "rate", None)
        if isinstance(rate, MarkingFunction):
            try:
                rate(scratch)
            except Exception:  # noqa: BLE001
                pass
            if scratch.clear_changed():
                offenders.append(("rate", activity.name))
        for index, case in enumerate(activity.cases):
            if isinstance(case.probability, MarkingFunction):
                try:
                    case.probability(scratch)
                except Exception:  # noqa: BLE001
                    pass
                if scratch.clear_changed():
                    offenders.append(
                        (f"case[{index}] probability", activity.name)
                    )
    return offenders


def check_footprints(
    model: SANModel, markings: Optional[list[Marking]] = None
) -> Iterator[Diagnostic]:
    """Run FP001-FP004 over every gate function of every activity."""
    if markings is None:
        markings = [model.initial_marking()]
    for activity in model.activities:
        facts_of: dict[int, CodeFacts] = {}
        for role, gate_name, binding, fn, must_be_pure in _gate_functions(
            activity
        ):
            facts = facts_of.get(id(fn))
            if facts is None:
                facts = code_facts(fn)
                facts_of[id(fn)] = facts
            location = source_location(fn)
            if not facts.analyzable:
                yield Diagnostic(
                    "FP004",
                    f"{role} could not be statically analyzed "
                    f"({facts.unanalyzable}); footprint checks degraded to "
                    f"the declared binding",
                    activity=activity.name,
                    gate=gate_name,
                    location=location,
                )
                continue
            # FP001: statically visible writes in pure-only roles.  An
            # escaped view is only "purity unverifiable" (reported via
            # FP004), not proof of a write — the dry run decides those.
            if must_be_pure and facts.write_names:
                yield Diagnostic(
                    "FP001",
                    f"{role} writes place(s) {_names(facts.write_names)}; "
                    f"predicates, rates and probabilities must be pure "
                    f"functions of the marking or the compiled engine's "
                    f"incremental propensities silently diverge",
                    activity=activity.name,
                    gate=gate_name,
                    location=location,
                )
            if must_be_pure and facts.view_escapes:
                yield Diagnostic(
                    "FP004",
                    f"{role} passes its view to code the analyzer cannot "
                    f"follow; purity is only checked dynamically",
                    activity=activity.name,
                    gate=gate_name,
                    location=location,
                )
            # FP002: statically used names missing from the binding.
            undeclared = (facts.read_names | facts.write_names) - set(binding)
            if undeclared:
                yield Diagnostic(
                    "FP002",
                    f"{role} uses local place name(s) {_names(undeclared)} "
                    f"not declared in the gate binding; this raises "
                    f"KeyError on the first path that reaches them",
                    activity=activity.name,
                    gate=gate_name,
                    location=location,
                )
        # FP003: binding entries no function of the gate ever touches.
        # Only claimable when every function on the gate is fully static.
        gates = [
            (gate, [gate.predicate] + ([gate.function] if gate.function else []))
            for gate in activity.input_gates
        ] + [
            (gate, [gate.function])
            for case in activity.cases
            for gate in case.output_gates
        ]
        for gate, functions in gates:
            diagnostic = _unused_binding(activity, gate, functions, facts_of)
            if diagnostic is not None:
                yield diagnostic
        yield from (
            Diagnostic(
                "FP001",
                f"{role} mutated the marking during a dry-run evaluation; "
                f"predicates, rates and probabilities must be pure",
                activity=activity.name,
                gate=gate_name,
            )
            for role, gate_name in _dry_run_writes(activity, markings)
        )


def _unused_binding(
    activity: Any, gate: Any, functions: list, facts_of: dict[int, CodeFacts]
) -> Optional[Diagnostic]:
    used: set[str] = set()
    for fn in functions:
        facts = facts_of.get(id(fn))
        if facts is None:
            facts = code_facts(fn)
            facts_of[id(fn)] = facts
        if (
            not facts.analyzable
            or facts.dynamic_reads
            or facts.dynamic_writes
            or facts.view_escapes
        ):
            return None
        used |= facts.read_names | facts.write_names
    unused = set(gate.binding) - used
    if not unused:
        return None
    return Diagnostic(
        "FP003",
        f"gate binding declares {len(unused)} place(s) the gate code "
        f"never touches: {_names(unused)}",
        activity=activity.name,
        gate=gate.name,
        location=source_location(functions[0]),
    )
