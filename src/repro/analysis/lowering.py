"""Static lowering verifier (LW001-LW007) + tensor predictor (TZ001-TZ003).

The batched/stepped compile pass (:mod:`repro.san.batched`,
:mod:`repro.san.stepped`) turns gate predicates and rates into lowered
column trees, per-(activity, case) delta programs and direct-address
refresh tables.  Simulation correctness then rests on properties of
*those* artifacts — not of the source model — which until now were only
checked dynamically (the negative-rate guard, the NaN miss sentinel,
the span cap) or not at all.  This pass makes them lint rules:

* :func:`extract_kernel_ir` runs a **diagnose-mode** stepped compile
  (no runtime kernels, no batch arrays) and serialises the typed kernel
  IR: lowered group shapes and read sets, delta-program firing
  matrices, refresh-table specs (roles, bounds, spans), instantaneous
  scan coverage and fallback reasons.  Its :meth:`KernelIR.digest` is
  the content address the model registry stores on admission.
* :func:`check_lowering` verifies the IR by abstract interpretation
  over the bounded reachable-marking envelope: the lowered trees are
  evaluated on the *whole* explored marking set at once (value-range
  and dtype propagation, rules LW001/LW002/LW006), predicted
  mixed-radix table spans are bounded against the 2^20 cap (LW003),
  case probabilities are re-normalised at every reachable marking
  (LW004), and the lowered read/write sets are cross-checked against
  the AST-derived footprints so scalar/vectorized semantic divergence
  is a lint error (LW005) instead of a bit-identity test failure.
* :func:`check_tensor` predicts at lint time why a sweep would fall
  back to per-point execution (TZ001-TZ003) instead of leaving it to
  the dispatch-time ``tensor_compatible`` UserWarning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.probe import code_facts
from repro.san.marking import MarkingFunction
from repro.san.model import SANModel

__all__ = [
    "KernelIR",
    "TENSOR_FALLBACK_RULE",
    "check_lowering",
    "check_tensor",
    "extract_kernel_ir",
]

#: the stable rule ID the dispatch-time tensorize fallback reports under
TENSOR_FALLBACK_RULE = "TZ001"


def _diagnose_engine(model: SANModel):
    """A diagnose-mode stepped engine, or ``None`` when not applicable."""
    if not model.timed_activities or not model.is_markovian:
        return None
    from repro.san.stepped import SteppedJumpEngine

    return SteppedJumpEngine(model, diagnose=True)


def _mask_names(mask: int, places) -> list[str]:
    names = []
    while mask:
        low = mask & -mask
        names.append(places[low.bit_length() - 1].name)
        mask ^= low
    return sorted(names)


def _probe_matrix(compiled) -> np.ndarray:
    """Four deterministic synthetic markings for behavioural probing.

    The structural IR alone cannot distinguish two models whose lowered
    trees differ only in closure constants (the AHS coordination
    strategies differ exactly there), so the digest also folds in the
    trees' outputs at fixed probe points: the initial marking, all-ones,
    all-twos, and a ``slot % 3`` ramp.  Extended-place slots stay zero —
    lowered trees never read them.
    """
    rows = np.zeros((4, compiled.n_slots), dtype=np.int64)
    for slot, place in enumerate(compiled.places):
        if place.is_extended:
            continue
        try:
            rows[0, slot] = int(compiled.initial_values[slot])
        except (TypeError, ValueError):
            pass
        rows[1, slot] = 1
        rows[2, slot] = 2
        rows[3, slot] = slot % 3
    return rows


def _part_spec(part) -> Optional[dict]:
    """Serialise one :class:`_PartMemo` refresh-table part."""
    if part is None:
        return None
    return {
        "member_roles": [
            [int(slot) for slot in role] for role in part.member_slots
        ],
        "shared_slots": [int(slot) for slot in part.shared_slots],
        "bounds": list(part.bounds),
        "span": int(part.span),
        "dtype": "float64" if part.is_float else "uint8",
        "dead": bool(part.dead),
    }


@dataclass
class KernelIR:
    """The typed kernel IR of one model's batched/stepped compile.

    Everything in here is derived from a diagnose-mode compile —
    deterministic for a given model, so :meth:`digest` is a stable
    content address for "what the engines will actually execute".
    """

    model_name: str
    stats: dict = field(default_factory=dict)
    groups: list = field(default_factory=list)
    fire: list = field(default_factory=list)
    tables: list = field(default_factory=list)
    insta: dict = field(default_factory=dict)
    fallbacks: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": "repro-kernel-ir/1",
            "model": self.model_name,
            "stats": dict(self.stats),
            "groups": list(self.groups),
            "fire": list(self.fire),
            "tables": list(self.tables),
            "insta": dict(self.insta),
            "fallbacks": dict(self.fallbacks),
        }

    def digest(self) -> str:
        """Content address of the IR (same keyspace as the result cache)."""
        from repro.runtime.cache import cache_key

        return cache_key({"kind": "lowering-ir", "ir": self.to_dict()})


def _probe_markings(compiled, probe: np.ndarray) -> list:
    """:class:`Marking` objects for the probe rows (extended: initial)."""
    from repro.san.marking import Marking

    markings = []
    for row in probe:
        values = {}
        for place, value in zip(compiled.places, row):
            values[place] = place.initial if place.is_extended else int(value)
        markings.append(Marking(values))
    return markings


def _case_prob_probe(activity, probe_markings) -> list:
    """Per-case probabilities: the constant, or probe-point samples.

    Marking-function probabilities close over model parameters the
    structural IR cannot see; sampling them at the probe markings folds
    those constants into the digest.  A function that rejects a
    synthetic marking samples as ``None`` — deterministically.
    """
    probs: list = []
    for case in activity.cases:
        probability = case.probability
        if isinstance(probability, MarkingFunction):
            samples = []
            for marking in probe_markings:
                try:
                    samples.append(float(probability(marking)))
                except Exception:  # user code on synthetic markings
                    samples.append(None)
            probs.append({"probe": samples})
        else:
            probs.append(float(probability))
    return probs


def extract_kernel_ir(model: SANModel, engine=None) -> Optional[KernelIR]:
    """Extract the kernel IR from a (diagnose-mode) stepped compile.

    Pass an existing :class:`~repro.san.stepped.SteppedJumpEngine` to
    reuse its compile; otherwise a diagnose engine is built.  Returns
    ``None`` when the model cannot go through the batch compile pass
    (no timed activities, or non-exponential ones).
    """
    if engine is None:
        engine = _diagnose_engine(model)
        if engine is None:
            return None
    compiled = engine.compiled
    places = compiled.places
    ir = KernelIR(model_name=model.name, stats=engine.lowering_stats())

    probe = _probe_matrix(compiled)
    for group in engine._lowered:
        shape = (probe.shape[0], len(group.indices))
        with np.errstate(all="ignore"):
            gate_probe = [
                np.broadcast_to(np.asarray(expr(probe)) != 0, shape)
                .astype(int).tolist()
                for expr in group.gate_exprs
            ]
            rate_probe = (
                None
                if group.rate_expr is None
                else np.broadcast_to(
                    np.asarray(group.rate_expr(probe), dtype=np.float64),
                    shape,
                ).tolist()
            )
        ir.groups.append({
            "members": list(group.names),
            "indices": [int(i) for i in group.indices],
            "n_gates": len(group.gate_exprs),
            "rate": "const" if group.rate_expr is None else "expr",
            "rate_consts": (
                None
                if group.eff_consts is None
                else [float(c) for c in group.eff_consts]
            ),
            "reads": _mask_names(group.reads_mask, places),
            "probe": {"gates": gate_probe, "rates": rate_probe},
        })

    probe_markings = _probe_markings(compiled, probe)
    for index, activity in enumerate(compiled.timed):
        cases = []
        for program in engine._fire_programs[index]:
            if program is None:
                cases.append(None)
                continue
            cases.append({
                "checks": [
                    [places[src].name, int(delta)]
                    for src, delta in program.checks
                ],
                "finals": [
                    [
                        places[slot].name,
                        None if src is None else places[src].name,
                        int(delta),
                    ]
                    for slot, src, delta in program.finals
                ],
                "reads": sorted(places[src].name for src in program.srcs),
                "writes": _mask_names(program.write_mask, places),
            })
        ir.fire.append({
            "activity": activity.name,
            "cases": cases,
            "probs": _case_prob_probe(activity, probe_markings),
        })

    for position, table in enumerate(engine._tables):
        ir.tables.append({
            "group": position,
            "direct": bool(table.direct),
            "gate": _part_spec(table.gate),
            "rate": _part_spec(table.rate),
        })

    ir.insta = {
        "lowered": engine._insta_lowered is not None,
        "reads": sorted(
            places[slot].name for slot in engine._insta_read_slots
        ),
        "activities": [a.name for a in compiled.instantaneous],
    }
    ir.fallbacks = dict(engine.fallback_reasons)
    return ir


# ----------------------------------------------------------------------
# LW: abstract interpretation of the lowered trees
# ----------------------------------------------------------------------
def _marking_matrix(compiled, markings) -> np.ndarray:
    """(n_markings, n_slots) int64 evaluation matrix over the envelope.

    Extended-place slots stay zero: extended reads abort lowering, so no
    lowered tree ever looks at those columns.
    """
    n = len(markings)
    matrix = np.zeros((n, compiled.n_slots), dtype=np.int64)
    for row, marking in enumerate(markings):
        for slot, place in enumerate(compiled.places):
            if place.is_extended:
                continue
            try:
                matrix[row, slot] = int(marking.get(place))
            except (TypeError, ValueError):
                pass
    return matrix


def _group_blocks(group, matrix):
    """``(enabled, rates)`` of one lowered group over the whole envelope.

    ``enabled`` is the gate conjunction as a bool block (or None for
    gateless groups); ``rates`` is the raw rate-tree output as float64
    (or None for constant-rate groups).  Shapes are broadcast to
    ``(n_markings, G)`` exactly like the runtime refresh.
    """
    shape = (matrix.shape[0], len(group.indices))
    enabled = None
    for expr in group.gate_exprs:
        gate = np.asarray(expr(matrix)) != 0
        enabled = gate if enabled is None else (enabled & gate)
    if enabled is not None and enabled.ndim != 2:
        enabled = np.broadcast_to(enabled, shape)
    rates = None
    if group.rate_expr is not None:
        rates = np.asarray(group.rate_expr(matrix))
        if rates.ndim != 2:
            rates = np.broadcast_to(rates, shape)
    return enabled, rates


def _check_value_ranges(engine, matrix) -> Iterator[Diagnostic]:
    """LW001/LW002/LW006: dtype + value-range propagation per group."""
    for group in engine._lowered:
        label = group.names[0]
        with np.errstate(all="ignore"):
            for expr in group.gate_exprs:
                out = np.asarray(expr(matrix))
                if out.ndim > 0 and np.issubdtype(out.dtype, np.floating):
                    yield Diagnostic(
                        "LW006",
                        "gate tree evaluates in float dtype "
                        f"({out.dtype}); enabling compares it against "
                        "exact zero",
                        activity=label,
                    )
            enabled, rates = _group_blocks(group, matrix)
        if rates is None:
            continue
        if not np.issubdtype(rates.dtype, np.floating):
            yield Diagnostic(
                "LW006",
                f"rate tree evaluates in integer dtype ({rates.dtype}); "
                "values are cast to float64 for the rate tables",
                activity=label,
            )
        rates = np.asarray(rates, dtype=np.float64)
        nan = np.isnan(rates)
        if nan.any():
            yield Diagnostic(
                "LW001",
                f"rate evaluates to NaN at {int(nan.any(axis=1).sum())} "
                "reachable marking(s); NaN is the float64 rate-table "
                "miss sentinel, so those entries re-evaluate every step "
                "(and the activity counts as disabled there)",
                activity=label,
            )
        negative = rates < 0.0
        if enabled is not None:
            negative = negative & enabled
        if negative.any():
            col = int(np.nonzero(negative)[1][0])
            worst = float(rates[negative].min())
            yield Diagnostic(
                "LW002",
                f"rate evaluates to {worst} at an enabled reachable "
                "marking; the runtime refresh raises ValueError there",
                activity=group.names[col],
            )


def _check_table_spans(engine, matrix, complete) -> Iterator[Diagnostic]:
    """LW003: predicted mixed-radix spans against the 2^20 cap.

    Replays :class:`_PartMemo`'s bound-growth rule (bound = observed
    maximum + 2) over the reachable envelope, so the prediction is the
    span the runtime tables converge to — a lower bound when the
    bounded exploration was incomplete.
    """
    from repro.san.stepped import _SPAN_CAP

    for table in engine._tables:
        if table.direct and table.gate is None and table.rate is None:
            continue  # roles never derived; tabulation was never on offer
        label = table.group.names[0]
        for kind, part in (("gate", table.gate), ("rate", table.rate)):
            if part is None:
                continue
            span = 1
            for role in part.member_slots:
                top = int(matrix[:, role].max()) if matrix.size else 0
                span *= max(top + 2, 2)
            for slot in part.shared_slots:
                top = int(matrix[:, slot].max()) if matrix.size else 0
                span *= max(top + 2, 2)
            if part.dead or span > _SPAN_CAP:
                qualifier = "" if complete else "at least "
                yield Diagnostic(
                    "LW003",
                    f"{kind} refresh table needs {qualifier}{span} "
                    f"entries over the reachable envelope (cap "
                    f"{_SPAN_CAP}); the group reverts to direct tree "
                    "evaluation every step",
                    activity=label,
                )


def _check_normalization(model, markings) -> Iterator[Diagnostic]:
    """LW004: case probabilities must sum to 1 at reachable markings.

    ``validate_model`` checks the initial marking only; here every
    explored marking where the activity is enabled is checked, so a
    marking-dependent probability that drifts off simplex inside the
    reachable envelope is caught before a run dies mid-replication.
    """
    for activity in model.activities:
        if len(activity.cases) < 2:
            continue
        if not any(
            isinstance(case.probability, MarkingFunction)
            for case in activity.cases
        ):
            continue
        for marking in markings:
            try:
                if not activity.enabled(marking):
                    continue
            except Exception:  # noqa: BLE001 - probing must not crash
                continue
            try:
                activity.case_probabilities(marking)
            except ValueError as exc:
                yield Diagnostic("LW004", str(exc), activity=activity.name)
                break
            except Exception:  # noqa: BLE001
                continue


def _ast_gate_reads(fn, bindings) -> Optional[set]:
    """Union of AST-derived read place names across member bindings.

    ``None`` when the AST walker cannot pin the read set down (the
    footprint family reports those cases under FP004 instead).
    """
    facts = code_facts(fn)
    if facts.unanalyzable or facts.dynamic_reads or facts.view_escapes:
        return None
    names: set = set()
    for binding in bindings:
        for local in facts.read_names:
            place = binding.get(local)
            if place is not None:
                names.add(place.name)
    return names


def _check_footprint_parity(model, engine) -> Iterator[Diagnostic]:
    """LW005: lowered read/write sets vs the AST-derived footprints.

    The lowered trees' traced reads and the delta programs' write masks
    are what the vectorized engines *actually* consult and mutate; the
    AST footprints are what the scalar engines' contract says the code
    touches.  Any divergence means the two engine families can observe
    different semantics, so it is an error even before a bit-identity
    test could trip over it.
    """
    compiled = engine.compiled
    places = compiled.places
    for group in engine._lowered:
        template = compiled.timed[int(group.indices[0])]
        members = [compiled.timed[int(i)] for i in group.indices]
        ast_reads: set = set()
        analyzable = True
        for position in range(len(template.input_gates)):
            reads = _ast_gate_reads(
                template.input_gates[position].predicate,
                [m.input_gates[position].binding for m in members],
            )
            if reads is None:
                analyzable = False
                break
            ast_reads |= reads
        _constant, rate_fn = template.exponential_parts()
        if analyzable and rate_fn is not None:
            reads = _ast_gate_reads(
                rate_fn.fn,
                [m.exponential_parts()[1].binding for m in members],
            )
            if reads is None:
                analyzable = False
            else:
                ast_reads |= reads
        if not analyzable:
            continue
        lowered_reads = set(_mask_names(group.reads_mask, places))
        if lowered_reads != ast_reads:
            extra = sorted(lowered_reads - ast_reads)
            missing = sorted(ast_reads - lowered_reads)
            detail = []
            if extra:
                detail.append(f"lowered-only reads {extra}")
            if missing:
                detail.append(f"AST-only reads {missing}")
            yield Diagnostic(
                "LW005",
                "lowered read set diverges from the AST footprint "
                f"({'; '.join(detail)}); the vectorized refresh and the "
                "scalar tracing closures would consult different places",
                activity=template.name,
            )

    for index, activity in enumerate(compiled.timed):
        declared = {place.name for place in activity.writes()}
        for case, program in enumerate(engine._fire_programs[index]):
            if program is None:
                continue
            lowered_writes = set(_mask_names(program.write_mask, places))
            rogue = sorted(lowered_writes - declared)
            if rogue:
                yield Diagnostic(
                    "LW005",
                    f"delta program for case {case} writes {rogue} "
                    "outside the activity's declared write footprint",
                    activity=activity.name,
                )
                break


def check_lowering(
    model: SANModel, markings, complete: bool
) -> Iterator[Diagnostic]:
    """Run LW001-LW007 over the bounded reachable-marking envelope."""
    engine = _diagnose_engine(model)
    if engine is None:
        reason = (
            "no timed activities"
            if not model.timed_activities
            else "non-exponential timed activities"
        )
        yield Diagnostic(
            "LW007",
            f"batch compile pass not applicable ({reason}); "
            "lowering verifier skipped",
        )
        return
    matrix = _marking_matrix(engine.compiled, markings)
    yield from _check_value_ranges(engine, matrix)
    yield from _check_table_spans(engine, matrix, complete)
    yield from _check_normalization(model, markings)
    yield from _check_footprint_parity(model, engine)
    if not complete:
        yield Diagnostic(
            "LW007",
            f"bounded exploration stopped at {len(markings)} markings; "
            "value-range, span and normalization checks cover only the "
            "explored envelope",
        )


# ----------------------------------------------------------------------
# TZ: static tensor-eligibility prediction
# ----------------------------------------------------------------------
def check_tensor(model: SANModel) -> Iterator[Diagnostic]:
    """Run TZ001-TZ003: why would a sweep fall back per-point?

    Mirrors what ``tensor_compatible`` + the stepped step loop decide at
    dispatch time, as lint output: a clean model yields nothing.
    """
    if not model.timed_activities:
        yield Diagnostic(
            "TZ003",
            "no timed activities; tensor-eligibility report skipped",
        )
        return
    if not model.is_markovian:
        bad = sorted(
            a.name for a in model.timed_activities if not a.is_markovian
        )
        yield Diagnostic(
            TENSOR_FALLBACK_RULE,
            f"non-exponential timed activities {bad[:5]} keep the "
            "stepped engine unavailable, so cross-point tensor sweeps "
            "fall back to per-point execution",
        )
        return
    engine = _diagnose_engine(model)
    stats = engine.lowering_stats()
    timed = stats["timed_activities"]
    fallback = stats["fallback"]
    if fallback:
        yield Diagnostic(
            "TZ002",
            f"{fallback}/{timed} timed activities refresh on the "
            "per-row scalar fallback inside the tensor step loop",
        )
    if stats["fire_lowered"] < stats["fire_cases"]:
        unlowered = stats["fire_cases"] - stats["fire_lowered"]
        yield Diagnostic(
            "TZ002",
            f"{unlowered}/{stats['fire_cases']} firing cases have no "
            "delta program and fire through per-row closures",
        )
    if model.instantaneous_activities and not stats["insta_lowered"]:
        yield Diagnostic(
            "TZ002",
            "instantaneous gate conjunctions did not lower; every "
            "triggered row pays a per-row stabilisation scan",
        )
    if stats["groups_tabulated"] < stats["groups"]:
        direct = stats["groups"] - stats["groups_tabulated"]
        yield Diagnostic(
            "TZ002",
            f"{direct}/{stats['groups']} refresh groups are not "
            "direct-address tabulated and re-evaluate their trees "
            "every step",
        )
