"""Structural analyses (rules ST001-ST005).

* **ST001** — a registered place no activity reads or writes (declared,
  binding-level footprints: conservative, so a finding is definite).
* **ST002** — an activity that can never become enabled: some input-gate
  predicate is false in the initial marking and no *other* activity can
  write any place that predicate depends on.
* **ST003** — potential instantaneous-activity cycles over the
  writes→reads graph.  Cycles are pruned with a one-shot proof: when
  every case of an activity provably falsifies one of its own predicates
  (established by partially evaluating the predicate against the
  constants the firing definitely assigned, see
  :class:`repro.analysis.probe.PartialView`), and no other instantaneous
  activity can write the places that proof read, the activity fires at
  most once per cascade and cannot sustain a loop.
* **ST004/ST005** — P-invariants from an empirically sampled incidence
  matrix: each (activity, case) firing is dry-run from every explored
  marking; columns with consistent integer deltas enter an exact
  (``fractions.Fraction``) left-nullspace computation.  Places writable
  by activities whose deltas could not be established are excluded, so
  every reported invariant is sound for *all* firings, observed or not.
  ST005 reports the coverage so absence of invariants is not mistaken
  for token conservation having been checked and refuted.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Iterator, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.probe import (
    PartialView,
    UnknownMarking,
    code_facts,
    fire_deltas,
)
from repro.san.activities import InstantaneousActivity
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.places import Place

__all__ = ["check_structure"]

#: invariant computation is skipped above these sizes (exact-arithmetic
#: elimination is cubic; the lint CLI analyses small instances anyway)
_MAX_INVARIANT_PLACES = 200
_MAX_INVARIANT_COLUMNS = 600
#: at most this many invariants are reported per model
_MAX_INVARIANTS = 10
#: at most this many weighted terms are spelled out per invariant
_MAX_TERMS = 8


# ----------------------------------------------------------------------
# declared footprints and inferred predicate reads
# ----------------------------------------------------------------------
def _predicate_reads(activity: Any) -> set[Place]:
    """Places whose change may flip some input-gate predicate.

    Uses the statically inferred read set per gate when the predicate is
    fully analyzable, else the gate's whole binding.
    """
    result: set[Place] = set()
    for gate in activity.input_gates:
        facts = code_facts(gate.predicate)
        if (
            facts.analyzable
            and not facts.dynamic_reads
            and not facts.view_escapes
        ):
            result |= {
                gate.binding[name]
                for name in facts.read_names
                if name in gate.binding
            }
        else:
            result |= set(gate.binding.values())
    return result


# ----------------------------------------------------------------------
# ST001 / ST002
# ----------------------------------------------------------------------
def _disconnected_places(model: SANModel) -> Iterator[Diagnostic]:
    touched: set[Place] = set()
    for activity in model.activities:
        touched |= activity.reads() | activity.writes()
    for place in model.places:
        if place not in touched:
            yield Diagnostic(
                "ST001",
                "place is read and written by no activity; its marking "
                "can never change and no behaviour depends on it",
                place=place.name,
            )


def _never_enabled(model: SANModel, initial: Marking) -> Iterator[Diagnostic]:
    for activity in model.activities:
        try:
            if activity.enabled(initial):
                continue
        except Exception:  # noqa: BLE001 - validate_model reports this
            continue
        other_writes: set[Place] = set()
        for other in model.activities:
            if other is not activity:
                other_writes |= other.writes()
        for gate in activity.input_gates:
            try:
                if gate.holds(initial):
                    continue
            except Exception:  # noqa: BLE001
                continue
            facts = code_facts(gate.predicate)
            if (
                facts.analyzable
                and not facts.dynamic_reads
                and not facts.view_escapes
            ):
                reads = {
                    gate.binding[name]
                    for name in facts.read_names
                    if name in gate.binding
                }
            else:
                reads = set(gate.binding.values())
            if reads and not (reads & other_writes):
                read_names = sorted(p.name for p in reads)[:_MAX_TERMS]
                yield Diagnostic(
                    "ST002",
                    f"input gate {gate.name!r} is false in the initial "
                    f"marking and depends only on place(s) {read_names} "
                    f"that no other activity writes; the activity can "
                    f"never fire",
                    activity=activity.name,
                    gate=gate.name,
                )
                break


# ----------------------------------------------------------------------
# ST003: instantaneous cycles with one-shot pruning
# ----------------------------------------------------------------------
def _definite_post_constants(activity: Any, case_index: int) -> dict[Place, Any]:
    """Places whose value after firing ``(activity, case)`` is certain.

    Walks the gates in firing order; a gate with writes the analyzer
    cannot pin down invalidates knowledge about everything it can touch.
    """
    known: dict[Place, Any] = {}
    gates_in_order = [
        (gate, gate.function)
        for gate in activity.input_gates
        if gate.function is not None
    ] + [
        (gate, gate.function)
        for gate in activity.cases[case_index].output_gates
    ]
    for gate, fn in gates_in_order:
        facts = code_facts(fn)
        if not facts.analyzable or facts.dynamic_writes:
            for place in gate.binding.values():
                known.pop(place, None)
            continue
        for name in facts.write_names:
            if name in facts.const_writes or name not in gate.binding:
                continue
            known.pop(gate.binding[name], None)
        for name, value in facts.const_writes.items():
            if name in gate.binding:
                known[gate.binding[name]] = value
    return known


def _case_self_disables(
    activity: Any, case_index: int
) -> Optional[set[Place]]:
    """Places proving the activity is disabled after firing this case.

    Returns None when no input-gate predicate could be proven false from
    the definitely-assigned constants alone.
    """
    known = _definite_post_constants(activity, case_index)
    for gate in activity.input_gates:
        local_known = {
            name: known[place]
            for name, place in gate.binding.items()
            if place in known
        }
        if not local_known:
            continue
        view = PartialView(local_known)
        try:
            result = gate.predicate(view)
        except UnknownMarking:
            continue
        except Exception:  # noqa: BLE001 - treat as not provable
            continue
        if not result:
            return {
                gate.binding[name]
                for name in view.reads
                if name in gate.binding
            }
    return None


def _instantaneous_cycles(model: SANModel) -> Iterator[Diagnostic]:
    activities = list(model.instantaneous_activities)
    if not activities:
        return
    writes = {a.name: a.writes() for a in activities}
    reads = {a.name: _predicate_reads(a) for a in activities}

    # One-shot pruning: drop activities that provably disable themselves
    # and whose disabling condition no other instantaneous activity can
    # revert within the same cascade.
    participating: list[Any] = []
    for activity in activities:
        falsified: set[Place] = set()
        discharged = True
        for case_index in range(len(activity.cases)):
            proof = _case_self_disables(activity, case_index)
            if proof is None:
                discharged = False
                break
            falsified |= proof
        if discharged:
            others_write = any(
                writes[other.name] & falsified
                for other in activities
                if other is not activity
            )
            if not others_write:
                continue
        participating.append(activity)

    # Tarjan-free SCC detection on the small remaining graph: iterative
    # DFS twice (Kosaraju) keyed by activity name.
    names = [a.name for a in participating]
    index_of = {name: i for i, name in enumerate(names)}
    edges: dict[int, set[int]] = {i: set() for i in range(len(names))}
    for a in participating:
        for b in participating:
            if writes[a.name] & reads[b.name]:
                edges[index_of[a.name]].add(index_of[b.name])

    seen_components: set[frozenset[int]] = set()
    for component in _strongly_connected(edges):
        is_cycle = len(component) > 1 or (
            next(iter(component)) in edges[next(iter(component))]
        )
        if not is_cycle:
            continue
        key = frozenset(component)
        if key in seen_components:
            continue
        seen_components.add(key)
        members = sorted(names[i] for i in component)
        shown = members[:_MAX_TERMS]
        extra = len(members) - len(shown)
        listing = ", ".join(shown) + (f" (+{extra} more)" if extra else "")
        yield Diagnostic(
            "ST003",
            f"instantaneous activities may re-enable each other in a "
            f"loop: {listing}; if the cycle is live at runtime the "
            f"simulator aborts the cascade",
            activity=members[0],
        )


def _strongly_connected(edges: dict[int, set[int]]) -> list[list[int]]:
    """Kosaraju's algorithm with iterative DFS."""
    order: list[int] = []
    seen: set[int] = set()
    for start in edges:
        if start in seen:
            continue
        stack: list[tuple[int, Iterator[int]]] = [(start, iter(edges[start]))]
        seen.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter(edges[nxt])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
    reverse: dict[int, set[int]] = {node: set() for node in edges}
    for node, targets in edges.items():
        for target in targets:
            reverse[target].add(node)
    components: list[list[int]] = []
    assigned: set[int] = set()
    for start in reversed(order):
        if start in assigned:
            continue
        component = [start]
        assigned.add(start)
        work = [start]
        while work:
            node = work.pop()
            for nxt in reverse[node]:
                if nxt not in assigned:
                    assigned.add(nxt)
                    component.append(nxt)
                    work.append(nxt)
        components.append(component)
    return components


# ----------------------------------------------------------------------
# ST004 / ST005: incidence sampling and P-invariants
# ----------------------------------------------------------------------
def _sample_incidence(
    model: SANModel, markings: list[Marking]
) -> tuple[dict[tuple[str, int], dict[Place, int]], list[tuple[str, int]], int]:
    """Consistent integer deltas per (activity, case) over ``markings``.

    Returns ``(columns, unknown, observations)`` where ``columns`` maps
    (activity name, case index) to its delta and ``unknown`` lists the
    columns with no or contradictory observations.
    """
    columns: dict[tuple[str, int], dict[Place, int]] = {}
    unknown: list[tuple[str, int]] = []
    observations = 0
    for activity in model.activities:
        for case_index in range(len(activity.cases)):
            key = (activity.name, case_index)
            delta: Optional[dict[Place, int]] = None
            consistent = True
            observed = False
            for marking in markings:
                try:
                    if not activity.enabled(marking):
                        continue
                except Exception:  # noqa: BLE001
                    continue
                sample = fire_deltas(activity, case_index, marking)
                if sample is None:
                    continue
                if any(p.is_extended for p in sample):
                    consistent = False
                    break
                observations += 1
                observed = True
                if delta is None:
                    delta = sample
                elif delta != sample:
                    consistent = False
                    break
            if observed and consistent:
                columns[key] = delta if delta is not None else {}
            else:
                unknown.append(key)
    return columns, unknown, observations


def _nullspace(matrix: list[list[Fraction]], width: int) -> list[list[Fraction]]:
    """Basis of ``{y : matrix @ y = 0}`` by exact Gaussian elimination."""
    rows = [row[:] for row in matrix]
    pivots: dict[int, int] = {}  # column -> row
    row_index = 0
    for col in range(width):
        pivot_row = None
        for r in range(row_index, len(rows)):
            if rows[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        rows[row_index], rows[pivot_row] = rows[pivot_row], rows[row_index]
        pivot_value = rows[row_index][col]
        rows[row_index] = [v / pivot_value for v in rows[row_index]]
        for r in range(len(rows)):
            if r != row_index and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [
                    a - factor * b for a, b in zip(rows[r], rows[row_index])
                ]
        pivots[col] = row_index
        row_index += 1
        if row_index == len(rows):
            break
    free_columns = [c for c in range(width) if c not in pivots]
    basis: list[list[Fraction]] = []
    for free in free_columns:
        vector = [Fraction(0)] * width
        vector[free] = Fraction(1)
        for col, row in pivots.items():
            vector[col] = -rows[row][free]
        basis.append(vector)
    return basis


def _format_invariant(
    weights: list[Fraction], places: list[Place], initial: Marking
) -> Optional[str]:
    """``"2*a + b = 5"`` text for one nullspace vector, integer-scaled."""
    denominator_lcm = 1
    for weight in weights:
        if weight != 0:
            denominator_lcm = _lcm(denominator_lcm, weight.denominator)
    scaled = [int(weight * denominator_lcm) for weight in weights]
    support = [(w, p) for w, p in zip(scaled, places) if w != 0]
    if not support:
        return None
    if support[0][0] < 0:
        support = [(-w, p) for w, p in support]
    terms = []
    for weight, place in support[:_MAX_TERMS]:
        prefix = "" if weight == 1 else f"{weight}*"
        terms.append(f"{prefix}{place.name}")
    extra = len(support) - min(len(support), _MAX_TERMS)
    body = " + ".join(terms) + (f" + ... ({extra} more terms)" if extra else "")
    total = sum(weight * initial.get(place) for weight, place in support)
    return f"{body} = {total}"


def _lcm(a: int, b: int) -> int:
    import math

    return a * b // math.gcd(a, b)


def _invariants(
    model: SANModel, markings: list[Marking], complete: bool
) -> Iterator[Diagnostic]:
    columns, unknown, observations = _sample_incidence(model, markings)
    total_columns = len(columns) + len(unknown)
    # Places any unknown column could touch must stay out of invariants.
    excluded: set[Place] = set()
    unknown_names = {name for name, _ in unknown}
    for activity in model.activities:
        if activity.name in unknown_names:
            excluded |= activity.writes()
    places = [
        p for p in model.places if p not in excluded and not p.is_extended
    ]
    coverage = (
        f"incidence sampled over {len(markings)} marking(s)"
        f"{'' if complete else ' (exploration cap hit)'}: "
        f"{len(columns)}/{total_columns} (activity, case) columns have "
        f"established deltas ({observations} observations); invariants "
        f"computed over {len(places)}/{len(model.places)} places"
    )
    if not columns or not places:
        yield Diagnostic("ST005", coverage + "; no invariants computable")
        return
    if (
        len(places) > _MAX_INVARIANT_PLACES
        or len(columns) > _MAX_INVARIANT_COLUMNS
    ):
        yield Diagnostic(
            "ST005",
            coverage + "; model above the exact-arithmetic size cap, "
            "invariant computation skipped",
        )
        return
    matrix = [
        [Fraction(delta.get(place, 0)) for place in places]
        for delta in columns.values()
    ]
    basis = _nullspace(matrix, len(places))
    initial = model.initial_marking()
    reported = 0
    for vector in basis:
        if reported >= _MAX_INVARIANTS:
            break
        text = _format_invariant(vector, places, initial)
        if text is None:
            continue
        reported += 1
        yield Diagnostic(
            "ST004",
            f"P-invariant: {text} (weighted token sum conserved by every "
            f"established firing; places writable by unestablished "
            f"firings excluded)",
        )
    omitted = len(basis) - reported
    suffix = f"; {reported} invariant(s) reported"
    if omitted > 0:
        suffix += f", {omitted} further nullspace vector(s) omitted"
    yield Diagnostic("ST005", coverage + suffix)


# ----------------------------------------------------------------------
def check_structure(
    model: SANModel, markings: list[Marking], complete: bool
) -> Iterator[Diagnostic]:
    """Run ST001-ST005. ``markings`` come from :func:`probe.explore`."""
    initial = markings[0] if markings else model.initial_marking()
    yield from _disconnected_places(model)
    yield from _never_enabled(model, initial)
    yield from _instantaneous_cycles(model)
    yield from _invariants(model, markings, complete)
