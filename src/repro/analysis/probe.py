"""Shared inference machinery for the static analyzers.

Three layers, all best-effort and conservative:

* **AST facts** — :func:`code_facts` parses a gate predicate / gate
  function / rate function and extracts the local place names it reads
  and writes through its view parameter, following calls to helpers it
  can resolve from the function's closure and globals (the builders in
  :mod:`repro.core` factor gate bodies into module-level helpers).  When
  the code does something the walker cannot follow — f-string subscripts,
  passing the view to an unresolvable callable — the corresponding
  ``dynamic_reads`` / ``dynamic_writes`` flag is set and downstream
  checks degrade to the binding-level (declared) footprint instead of
  reporting wrong precise answers.

* **Partial post-state evaluation** — :class:`PartialView` evaluates a
  predicate against a marking where only a few local places have known
  values (the constants a firing definitely assigned); any other access
  raises :class:`UnknownMarking`.  A ``False`` result that never touches
  an unknown proves the predicate is disabled after the firing *for every
  possible pre-state*, and the recorded reads name exactly the places
  that proof depends on.

* **Concrete probing** — :func:`fire_deltas` dry-fires one (activity,
  case) on a scratch copy of a marking and returns the per-place token
  delta, and :func:`explore` runs a bounded breadth-first reachability
  sweep so structural analyses can sample deltas from more than one
  marking context.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.san.marking import GateView, Marking
from repro.san.model import SANModel
from repro.san.places import Place

__all__ = [
    "NONDETERMINISTIC_MODULES",
    "MUTABLE_CAPTURE_TYPES",
    "CodeFacts",
    "code_facts",
    "source_location",
    "UnknownMarking",
    "PartialView",
    "fire_deltas",
    "explore",
]

#: top-level module names whose use inside gate code breaks replay
NONDETERMINISTIC_MODULES = frozenset(
    {"random", "secrets", "uuid", "time", "datetime", "os"}
)

#: captured objects of these types are mutable shared state (DT003)
MUTABLE_CAPTURE_TYPES = (list, dict, set, bytearray)

#: recursion budget when following helper calls
_MAX_HELPER_DEPTH = 4

#: view methods whose first (constant) argument names a written place
_WRITE_METHODS = {"inc", "dec", "tuple_set"}


# ----------------------------------------------------------------------
# source locations
# ----------------------------------------------------------------------
def _code_of(fn: Any) -> Optional[types.CodeType]:
    """The code object behind a function or callable instance."""
    code = getattr(fn, "__code__", None)
    if code is not None:
        return code
    call = getattr(type(fn), "__call__", None)
    return getattr(call, "__code__", None)


def source_location(fn: Any) -> Optional[str]:
    """``"file.py:lineno"`` of a gate/rate function's definition."""
    code = _code_of(fn)
    if code is None:
        return None
    return f"{code.co_filename}:{code.co_firstlineno}"


# ----------------------------------------------------------------------
# AST facts
# ----------------------------------------------------------------------
@dataclass
class CodeFacts:
    """What a gate/rate function does to its view parameter."""

    #: local place names read via ``g["name"]`` (or inc/dec/tuple_set)
    read_names: set[str] = field(default_factory=set)
    #: local place names written via ``g["name"] = ...`` / inc / dec
    write_names: set[str] = field(default_factory=set)
    #: reads through non-constant subscripts or escaped views exist
    dynamic_reads: bool = False
    #: writes through non-constant subscripts or escaped views exist
    dynamic_writes: bool = False
    #: the view was passed somewhere the walker could not follow
    view_escapes: bool = False
    #: nondeterministic top-level modules reachable from the code
    nondet_modules: set[str] = field(default_factory=set)
    #: the code iterates over a set (hash-order dependent)
    set_iteration: bool = False
    #: names of directly captured mutable globals/closure objects
    mutable_captures: set[str] = field(default_factory=set)
    #: local place name -> the constant this code definitely leaves there
    const_writes: dict[str, Any] = field(default_factory=dict)
    #: why the code could not be analyzed at all (None = analyzed)
    unanalyzable: Optional[str] = None

    def merge_helper(self, other: "CodeFacts") -> None:
        """Fold a helper's facts into the caller's (captures stay local)."""
        if other.unanalyzable is not None:
            # An unresolvable helper that holds the view: assume anything.
            self.dynamic_reads = True
            self.dynamic_writes = True
            self.view_escapes = True
            return
        self.read_names |= other.read_names
        self.write_names |= other.write_names
        self.dynamic_reads |= other.dynamic_reads
        self.dynamic_writes |= other.dynamic_writes
        self.view_escapes |= other.view_escapes
        self.nondet_modules |= other.nondet_modules
        self.set_iteration |= other.set_iteration

    @property
    def analyzable(self) -> bool:
        return self.unanalyzable is None


def _function_source_node(fn: Any) -> Optional[ast.AST]:
    """The ``FunctionDef``/``Lambda`` node for ``fn``, or None."""
    try:
        src = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return None
    tree = None
    try:
        tree = ast.parse(src)
    except SyntaxError:
        # Lambdas defined inside call arguments come back as fragments
        # like 'predicate=lambda g: g["x"] == 1,'; carve the lambda out.
        start = src.find("lambda")
        if start < 0:
            return None
        fragment = src[start:]
        for _ in range(64):
            try:
                tree = ast.parse(fragment, mode="eval")
                break
            except SyntaxError:
                if len(fragment) <= len("lambda:0"):
                    return None
                fragment = fragment[:-1].rstrip()
        if tree is None:
            return None
    name = getattr(fn, "__name__", "<lambda>")
    candidates: list[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                candidates.append(node)
        elif isinstance(node, ast.Lambda) and name == "<lambda>":
            candidates.append(node)
    if candidates:
        return candidates[0]
    # Fall back to any single function/lambda in the fragment.
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            return node
    return None


def _resolve_name(fn: Any, name: str) -> tuple[bool, Any]:
    """Look ``name`` up in ``fn``'s closure, globals, then builtins."""
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is not None and closure and name in code.co_freevars:
        cell = closure[code.co_freevars.index(name)]
        try:
            return True, cell.cell_contents
        except ValueError:  # pragma: no cover - unfilled cell
            return False, None
    fn_globals = getattr(fn, "__globals__", None)
    if fn_globals is not None and name in fn_globals:
        return True, fn_globals[name]
    if hasattr(builtins, name):
        return True, getattr(builtins, name)
    return False, None


def _is_nondeterministic(obj: Any) -> Optional[str]:
    """The offending top-level module name if ``obj`` is nondeterministic."""
    if inspect.ismodule(obj):
        top = obj.__name__.partition(".")[0]
        return top if top in NONDETERMINISTIC_MODULES else None
    module = getattr(obj, "__module__", None)
    if isinstance(module, str):
        top = module.partition(".")[0]
        if top in NONDETERMINISTIC_MODULES:
            return top
    return None


class _ViewWalker(ast.NodeVisitor):
    """Collects :class:`CodeFacts` for one function body."""

    def __init__(
        self,
        fn: Any,
        node: ast.AST,
        view_name: Optional[str],
        facts: CodeFacts,
        depth: int,
        seen: set[types.CodeType],
    ) -> None:
        self.fn = fn
        self.view = view_name
        self.facts = facts
        self.depth = depth
        self.seen = seen
        self.locals: set[str] = set()
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            self.locals.add(arg.arg)
        if args.vararg:
            self.locals.add(args.vararg.arg)
        if args.kwarg:
            self.locals.add(args.kwarg.arg)
        body = node.body
        self.top_level = list(body) if isinstance(body, list) else []
        #: consumed Name/Subscript nodes (handled by a parent pattern)
        self.handled: set[int] = set()

    # -- helpers -------------------------------------------------------
    def _is_view(self, node: ast.AST) -> bool:
        return (
            self.view is not None
            and isinstance(node, ast.Name)
            and node.id == self.view
        )

    def _record_subscript(self, node: ast.Subscript, *, write: bool) -> None:
        self.handled.add(id(node.value))
        key = node.slice
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            if write:
                self.facts.write_names.add(key.value)
            else:
                self.facts.read_names.add(key.value)
        else:
            if write:
                self.facts.dynamic_writes = True
            else:
                self.facts.dynamic_reads = True
        # Visit the key expression itself (it may read the view).
        self.visit(key)

    def _recurse_helper(self, callee: Any, view_position: int) -> None:
        """Analyze a helper receiving the view at ``view_position``."""
        if self.depth + 1 >= _MAX_HELPER_DEPTH:
            self.facts.merge_helper(CodeFacts(unanalyzable="depth cap"))
            return
        target = callee
        offset = 0
        if not inspect.isfunction(target):
            call = getattr(type(callee), "__call__", None)
            if call is not None and inspect.isfunction(call):
                target = call
                offset = 1  # implicit self
            else:
                self.facts.merge_helper(CodeFacts(unanalyzable="opaque callee"))
                return
        code = target.__code__
        if code in self.seen:
            return
        helper_facts = _analyze(
            target, view_position + offset, self.depth + 1, self.seen | {code}
        )
        self.facts.merge_helper(helper_facts)

    # -- visitors ------------------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_view(node.value):
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            self._record_subscript(node, write=write)
            return
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # g["x"] += 1 both reads and writes the place.
        target = node.target
        if isinstance(target, ast.Subscript) and self._is_view(target.value):
            self._record_subscript(target, write=True)
            self._record_subscript(target, write=False)
        else:
            self.visit(target)
        self.visit(node.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.locals.add(target.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # g.inc("x") / g.dec("x") / g.tuple_set("x", i, v)
        if (
            isinstance(func, ast.Attribute)
            and self._is_view(func.value)
        ):
            self.handled.add(id(func.value))
            if func.attr in _WRITE_METHODS:
                first = node.args[0] if node.args else None
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    self.facts.read_names.add(first.value)
                    self.facts.write_names.add(first.value)
                else:
                    self.facts.dynamic_reads = True
                    self.facts.dynamic_writes = True
                for arg in node.args[1:]:
                    self.visit(arg)
                if node.args:
                    first_arg = node.args[0]
                    if not isinstance(first_arg, ast.Constant):
                        self.visit(first_arg)
            else:
                # Unknown method on the view: anything may happen.
                self.facts.dynamic_reads = True
                self.facts.dynamic_writes = True
                for arg in node.args:
                    self.visit(arg)
            for keyword in node.keywords:
                self.visit(keyword.value)
            return
        # helper(g, ...) — follow the callee when resolvable
        view_positions = [
            index for index, arg in enumerate(node.args) if self._is_view(arg)
        ]
        view_in_kwargs = any(
            self._is_view(keyword.value) for keyword in node.keywords
        )
        if view_positions or view_in_kwargs:
            for arg in node.args:
                if not self._is_view(arg):
                    self.visit(arg)
                else:
                    self.handled.add(id(arg))
            for keyword in node.keywords:
                if not self._is_view(keyword.value):
                    self.visit(keyword.value)
                else:
                    self.handled.add(id(keyword.value))
            resolved_callee = None
            if isinstance(func, ast.Name):
                found, value = self._resolve(func.id)
                if found:
                    resolved_callee = value
            if (
                resolved_callee is not None
                and len(view_positions) == 1
                and not view_in_kwargs
            ):
                self._recurse_helper(resolved_callee, view_positions[0])
            else:
                self.facts.view_escapes = True
                self.facts.dynamic_reads = True
                self.facts.dynamic_writes = True
            self.visit(func)
            return
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._is_view(node.value):
            # Bare attribute access on the view (not a known method call
            # — those were consumed by visit_Call): reaching into view
            # internals, assume anything.
            self.handled.add(id(node.value))
            self.facts.view_escapes = True
            self.facts.dynamic_reads = True
            self.facts.dynamic_writes = True
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if id(node) in self.handled:
            return
        if self.view is not None and node.id == self.view:
            if isinstance(node.ctx, ast.Load):
                # The view leaks somewhere we did not model.
                self.facts.view_escapes = True
                self.facts.dynamic_reads = True
                self.facts.dynamic_writes = True
            return
        if not isinstance(node.ctx, ast.Load):
            self.locals.add(node.id)
            return
        if node.id in self.locals:
            return
        found, value = self._resolve(node.id)
        if not found:
            return
        offender = _is_nondeterministic(value)
        if offender is not None:
            self.facts.nondet_modules.add(offender)
        if isinstance(value, MUTABLE_CAPTURE_TYPES):
            self.facts.mutable_captures.add(node.id)

    def _resolve(self, name: str) -> tuple[bool, Any]:
        return _resolve_name(self.fn, name)

    # -- set-iteration hazards ----------------------------------------
    def _iter_is_set(self, iter_node: ast.AST) -> bool:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Name
        ):
            if iter_node.func.id in {"set", "frozenset"}:
                return True
        if isinstance(iter_node, ast.Name):
            found, value = self._resolve(iter_node.id)
            if found and isinstance(value, (set, frozenset)):
                return True
        return False

    def visit_For(self, node: ast.For) -> None:
        if self._iter_is_set(node.iter):
            self.facts.set_iteration = True
        if isinstance(node.target, ast.Name):
            self.locals.add(node.target.id)
        self.generic_visit(node)

    def _visit_comprehension(self, node: Any) -> None:
        for generator in node.generators:
            if self._iter_is_set(generator.iter):
                self.facts.set_iteration = True
            if isinstance(generator.target, ast.Name):
                self.locals.add(generator.target.id)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def _collect_const_writes(
    node: ast.AST, view_name: Optional[str], facts: CodeFacts
) -> None:
    """Names whose post-fire value is a known constant.

    A local place name qualifies only when every write to it is a plain
    ``g["name"] = <constant>`` at the top level of the function body
    (unconditionally executed); branch-guarded or arithmetic writes make
    the post value depend on the pre-state, which we must not claim to
    know.
    """
    if facts.dynamic_writes or view_name is None:
        return
    body = getattr(node, "body", None)
    if not isinstance(body, list):
        return
    top_consts: dict[str, Any] = {}
    disqualified: set[str] = set()

    def assigned_name(stmt: ast.stmt) -> Optional[tuple[str, Any]]:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return None
        target = stmt.targets[0]
        if not (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id == view_name
            and isinstance(target.slice, ast.Constant)
            and isinstance(target.slice.value, str)
            and isinstance(stmt.value, ast.Constant)
        ):
            return None
        return target.slice.value, stmt.value.value

    allowed_subscripts: set[int] = set()
    for stmt in body:
        pair = assigned_name(stmt)
        if pair is not None:
            top_consts[pair[0]] = pair[1]  # later writes win
            allowed_subscripts.add(id(stmt.targets[0]))
    # Any other write to the same name disqualifies it.
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.ctx, (ast.Store, ast.Del))
            and id(sub) not in allowed_subscripts
        ):
            if (
                isinstance(sub.value, ast.Name)
                and sub.value.id == view_name
                and isinstance(sub.slice, ast.Constant)
                and isinstance(sub.slice.value, str)
            ):
                disqualified.add(sub.slice.value)
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            func = sub.func
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == view_name
                and func.attr in _WRITE_METHODS
                and sub.args
                and isinstance(sub.args[0], ast.Constant)
            ):
                disqualified.add(sub.args[0].value)
    facts.const_writes = {
        name: value
        for name, value in top_consts.items()
        if name not in disqualified
    }


def _analyze(
    fn: Any, view_position: int, depth: int, seen: set[types.CodeType]
) -> CodeFacts:
    facts = CodeFacts()
    node = _function_source_node(fn)
    if node is None:
        facts.unanalyzable = "source unavailable"
        return facts
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    if view_position >= len(positional):
        facts.unanalyzable = "view parameter not found"
        return facts
    view_name = positional[view_position].arg
    walker = _ViewWalker(fn, node, view_name, facts, depth, seen)
    body = node.body
    if isinstance(body, list):
        for stmt in body:
            walker.visit(stmt)
    else:  # lambda
        walker.visit(body)
    _collect_const_writes(node, view_name, facts)
    return facts


def code_facts(fn: Any) -> CodeFacts:
    """Facts about what ``fn(view)`` reads and writes through ``view``.

    Works on plain functions and callable instances (the view parameter
    is the first non-``self`` positional argument).  Never raises:
    anything unparseable comes back with :attr:`CodeFacts.unanalyzable`
    set.
    """
    target = fn
    position = 0
    if not inspect.isfunction(fn) and not inspect.ismethod(fn):
        call = getattr(type(fn), "__call__", None)
        if call is not None and inspect.isfunction(call):
            target = call
            position = 1
    try:
        code = _code_of(target)
        if code is None:
            facts = CodeFacts()
            facts.unanalyzable = "no code object"
            return facts
        return _analyze(target, position, 0, {code})
    except Exception as exc:  # noqa: BLE001 - analysis must never crash
        facts = CodeFacts()
        facts.unanalyzable = f"analysis failed: {exc!r}"
        return facts


# ----------------------------------------------------------------------
# partial post-state evaluation
# ----------------------------------------------------------------------
class UnknownMarking(Exception):
    """A :class:`PartialView` access touched a place with unknown value."""


class PartialView:
    """GateView stand-in where only some local places have known values.

    Reads of known names return the value and are recorded in
    :attr:`reads`; reads of any other name raise :class:`UnknownMarking`;
    all writes raise (the caller evaluates *predicates*, which must not
    write — a write during partial evaluation means the answer is
    unusable anyway).
    """

    def __init__(self, known: dict[str, Any]) -> None:
        self._known = dict(known)
        self.reads: set[str] = set()

    def __getitem__(self, local: str) -> Any:
        self.reads.add(local)
        if local not in self._known:
            raise UnknownMarking(local)
        return self._known[local]

    def __setitem__(self, local: str, value: Any) -> None:
        raise UnknownMarking(f"write to {local!r} during partial evaluation")

    def inc(self, local: str, amount: int = 1) -> None:
        raise UnknownMarking(f"write to {local!r} during partial evaluation")

    def dec(self, local: str, amount: int = 1) -> None:
        raise UnknownMarking(f"write to {local!r} during partial evaluation")

    def tuple_set(self, local: str, index: int, value: Any) -> None:
        raise UnknownMarking(f"write to {local!r} during partial evaluation")


# ----------------------------------------------------------------------
# concrete probing
# ----------------------------------------------------------------------
def fire_deltas(
    activity: Any, case_index: int, marking: Marking
) -> Optional[dict[Place, Any]]:
    """Per-place delta of firing ``(activity, case)`` from ``marking``.

    Fires on a scratch copy; returns ``None`` when the firing raises
    (e.g. a token count would go negative in a context the predicate
    does not actually allow).  Integer places report ``new - old``;
    extended places report the new tuple when it changed.
    """
    scratch = marking.copy()
    try:
        for gate in activity.input_gates:
            gate.fire(scratch)
        for gate in activity.cases[case_index].output_gates:
            gate.fire(scratch)
    except Exception:  # noqa: BLE001 - probing must never crash
        return None
    deltas: dict[Place, Any] = {}
    for place in marking.places():
        before = marking.get(place)
        after = scratch.get(place)
        if before == after:
            continue
        if place.is_extended:
            deltas[place] = after
        else:
            deltas[place] = after - before
    return deltas


def explore(
    model: SANModel, max_states: int = 256
) -> tuple[list[Marking], bool]:
    """Bounded BFS over markings reachable by firing any enabled case.

    Individual firings (no instantaneous stabilisation) — the point is
    to sample diverse marking contexts for delta collection, not to
    build the true reachability graph.  Returns ``(markings, complete)``
    where ``complete`` is False when the cap stopped the sweep.
    """
    order = list(model.places)
    initial = model.initial_marking()
    seen: set[tuple] = {initial.freeze(order)}
    frontier: list[Marking] = [initial]
    states: list[Marking] = [initial]
    complete = True
    while frontier:
        next_frontier: list[Marking] = []
        for marking in frontier:
            for activity in model.activities:
                try:
                    if not activity.enabled(marking):
                        continue
                except Exception:  # noqa: BLE001
                    continue
                for case_index in range(len(activity.cases)):
                    scratch = marking.copy()
                    try:
                        activity.fire(scratch, case_index)
                    except Exception:  # noqa: BLE001
                        continue
                    key = scratch.freeze(order)
                    if key in seen:
                        continue
                    if len(states) >= max_states:
                        complete = False
                        continue
                    seen.add(key)
                    states.append(scratch)
                    next_frontier.append(scratch)
        frontier = next_frontier
    return states, complete
