"""Multilevel (fixed-effort) splitting for time-bounded rare events.

The rare event (the AHS entering ``KO_total`` before the trip ends) is
decomposed through an *importance function* ``level_fn`` on markings: paths
that cross intermediate levels are restarted with fresh effort, so deep
failure combinations are explored without waiting for crude Monte Carlo
luck.  The estimator is the product of per-stage crossing fractions;
confidence intervals come from independent repetitions of the whole
splitting experiment.

The top level must be equivalent to the rare event itself (give ``level_fn``
a large value on target markings); stage trials inherit the entry state's
clock, so the time-bounded semantics are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.san.compiled import make_jump_engine
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.stats.confidence import ConfidenceInterval, normal_ci
from repro.stochastic.rng import RandomStream, StreamFactory

__all__ = ["FixedEffortSplitting", "SplittingResult"]


@dataclass
class SplittingResult:
    """Outcome of a splitting estimation."""

    probability: float
    interval: ConfidenceInterval
    stage_fractions: list[list[float]]
    repetitions: int
    trials_per_stage: int

    def __str__(self) -> str:
        return f"P = {self.probability:.4g} {self.interval}"


class FixedEffortSplitting:
    """Fixed-effort multilevel splitting on a Markovian SAN.

    Parameters
    ----------
    model:
        All-exponential SAN.
    level_fn:
        Importance function on markings; must be non-decreasing along
        "progress towards failure" for the method to be efficient (it stays
        *correct* regardless, only the variance suffers).
    levels:
        Strictly increasing thresholds; crossing ``levels[-1]`` *is* the
        rare event.
    trials_per_stage:
        Fixed effort per stage.
    engine:
        Jump-engine selection (see :data:`repro.san.compiled.ENGINES`);
        both engines produce bit-identical stage trajectories per seed.
    """

    def __init__(
        self,
        model: SANModel,
        level_fn: Callable[[Marking], float],
        levels: Sequence[float],
        trials_per_stage: int = 500,
        engine: str = "compiled",
        observer=None,
    ) -> None:
        levels = [float(level) for level in levels]
        if len(levels) < 1:
            raise ValueError("need at least one level")
        if any(b <= a for a, b in zip(levels, levels[1:])):
            raise ValueError(f"levels must be strictly increasing, got {levels}")
        if trials_per_stage < 2:
            raise ValueError("trials_per_stage must be >= 2")
        self.simulator = make_jump_engine(model, engine=engine, observer=observer)
        self.model = model
        self.level_fn = level_fn
        self.levels = levels
        self.trials_per_stage = trials_per_stage

    # ------------------------------------------------------------------
    def _one_repetition(
        self, horizon: float, stream: RandomStream
    ) -> tuple[float, list[float]]:
        """One complete splitting pass → (probability estimate, fractions)."""
        # Stage 0 entry pool: the initial marking at time 0.
        pool: list[tuple[Marking, float]] = [
            (self.model.initial_marking(), 0.0)
        ]
        estimate = 1.0
        fractions: list[float] = []
        for target in self.levels:
            successes: list[tuple[Marking, float]] = []
            for _ in range(self.trials_per_stage):
                entry_marking, entry_time = pool[
                    stream.integers(0, len(pool))
                ]
                outcome = self.simulator.simulate(
                    entry_marking.copy(),
                    start_time=entry_time,
                    horizon=horizon,
                    stream=stream,
                    level_fn=self.level_fn,
                    level_target=target,
                )
                if outcome.crossed:
                    successes.append((outcome.marking, outcome.time))
            fraction = len(successes) / self.trials_per_stage
            fractions.append(fraction)
            estimate *= fraction
            if not successes:
                return 0.0, fractions
            pool = successes
        return estimate, fractions

    def repetition(self, horizon: float, stream: RandomStream) -> float:
        """One complete splitting pass driven by a single stream.

        The unit the adaptive orchestrator treats as a replication: the
        per-repetition product estimates are i.i.d., so they pool through
        the standard chunk-summary machinery (mean + CI over repetitions)
        exactly like crude Monte-Carlo indicators.
        """
        if horizon <= 0.0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        value, _ = self._one_repetition(horizon, stream)
        return value

    def estimate(
        self,
        horizon: float,
        factory: StreamFactory,
        repetitions: int = 10,
        confidence: float = 0.95,
    ) -> SplittingResult:
        """Estimate the rare-event probability before ``horizon``.

        Parameters
        ----------
        horizon:
            Trip duration (the time bound of the reachability event).
        factory:
            Randomness source; each repetition gets an independent stream.
        repetitions:
            Independent repetitions of the whole splitting experiment (the
            CI is built over their product estimates).
        confidence:
            CI level.
        """
        if repetitions < 2:
            raise ValueError("need at least 2 repetitions for a CI")
        if horizon <= 0.0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        streams = factory.stream_batch("splitting-rep", repetitions)
        estimates = []
        all_fractions: list[list[float]] = []
        for stream in streams:
            value, fractions = self._one_repetition(horizon, stream)
            estimates.append(value)
            all_fractions.append(fractions)
        interval = normal_ci(estimates, confidence)
        return SplittingResult(
            probability=float(np.mean(estimates)),
            interval=interval,
            stage_fractions=all_fractions,
            repetitions=repetitions,
            trials_per_stage=self.trials_per_stage,
        )
