"""Rare-event simulation.

The paper's unsafety probabilities range from ~1e-5 down to ~1e-13 — the
latter is hopeless for crude Monte Carlo (the authors note the λ=1e-7 curve
"is not plotted").  This subpackage provides the two standard acceleration
techniques for Markovian dependability models:

* **importance sampling / failure biasing** (:mod:`repro.rare.importance`) —
  inflate failure rates during simulation and correct with exact
  likelihood-ratio weights (computed by
  :class:`~repro.san.simulator.MarkovJumpSimulator`);
* **multilevel splitting** (:mod:`repro.rare.splitting`) — fixed-effort
  splitting over an importance-level function (e.g. the number of
  concurrently active failure maneuvers).
"""

from repro.rare.importance import (
    FailureBiasing,
    ImportanceSamplingEstimator,
)
from repro.rare.splitting import FixedEffortSplitting, SplittingResult

__all__ = [
    "FailureBiasing",
    "ImportanceSamplingEstimator",
    "FixedEffortSplitting",
    "SplittingResult",
]
