"""Importance sampling by failure biasing.

Classic dependability-model IS: multiply the rates of designated "failure"
activities by a boost factor so that failure paths are common under the
sampling law, then weight each replication by the exact likelihood ratio.
The weight algebra lives in :class:`~repro.san.simulator.MarkovJumpSimulator`;
this module chooses the biasing and drives replications.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.san.compiled import make_jump_engine
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.simulator import SimulationRun
from repro.san.rewards import TransientEstimate
from repro.stats.confidence import normal_ci
from repro.stochastic.rng import StreamFactory

__all__ = ["FailureBiasing", "ImportanceSamplingEstimator"]


@dataclass
class FailureBiasing:
    """A biasing plan: which activities to boost and by how much.

    Attributes
    ----------
    boost:
        Rate multiplier applied to every matching activity (must be ≥ 1 to
        accelerate failures; values < 1 are allowed but decelerate).
    name_predicate:
        Selects activities by name (e.g. ``lambda n: n.startswith("FM")``).
    """

    boost: float
    name_predicate: Callable[[str], bool]

    def plan_for(self, model: SANModel) -> dict[str, float]:
        """Concrete activity-name → factor mapping for ``model``."""
        if self.boost <= 0 or not math.isfinite(self.boost):
            raise ValueError(f"boost must be finite and > 0, got {self.boost}")
        plan = {
            activity.name: self.boost
            for activity in model.timed_activities
            if self.name_predicate(activity.name)
        }
        if not plan:
            raise ValueError("biasing matched no activity in the model")
        return plan

    @classmethod
    def balanced(
        cls, model: SANModel, name_predicate: Callable[[str], bool], target_rate: float
    ) -> "FailureBiasing":
        """Boost chosen so the *smallest* matching rate reaches ``target_rate``.

        A simple heuristic that keeps failures visible without grotesquely
        distorting the dynamics (factors beyond ~1e4 degrade weight
        variance).
        """
        matching = [
            a
            for a in model.timed_activities
            if name_predicate(a.name) and a.rate is not None
            and not callable(a.rate)
        ]
        if not matching:
            raise ValueError("no constant-rate activity matches the predicate")
        smallest = min(float(a.rate) for a in matching)
        return cls(boost=max(1.0, target_rate / smallest), name_predicate=name_predicate)


class ImportanceSamplingEstimator:
    """Transient probability estimation under failure biasing.

    Parameters
    ----------
    model:
        All-exponential SAN.
    stop_predicate:
        Defines the (absorbing) target event, e.g. ``KO_total`` marked.
    biasing:
        The biasing plan; ``None`` degrades to crude Monte Carlo.
    engine:
        Jump-engine selection (see :data:`repro.san.compiled.ENGINES`);
        all engines give bit-identical weighted estimates per seed.
    observer:
        Optional observability hook (see :mod:`repro.obs`) attached to
        the underlying engine.  Instrumentation never touches the RNG
        stream, so the likelihood-ratio weights are unchanged by it.
    batch_size:
        Lockstep width for the ``"batched"`` engine (other engines
        ignore it); the weights are bit-identical at any width.
    """

    def __init__(
        self,
        model: SANModel,
        stop_predicate: Callable[[Marking], bool],
        biasing: Optional[FailureBiasing] = None,
        engine: str = "compiled",
        observer=None,
        batch_size: int = 256,
    ) -> None:
        bias = biasing.plan_for(model) if biasing is not None else None
        self.simulator = make_jump_engine(
            model, bias=bias, engine=engine, observer=observer,
            batch_size=batch_size,
        )
        self.batch_size = int(batch_size)
        self.stop_predicate = stop_predicate

    def runs(
        self, n_replications: int, horizon: float, factory: StreamFactory
    ) -> list[SimulationRun]:
        """Execute ``n_replications`` independent biased replications."""
        if n_replications < 1:
            raise ValueError("need at least one replication")
        streams = factory.stream_batch("is-rep", n_replications)
        run_batch = getattr(self.simulator, "run_batch", None)
        if callable(run_batch):
            runs: list[SimulationRun] = []
            for start in range(0, len(streams), self.batch_size):
                runs.extend(
                    run_batch(
                        streams[start:start + self.batch_size],
                        horizon,
                        self.stop_predicate,
                    )
                )
            return runs
        return [
            self.simulator.run(stream, horizon, self.stop_predicate)
            for stream in streams
        ]

    def estimate(
        self,
        times: Sequence[float],
        n_replications: int,
        factory: StreamFactory,
        confidence: float = 0.95,
    ) -> TransientEstimate:
        """Unbiased estimate of ``P(target reached by t)`` for each ``t``."""
        horizon = float(max(times))
        runs = self.runs(n_replications, horizon, factory)
        estimate = TransientEstimate.from_indicator_runs(
            times, runs, confidence, method="importance-sampling"
        )
        return estimate

    def diagnose_weights(self, runs: Sequence[SimulationRun]) -> dict[str, float]:
        """Weight-degeneracy diagnostics for hit replications.

        Returns max/mean weight among hits and the effective sample size
        ratio; an ESS ratio ≪ 1 signals an over-aggressive boost.
        """
        hits = np.array([r.weight for r in runs if r.stopped], dtype=float)
        if hits.size == 0:
            return {"hits": 0.0, "max_weight": 0.0, "mean_weight": 0.0, "ess_ratio": 0.0}
        ess = float(hits.sum() ** 2 / (hits**2).sum())
        return {
            "hits": float(hits.size),
            "max_weight": float(hits.max()),
            "mean_weight": float(hits.mean()),
            "ess_ratio": ess / hits.size,
        }
