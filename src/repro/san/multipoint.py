"""Cross-point tensorized sweeps: one SoA tensor for many sweep points.

A figure sweep runs the *same step loop* P times — once per parameter
point — and each per-point batch pays the loop's fixed Python and NumPy
overhead (array slicing, cumulative sums, kernel dispatch) on its own R
rows.  This module stacks R replications × P points into one
``B = R·P``-row tensor so neighbouring sweep points share every masked
time advance, cumsum/``searchsorted`` selection, ``np.add.at`` delta
scatter and direct-address table lookup, leaving one Python-level step
loop for the whole figure.

Layout: each point's stepped engine keeps its own compile artifacts
(slot layout, lowered groups, fire programs, refresh tables); the tensor
is padded to the sweep's **max layout** — ``max(n_slots)`` marking
columns and ``max(n_acts)`` rate columns — and each engine's kernels
touch only its own rows and its own column range.  Padding is exact by
construction: a row's trailing rate columns are never written, so they
stay ``0.0``, and appending zeros to a row leaves every cumulative-sum
prefix (and the row total) bitwise unchanged; the selection count over
padded columns either equals the unpadded count (``u < total``) or
lands past the row's real activities (the ``u == total`` edge), which
the per-row clamp-back resolves from ``n_acts - 1`` of the *owning*
point — exactly where the per-point loop starts its own clamp.

Equivalence contract: per stream, runs are **bit-identical** to the
per-point stepped engine (draw order, IS weights, stop times, final
markings) at every (R, P) shape, including ragged sweeps where points
differ in layout.  Each row draws only from its own
:class:`~repro.stochastic.rng.RandomStream`; a row's holding times,
selection uniforms and case choices are pure functions of its own
marking trajectory, so co-residence with other points' rows is
unobservable.  The intentional divergences are the stepped engine's
own: error *ordering* within a step, and re-evaluation timing of
model-bug errors.

Biased (importance-sampled) and unbiased engines cannot share a tensor
— the biased step draws against ``Rb`` while computing weights from
``Ro`` — so :class:`MultiPointContext` requires a uniform bias flag;
callers partition jobs by :attr:`BatchedJumpEngine.has_bias` first (the
pool's grouped dispatch does).

See ``docs/engine_perf.md`` for measurements and when per-point wins.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.san.simulator import SimulationRun, _RewardIntegrator
from repro.san.stepped import SteppedJumpEngine, _bool_rows

__all__ = ["MultiPointJob", "MultiPointContext", "tensor_compatible"]


def tensor_compatible(engine) -> Optional[str]:
    """Why ``engine`` cannot ride in a multi-point tensor, or ``None``.

    The tensor step loop is the stepped engine's loop generalised over
    rows of several engines; anything that forces per-row delegation
    (observers) or a different loop entirely (other engine kinds) keeps
    its per-point path.
    """
    if not isinstance(engine, SteppedJumpEngine):
        name = getattr(engine, "engine_name", type(engine).__name__)
        return f"engine {name!r} is not the stepped engine"
    if engine.diagnose:
        return "diagnose-mode engines have no runtime kernels"
    if engine.observer is not None:
        return "observers force per-row compiled delegation"
    return None


class MultiPointJob:
    """One sweep point's slice of a tensor run.

    ``streams`` are the point's per-replication
    :class:`~repro.stochastic.rng.RandomStream` objects in chunk order;
    the run result for this job is one :class:`SimulationRun` per
    stream, in the same order.
    """

    __slots__ = ("engine", "streams", "horizon", "stop_predicate")

    def __init__(self, engine, streams, horizon: float,
                 stop_predicate=None) -> None:
        self.engine = engine
        self.streams = list(streams)
        self.horizon = float(horizon)
        self.stop_predicate = stop_predicate


def _refresh_engine(engine, changed_mask: int, matrix, rows, Ro, Rb,
                    alive_mask, has_bias: bool) -> None:
    """One engine's lowered-group refresh, restricted to ``rows``.

    The row-restricted replay of
    :meth:`SteppedJumpEngine._refresh_lowered`: same changed-slot →
    affected-group bitmask walk, but the alive rows are the engine's
    own (the caller computes them) and the tables refresh with
    ``restrict=True`` so direct-tree escapes cannot touch other
    engines' rows.
    """
    lowered_dep = engine._lowered_dep
    affected = 0
    while changed_mask:
        low = changed_mask & -changed_mask
        affected |= lowered_dep[low.bit_length() - 1]
        changed_mask ^= low
    if not affected:
        return
    tables = engine._tables
    cache: dict = {}
    with np.errstate(all="ignore"):
        while affected:
            low = affected & -affected
            tables[low.bit_length() - 1].refresh(
                matrix, rows, Ro, Rb, alive_mask, has_bias, cache,
                restrict=True,
            )
            affected ^= low


class MultiPointContext:
    """Shared SoA tensor over many sweep points' stepped engines.

    Construction validates every job's engine (see
    :func:`tensor_compatible`) and enforces a uniform bias flag;
    :meth:`run` executes all jobs' replications in one step loop and
    demultiplexes per-job results in stream order.
    """

    def __init__(self, jobs: list[MultiPointJob]) -> None:
        if not jobs:
            raise ValueError("MultiPointContext needs at least one job")
        for job in jobs:
            reason = tensor_compatible(job.engine)
            if reason is not None:
                raise ValueError(f"job cannot be tensorized: {reason}")
        self.jobs = list(jobs)
        # dedupe engines by identity (several chunks of one point share
        # one memoised engine) preserving first-seen order
        self.engines: list = []
        self._engine_index: dict[int, int] = {}
        for job in self.jobs:
            if id(job.engine) not in self._engine_index:
                self._engine_index[id(job.engine)] = len(self.engines)
                self.engines.append(job.engine)
        flags = {bool(engine.has_bias) for engine in self.engines}
        if len(flags) > 1:
            raise ValueError(
                "cannot tensorize biased and unbiased engines together; "
                "partition jobs by engine.has_bias first"
            )
        self.has_bias = flags.pop()
        self.n_rows = sum(len(job.streams) for job in self.jobs)

    # ------------------------------------------------------------------
    def run(self) -> list[list[SimulationRun]]:
        """Advance every job's replications; one result list per job."""
        n_rows = self.n_rows
        if n_rows == 0:
            return [[] for _ in self.jobs]
        engines = self.engines
        n_engines = len(engines)
        has_bias = self.has_bias

        # --- row layout: jobs in order, each job's streams in order ---
        eng_of = np.empty(n_rows, dtype=np.intp)
        job_of = np.empty(n_rows, dtype=np.intp)
        hz = np.empty(n_rows, dtype=np.float64)
        n_acts_of = np.empty(n_rows, dtype=np.int64)
        streams_of: list = []
        job_rows: list[list[int]] = []
        row = 0
        for j, job in enumerate(self.jobs):
            e = self._engine_index[id(job.engine)]
            rows_j = []
            for stream in job.streams:
                eng_of[row] = e
                job_of[row] = j
                hz[row] = job.horizon
                n_acts_of[row] = job.engine._n
                streams_of.append(stream)
                rows_j.append(row)
                row += 1
            job_rows.append(rows_j)
        engine_rows = [
            np.flatnonzero(eng_of == e) for e in range(n_engines)
        ]

        max_slots = max(engine.compiled.n_slots for engine in engines)
        max_acts = max(engine._n for engine in engines)
        cursors = [engine._cursor for engine in engines]
        insta_reads_of = [
            engine.compiled.insta_reads_mask for engine in engines
        ]
        fb_counts = [len(engine._fb_indices) for engine in engines]
        stop_exprs = [
            self.engines[self._engine_index[id(job.engine)]]._lowered_stop(
                job.stop_predicate
            )
            for job in self.jobs
        ]
        stop_preds = [job.stop_predicate for job in self.jobs]
        any_stop = any(pred is not None for pred in stop_preds)

        # --- tensors: padded marking matrix + rate rows ---------------
        rows_vals: list[list] = [None] * n_rows  # type: ignore[list-item]
        matrix = np.zeros((n_rows, max_slots), dtype=np.int64, order="F")
        for e, engine in enumerate(engines):
            initial = engine.compiled.initial_values
            rows_e = engine_rows[e]
            for r in rows_e:
                rows_vals[r] = list(initial)
            mirror = cursors[e]._mirror
            for slot, mirrored in enumerate(mirror):
                if mirrored:
                    matrix[rows_e, slot] = initial[slot]
            cursors[e].bind_batch(rows_vals, matrix)

        Ro = np.zeros((n_rows, max_acts), dtype=np.float64)
        Rb = (
            np.zeros((n_rows, max_acts), dtype=np.float64)
            if has_bias else Ro
        )
        alive_mask = np.zeros(n_rows, dtype=bool)

        results: list[Optional[SimulationRun]] = [None] * n_rows
        now = [0.0] * n_rows
        weights = [1.0] * n_rows
        firings = [0] * n_rows
        integrators = [_RewardIntegrator(None) for _ in range(n_rows)]
        stale = [0] * n_rows
        changed_masks = [0] * n_rows
        fb_reads = [[0] * fb_counts[eng_of[r]] for r in range(n_rows)]
        fb_union = [0] * n_rows

        def sync(row: int) -> None:
            mask = stale[row]
            if mask:
                values = rows_vals[row]
                while mask:
                    low = mask & -mask
                    slot = low.bit_length() - 1
                    values[slot] = int(matrix[row, slot])
                    mask ^= low
                stale[row] = 0

        def finalize(row: int, end_time: float, stopped: bool,
                     stop_time: float) -> None:
            alive_mask[row] = False
            sync(row)
            cursor = cursors[eng_of[row]]
            cursor.set_row(row)
            cursor.changed_mask = 0
            results[row] = SimulationRun(
                end_time=end_time,
                stopped=stopped,
                stop_time=stop_time,
                weight=weights[row],
                firings=firings[row],
                final_marking=cursor.export(),
                reward_integrals=integrators[row].integrals,
            )

        # --- entry: per-engine stabilise, time-zero exits, refresh ----
        alive: list[int] = []
        for e, engine in enumerate(engines):
            rows_e = [int(r) for r in engine_rows[e]]
            cursor = cursors[e]
            broadcast = engine._insta_single_case and len(rows_e) > 1
            if broadcast:
                first = rows_e[0]
                cursor.set_row(first)
                cursor.changed_mask = 0
                engine._stabilize(streams_of[first])
                cursor.changed_mask = 0
                base_values = rows_vals[first]
                others = np.asarray(rows_e[1:], dtype=np.intp)
                for r in rows_e[1:]:
                    rows_vals[r][:] = base_values
                matrix[others] = matrix[first]
            for r in rows_e:
                cursor.set_row(r)
                cursor.changed_mask = 0
                if not broadcast:
                    engine._stabilize(streams_of[r])
                    cursor.changed_mask = 0
                pred = stop_preds[job_of[r]]
                if pred is not None and pred(cursor):
                    finalize(r, 0.0, True, 0.0)
                elif hz[r] <= 0.0:
                    finalize(r, hz[r], False, math.inf)
                else:
                    alive_mask[r] = True
                    alive.append(r)
        alive.sort()
        for e, engine in enumerate(engines):
            rows_e = engine_rows[e]
            alive_e = rows_e[alive_mask[rows_e]]
            if not len(alive_e):
                continue
            entry_cache: dict = {}
            with np.errstate(all="ignore"):
                for table in engine._tables:
                    table.refresh(matrix, alive_e, Ro, Rb, alive_mask,
                                  has_bias, entry_cache, restrict=True)
            if fb_counts[e]:
                cursor = cursors[e]
                for r in alive_e:
                    r = int(r)
                    cursor.set_row(r)
                    engine._refresh_fallback_row(r, -1, fb_reads[r], Ro, Rb)
                    fb_union[r] = engine._fold_union(fb_reads[r])
                    cursor.changed_mask = 0

        kernel_counts = [0] * n_engines

        # --- batch-step loop over all points' rows --------------------
        while alive:
            full = len(alive) == n_rows
            Cb = np.cumsum(Rb if full else Rb[alive], axis=1)
            if has_bias:
                Co = np.cumsum(Ro if full else Ro[alive], axis=1)

            # phase 1: per-row draws, deadlock and horizon exits (each
            # row's exponential and selection uniform stay consecutive
            # on its own stream, against its own horizon)
            fired_rows: list[int] = []
            fired_u: list[float] = []
            fired_pos: list[int] = []
            fired_tb: list[float] = []
            fired_tot: list[float] = []
            fired_hold: list[float] = []
            for position, r in enumerate(alive):
                stream = streams_of[r]
                total_biased = float(Cb[position, -1])
                total = (
                    float(Co[position, -1]) if has_bias else total_biased
                )
                if total <= 0.0:
                    finalize(r, now[r], False, math.inf)
                    continue
                holding = stream.exponential(total_biased)
                if now[r] + holding > hz[r]:
                    if has_bias:
                        weights[r] *= math.exp(
                            -(total - total_biased) * (hz[r] - now[r])
                        )
                    now[r] = hz[r]
                    finalize(r, hz[r], False, math.inf)
                    continue
                u = stream.random() * total_biased
                now[r] += holding
                firings[r] += 1
                changed_masks[r] = 0
                kernel_counts[eng_of[r]] += 1
                fired_rows.append(r)
                fired_pos.append(position)
                fired_u.append(u)
                if has_bias:
                    fired_tb.append(total_biased)
                    fired_tot.append(total)
                    fired_hold.append(holding)
            if not fired_rows:
                alive = []
                continue

            # phase 2: vectorized selection with per-row clamp-back at
            # the owning point's activity count (see module docstring)
            pos_arr = np.array(fired_pos, dtype=np.intp)
            u_arr = np.array(fired_u, dtype=np.float64)
            indices = (Cb[pos_arr] <= u_arr[:, None]).sum(axis=1)
            limits = n_acts_of[fired_rows]
            for k in np.nonzero(indices >= limits)[0]:
                r = fired_rows[k]
                index = int(limits[k]) - 1
                while index > 0 and Rb[r, index] <= 0.0:
                    index -= 1
                indices[k] = index
            if has_bias:
                for k, r in enumerate(fired_rows):
                    index = int(indices[k])
                    weights[r] *= (
                        float(Ro[r, index]) / float(Rb[r, index])
                    ) * math.exp(
                        -(fired_tot[k] - fired_tb[k]) * fired_hold[k]
                    )

            # phase 3: fused firing, grouped by (engine, activity, case)
            groups: dict[tuple[int, int], list[int]] = {}
            for k in range(len(fired_rows)):
                key = (int(eng_of[fired_rows[k]]), int(indices[k]))
                groups.setdefault(key, []).append(k)
            for (e, index), members in groups.items():
                engine = engines[e]
                cursor = cursors[e]
                chooser = engine._choosers[index]
                if chooser is None:
                    by_case = {0: members}
                else:
                    by_case = {}
                    for k in members:
                        r = fired_rows[k]
                        sync(r)
                        cursor.set_row(r)
                        by_case.setdefault(
                            chooser(streams_of[r]), []
                        ).append(k)
                programs = engine._fire_programs[index]
                firer = engine._firers[index]
                for case, ks in by_case.items():
                    program = programs[case]
                    if program is not None:
                        if len(ks) <= 2:
                            write_mask = program.write_mask
                            for k in ks:
                                r = fired_rows[k]
                                if program.apply_row(matrix, r):
                                    stale[r] |= write_mask
                                    changed_masks[r] |= write_mask
                                else:
                                    sync(r)
                                    cursor.set_row(r)
                                    cursor.changed_mask = 0
                                    firer(case)
                                    changed_masks[r] |= (
                                        cursor.clear_changed_mask()
                                    )
                            continue
                        krows = np.fromiter(
                            (fired_rows[k] for k in ks),
                            dtype=np.intp,
                            count=len(ks),
                        )
                        if program.apply(matrix, krows):
                            write_mask = program.write_mask
                            for k in ks:
                                r = fired_rows[k]
                                stale[r] |= write_mask
                                changed_masks[r] |= write_mask
                            continue
                    for k in ks:
                        r = fired_rows[k]
                        sync(r)
                        cursor.set_row(r)
                        cursor.changed_mask = 0
                        firer(case)
                        changed_masks[r] |= cursor.clear_changed_mask()

            # phase 4: instantaneous stabilisation, per owning engine
            triggered_by_engine: dict[int, list[int]] = {}
            for r in fired_rows:
                e = int(eng_of[r])
                if changed_masks[r] & insta_reads_of[e]:
                    triggered_by_engine.setdefault(e, []).append(r)
            for e, triggered in triggered_by_engine.items():
                engine = engines[e]
                if not engine._insta:
                    continue
                if engine._insta_lowered is not None:
                    with np.errstate(all="ignore"):
                        enabled = engine._insta_enabled_rows(
                            matrix, np.asarray(triggered, dtype=np.intp)
                        )
                    scan_rows = [
                        r for r, ok in zip(triggered, enabled) if ok
                    ]
                else:
                    scan_rows = triggered
                cursor = cursors[e]
                for r in scan_rows:
                    sync(r)
                    cursor.set_row(r)
                    cursor.changed_mask = 0
                    engine._stabilize(streams_of[r])
                    changed_masks[r] |= cursor.clear_changed_mask()

            # phase 5: absorption (lowered per job where possible),
            # horizon, fallback refresh, per-engine lowered refresh
            if any_stop:
                by_job: dict[int, list[int]] = {}
                for r in fired_rows:
                    j = int(job_of[r])
                    if stop_preds[j] is not None:
                        by_job.setdefault(j, []).append(r)
                for j, jrows in by_job.items():
                    expr = stop_exprs[j]
                    if expr is not None:
                        jarr = np.asarray(jrows, dtype=np.intp)
                        with np.errstate(all="ignore"):
                            hit = _bool_rows(expr(matrix[jarr]), len(jarr))
                        for r, h in zip(jrows, hit):
                            if h:
                                finalize(r, now[r], True, now[r])
                    else:
                        pred = stop_preds[j]
                        for r in jrows:
                            sync(r)
                            cursor = cursors[eng_of[r]]
                            cursor.set_row(r)
                            if pred(cursor):
                                finalize(r, now[r], True, now[r])

            changed_unions = [0] * n_engines
            survivors: list[int] = []
            for r in fired_rows:
                if results[r] is not None:
                    continue
                if now[r] >= hz[r]:
                    finalize(r, now[r], False, math.inf)
                    continue
                changed = changed_masks[r]
                if changed:
                    e = int(eng_of[r])
                    changed_unions[e] |= changed
                    if fb_counts[e] and changed & fb_union[r]:
                        sync(r)
                        cursors[e].set_row(r)
                        reads = fb_reads[r]
                        if engines[e]._refresh_fallback_row(
                            r, changed, reads, Ro, Rb
                        ):
                            fb_union[r] = engines[e]._fold_union(reads)
                survivors.append(r)
            alive = survivors
            for e in range(n_engines):
                if not changed_unions[e] or not engines[e]._lowered:
                    continue
                rows_e = engine_rows[e]
                alive_e = rows_e[alive_mask[rows_e]]
                if len(alive_e):
                    _refresh_engine(engines[e], changed_unions[e], matrix,
                                    alive_e, Ro, Rb, alive_mask, has_bias)

        for e, count in enumerate(kernel_counts):
            if count:
                engines[e]._kernel_events += count
        return [
            [results[r] for r in rows_j]  # type: ignore[misc]
            for rows_j in job_rows
        ]
