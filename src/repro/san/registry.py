"""Lint-gated model registry: named builders + analyzer-gated admission.

The ROADMAP's compile-once item needs a place where servable models
*live*: the four built-in AHS strategy models and any user-defined SAN
register here under a stable name with a builder callable.  Admission
(:func:`admit`) runs the full static analyzer over the built model and
extracts the kernel IR of its batched/stepped compile
(:func:`repro.analysis.extract_kernel_ir`); lint-clean models get their
:class:`~repro.analysis.AnalysisReport` and lowering-IR digest stored in
the content-addressed :class:`~repro.runtime.cache.ResultCache`, keyed
by the model's registry token through the same ``cache_key`` machinery
as the compile contexts — so a fleet lints each (model, strategy, n)
once ever, and a second admission is a cache hit.

Models that lint with errors are *not* cached: they re-analyze on every
admission attempt until fixed, so a stale rejection can never mask a
repaired model.

Command-line surface: ``repro-cli models list|lint|describe``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "AdmissionResult",
    "ModelSpec",
    "admission_key",
    "admit",
    "get_model",
    "list_models",
    "register_model",
    "unregister_model",
]

#: payload schema tag for cached admission records
ADMISSION_SCHEMA = "repro-admission/1"


@dataclass(frozen=True)
class ModelSpec:
    """One registered model: a named, parameterised builder."""

    name: str
    builder: Callable[[], Any]
    description: str = ""
    tags: tuple[str, ...] = ()
    #: fingerprintable token identifying the built model's content —
    #: shares the ``cache_key`` keyspace with the compile contexts
    token: Any = None

    def build(self):
        """Construct the model (a fresh :class:`SANModel` per call)."""
        return self.builder()


@dataclass
class AdmissionResult:
    """Outcome of one :func:`admit` call."""

    name: str
    admitted: bool
    cached: bool
    key: str
    ir_digest: Optional[str]
    #: the analysis report in its JSON form (``AnalysisReport.to_dict``)
    report: dict = field(default_factory=dict)

    @property
    def errors(self) -> int:
        return int(self.report.get("summary", {}).get("errors", 0))

    @property
    def warnings(self) -> int:
        return int(self.report.get("summary", {}).get("warnings", 0))


_REGISTRY: dict[str, ModelSpec] = {}
_BUILTINS_LOADED = False


def register_model(
    name: str,
    builder: Callable[[], Any],
    *,
    description: str = "",
    tags: Iterable[str] = (),
    token: Any = None,
    replace: bool = False,
) -> ModelSpec:
    """Register ``builder`` under ``name``; returns the spec.

    ``token`` defaults to ``{"registry-model": name}`` — callers whose
    builder output varies with external parameters should pass a token
    covering those parameters, or admission cache entries would alias.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"model name must be a non-empty string, got {name!r}")
    if not callable(builder):
        raise TypeError(f"builder for {name!r} must be callable")
    if not replace and name in _REGISTRY:
        raise ValueError(
            f"model {name!r} is already registered; pass replace=True "
            "to overwrite"
        )
    spec = ModelSpec(
        name=name,
        builder=builder,
        description=description,
        tags=tuple(tags),
        token=token if token is not None else {"registry-model": name},
    )
    _REGISTRY[name] = spec
    return spec


def unregister_model(name: str) -> bool:
    """Remove ``name`` from the registry; True when it was present."""
    return _REGISTRY.pop(name, None) is not None


def _ensure_builtins() -> None:
    """Register the four AHS strategy models on first registry use.

    Imported lazily: ``repro.core`` itself imports ``repro.san``, so a
    module-level import here would be circular.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.core import AHSParameters, Strategy, build_composed_model

    for strategy in Strategy:
        params = AHSParameters(max_platoon_size=2, strategy=strategy)

        def builder(_params=params):
            return build_composed_model(_params).model

        name = f"ahs-{strategy.value.lower()}"
        if name in _REGISTRY:  # a user override wins
            continue
        register_model(
            name,
            builder,
            description=(
                f"composed AHS failure model, strategy "
                f"{strategy.value}, max platoon size 2"
            ),
            tags=("builtin", "ahs", strategy.value.lower()),
            token={
                "registry-model": name,
                "params": params,
            },
        )


def get_model(name: str) -> ModelSpec:
    """The spec registered under ``name`` (ValueError with known names)."""
    _ensure_builtins()
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ValueError(f"unknown model {name!r}; registered: {known}")
    return spec


def list_models() -> list[ModelSpec]:
    """All registered specs, sorted by name (built-ins included)."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def admission_key(spec: ModelSpec) -> str:
    """Content address of ``spec``'s admission record."""
    from repro.runtime.cache import cache_key

    return cache_key({
        "kind": "model-admission",
        "name": spec.name,
        "token": spec.token,
    })


def admit(
    model: str | ModelSpec,
    cache=None,
    *,
    families: Optional[Iterable[str]] = None,
    max_states: int = 256,
) -> AdmissionResult:
    """Run the admission gate for ``model`` (a name or a spec).

    With a :class:`~repro.runtime.cache.ResultCache`, a previously
    admitted model returns its stored report and lowering-IR digest
    without rebuilding or re-analyzing anything (``cached=True``).
    """
    from repro.analysis import Severity, analyze_model, extract_kernel_ir

    spec = get_model(model) if isinstance(model, str) else model
    key = admission_key(spec)
    if cache is not None:
        payload = cache.get(key)
        if (
            isinstance(payload, dict)
            and payload.get("schema") == ADMISSION_SCHEMA
        ):
            return AdmissionResult(
                name=spec.name,
                admitted=True,
                cached=True,
                key=key,
                ir_digest=payload.get("ir_digest"),
                report=payload.get("report", {}),
            )

    built = spec.build()
    report = analyze_model(built, families=families, max_states=max_states)
    ir = extract_kernel_ir(built)
    digest = ir.digest() if ir is not None else None
    admitted = not report.at_least(Severity.ERROR)
    result = AdmissionResult(
        name=spec.name,
        admitted=admitted,
        cached=False,
        key=key,
        ir_digest=digest,
        report=report.to_dict(),
    )
    # only a *full* clean analysis earns a cached admission: a family
    # subset could miss errors, and the key does not cover the subset
    if admitted and cache is not None and families is None:
        cache.put(key, {
            "schema": ADMISSION_SCHEMA,
            "name": spec.name,
            "ir_digest": digest,
            "report": result.report,
        })
    return result
