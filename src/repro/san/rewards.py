"""Reward variables over SAN markings and their estimators.

Möbius measures are *reward variables*: a rate reward accumulates (or is
sampled) from the marking, an impulse reward counts activity completions.
The paper's single measure — unsafety ``S(t)``, "the probability to have a
token in the place KO_total" — is the instant-of-time expectation of a 0/1
rate reward.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.san.marking import Marking, MarkingFunction
from repro.san.model import SANModel
from repro.san.simulator import SimulationRun
from repro.stochastic.sampling import sample_mean_and_ci

__all__ = ["RateReward", "ImpulseReward", "TransientEstimate"]


class RateReward:
    """A scalar function of the marking, e.g. an unsafe-state indicator."""

    __slots__ = ("name", "function")

    def __init__(self, name: str, function: MarkingFunction) -> None:
        self.name = name
        self.function = function

    def evaluate(self, marking: Marking) -> float:
        """Reward value in ``marking``."""
        return float(self.function(marking))

    def indicator_on(self, model: SANModel) -> Callable[[Marking], bool]:
        """This reward as a boolean predicate (non-zero ⇒ True)."""
        return lambda marking: self.evaluate(marking) != 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RateReward({self.name!r})"


class ImpulseReward:
    """A per-completion reward for a set of activities."""

    __slots__ = ("name", "values")

    def __init__(self, name: str, values: dict[str, float]) -> None:
        if not values:
            raise ValueError("impulse reward needs at least one activity")
        self.name = name
        self.values = dict(values)

    def evaluate(self, run: SimulationRun) -> float:
        """Total impulse reward accumulated over a traced run."""
        if not run.activity_counts:
            raise ValueError(
                "impulse rewards need a traced run (simulator trace=True)"
            )
        return sum(
            self.values.get(activity, 0.0) * count
            for activity, count in run.activity_counts.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ImpulseReward({self.name!r}, activities={sorted(self.values)})"


@dataclass
class TransientEstimate:
    """A time-indexed estimate with confidence information.

    The simulation engines produce these from replications; the numerical
    engine produces them with ``half_widths`` at zero and an optional
    ``truncation_error`` bound from the state-space projection.
    """

    times: np.ndarray
    values: np.ndarray
    half_widths: np.ndarray
    n_samples: int
    method: str
    truncation_error: float = 0.0

    @classmethod
    def from_indicator_runs(
        cls,
        times: Sequence[float],
        runs: Sequence[SimulationRun],
        confidence: float = 0.95,
        method: str = "simulation",
    ) -> "TransientEstimate":
        """Estimate ``P(stop_time <= t)`` from replications.

        Works unchanged for importance-sampled runs: each run contributes
        ``weight × 1[stop_time ≤ t]``.
        """
        if not runs:
            raise ValueError("need at least one run")
        times_arr = np.asarray(list(times), dtype=float)
        samples = np.zeros((len(runs), times_arr.size))
        for i, run in enumerate(runs):
            samples[i] = np.where(run.stop_time <= times_arr, run.weight, 0.0)
        values = samples.mean(axis=0)
        halves = np.empty(times_arr.size)
        for j in range(times_arr.size):
            _, halves[j] = sample_mean_and_ci(samples[:, j], confidence)
        return cls(
            times=times_arr,
            values=values,
            half_widths=halves,
            n_samples=len(runs),
            method=method,
        )

    def relative_half_width(self) -> np.ndarray:
        """CI half-width divided by the estimate (inf where estimate is 0)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.where(self.values > 0, self.half_widths / self.values, np.inf)
        return rel

    def value_at(self, time: float) -> float:
        """Estimate at an exact requested time point."""
        matches = np.flatnonzero(np.isclose(self.times, time))
        if matches.size == 0:
            raise KeyError(f"time {time} was not estimated; have {self.times}")
        return float(self.values[matches[0]])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransientEstimate(method={self.method!r}, points={self.times.size}, "
            f"n={self.n_samples})"
        )
