"""The SAN atomic/composed model container."""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.san.activities import InstantaneousActivity, TimedActivity
from repro.san.marking import Marking
from repro.san.places import Place

__all__ = ["SANModel"]

Activity = Union[TimedActivity, InstantaneousActivity]


class SANModel:
    """A stochastic activity network: places + activities.

    The same class represents atomic submodels and the flattened result of
    ``join``/``replicate`` composition (sharing is by place-object identity,
    so composition is just a union that deduplicates shared places).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.places: list[Place] = []
        self.timed_activities: list[TimedActivity] = []
        self.instantaneous_activities: list[InstantaneousActivity] = []
        self._place_set: set[Place] = set()
        self._activity_names: set[str] = set()
        self._ordered_instantaneous: Optional[list[InstantaneousActivity]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_place(self, place: Place) -> Place:
        """Register a place; re-adding the same object is a no-op."""
        if place not in self._place_set:
            self.places.append(place)
            self._place_set.add(place)
        return place

    def add_places(self, places: Iterable[Place]) -> None:
        """Register several places."""
        for place in places:
            self.add_place(place)

    def add_activity(self, activity: Activity) -> Activity:
        """Register an activity; its places are auto-registered."""
        if not isinstance(activity, (TimedActivity, InstantaneousActivity)):
            raise TypeError(f"not an activity: {activity!r}")
        if activity.name in self._activity_names:
            raise ValueError(
                f"model {self.name!r}: duplicate activity name {activity.name!r}"
            )
        self._activity_names.add(activity.name)
        if isinstance(activity, TimedActivity):
            self.timed_activities.append(activity)
        elif isinstance(activity, InstantaneousActivity):
            self.instantaneous_activities.append(activity)
            self._ordered_instantaneous = None
        else:
            raise TypeError(f"not an activity: {activity!r}")
        # sort: set iteration order is id()-dependent, and slot numbering
        # (hence the lowered kernel-IR digest) must not vary per process
        for place in sorted(
            activity.reads() | activity.writes(), key=lambda p: p.name
        ):
            self.add_place(place)
        return activity

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def activities(self) -> list[Activity]:
        """All activities, timed first (stable order)."""
        return [*self.timed_activities, *self.instantaneous_activities]

    def place_named(self, name: str) -> Place:
        """Look up a place by (unique) name.

        Raises
        ------
        KeyError
            If no place or several places carry the name.
        """
        matches = [p for p in self.places if p.name == name]
        if not matches:
            raise KeyError(f"model {self.name!r}: no place named {name!r}")
        if len(matches) > 1:
            raise KeyError(
                f"model {self.name!r}: place name {name!r} is ambiguous "
                f"({len(matches)} matches)"
            )
        return matches[0]

    def activity_named(self, name: str) -> Activity:
        """Look up an activity by name."""
        for activity in self.activities:
            if activity.name == name:
                return activity
        raise KeyError(f"model {self.name!r}: no activity named {name!r}")

    def ordered_instantaneous(self) -> list[InstantaneousActivity]:
        """Instantaneous activities in firing order (priority desc, then
        insertion order) — the order :func:`~repro.san.simulator._stabilize`
        scans them in.  Computed once and cached; registering another
        instantaneous activity invalidates the cache.
        """
        if self._ordered_instantaneous is None:
            self._ordered_instantaneous = sorted(
                self.instantaneous_activities, key=lambda a: -a.priority
            )
        return self._ordered_instantaneous

    def place_slots(self) -> dict[Place, int]:
        """Place → dense slot index, in registration order (compile pass)."""
        return {place: slot for slot, place in enumerate(self.places)}

    def initial_marking(self) -> Marking:
        """A fresh marking with all places at their initial values."""
        return Marking.initial(self.places)

    @property
    def is_markovian(self) -> bool:
        """True when every timed activity has an exponential delay."""
        return all(a.is_markovian for a in self.timed_activities)

    def stats(self) -> dict[str, int]:
        """Size summary for reports."""
        return {
            "places": len(self.places),
            "timed_activities": len(self.timed_activities),
            "instantaneous_activities": len(self.instantaneous_activities),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"SANModel({self.name!r}, places={s['places']}, "
            f"timed={s['timed_activities']}, "
            f"instantaneous={s['instantaneous_activities']})"
        )
