"""Human-readable and Graphviz descriptions of SAN models.

Möbius renders SANs graphically; this module provides the open
equivalents: :func:`describe_model` (a structured text summary like the
paper's Figure 5 caption) and :func:`to_dot` (Graphviz source with the
usual SAN iconography — circles for places, thick bars for timed
activities, thin bars for instantaneous ones, triangles for gates).
"""

from __future__ import annotations

from repro.san.activities import InstantaneousActivity, TimedActivity
from repro.san.marking import MarkingFunction
from repro.san.model import SANModel

__all__ = ["describe_model", "describe_lowering", "to_dot"]


def _rate_text(activity: TimedActivity) -> str:
    if activity.rate is None:
        return f"~{activity.distribution!r}"
    if isinstance(activity.rate, MarkingFunction):
        places = ", ".join(sorted(p.name for p in activity.rate.reads()))
        return f"rate = f({places})"
    return f"rate = {activity.rate:g}"


def describe_model(model: SANModel, max_items: int | None = None) -> str:
    """A structured text summary of a SAN model.

    Parameters
    ----------
    model:
        The model to describe.
    max_items:
        Optional cap on listed places/activities (composed models with
        2n replicas produce long listings otherwise); a trailing line
        reports how many were omitted.
    """
    lines = [f"SAN model {model.name!r}"]
    stats = model.stats()
    lines.append(
        f"  {stats['places']} places, {stats['timed_activities']} timed "
        f"activities, {stats['instantaneous_activities']} instantaneous "
        f"activities"
    )

    lines.append("  places:")
    places = model.places if max_items is None else model.places[:max_items]
    for place in places:
        kind = "extended " if place.is_extended else ""
        lines.append(f"    {place.name} ({kind}initial = {place.initial!r})")
    omitted = len(model.places) - len(places)
    if omitted > 0:
        lines.append(f"    ... and {omitted} more places")

    lines.append("  activities:")
    activities = (
        model.activities if max_items is None else model.activities[:max_items]
    )
    for activity in activities:
        if isinstance(activity, TimedActivity):
            detail = _rate_text(activity)
        else:
            detail = f"instantaneous, priority {activity.priority}"
        gates = ", ".join(g.name for g in activity.input_gates) or "-"
        case_labels = "/".join(
            case.label or f"case{i}" for i, case in enumerate(activity.cases)
        )
        lines.append(
            f"    {activity.name}: {detail}; input gates: {gates}; "
            f"cases: {case_labels}"
        )
    omitted = len(model.activities) - len(activities)
    if omitted > 0:
        lines.append(f"    ... and {omitted} more activities")
    return "\n".join(lines)


def describe_lowering(engine) -> str:
    """Per-activity lowering table of a :class:`BatchedJumpEngine`.

    One row per timed activity: ``vectorized`` when the batched compile
    pass lowered its gates/rate to column kernels, or ``fallback`` with
    the recorded ``_CannotLower`` reason.  The header repeats
    ``lowering_stats()`` so the table is self-contained in reports.
    """
    stats = engine.lowering_stats()
    reasons: dict[str, str] = getattr(engine, "fallback_reasons", {})
    lines = [
        f"batched lowering for model {engine.model.name!r}: "
        f"{stats['lowered']}/{stats['timed_activities']} timed activities "
        f"vectorized in {stats['groups']} group(s), "
        f"{stats['fallback']} on the per-row fallback"
    ]
    width = max(
        (len(a.name) for a in engine.model.timed_activities), default=0
    )
    for activity in engine.model.timed_activities:
        reason = reasons.get(activity.name)
        status = (
            "vectorized" if reason is None else f"fallback ({reason})"
        )
        lines.append(f"  {activity.name:<{width}}  {status}")
    return "\n".join(lines)


def _dot_id(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def to_dot(model: SANModel, rankdir: str = "LR") -> str:
    """Graphviz source for a SAN model.

    Edges run place → activity for every input-gate binding and
    activity → place for every output-gate binding (per case, labelled
    with the case label when present).
    """
    lines = [
        f"digraph {_dot_id(model.name)} {{",
        f"  rankdir={rankdir};",
        '  node [fontname="Helvetica"];',
    ]
    for place in model.places:
        shape = "doublecircle" if place.is_extended else "circle"
        lines.append(
            f"  {_dot_id(place.name)} [shape={shape}, "
            f'label="{place.name}\\n{place.initial!r}"];'
        )
    for activity in model.activities:
        if isinstance(activity, TimedActivity):
            style = "shape=box, height=0.6, width=0.15, style=filled, fillcolor=gray70"
        else:
            style = "shape=box, height=0.6, width=0.05, style=filled, fillcolor=black, fontcolor=white"
        lines.append(f"  {_dot_id(activity.name)} [{style}];")
        for gate in activity.input_gates:
            for place in sorted(gate.places(), key=lambda p: p.name):
                lines.append(
                    f"  {_dot_id(place.name)} -> {_dot_id(activity.name)} "
                    f'[label="{gate.name}"];'
                )
        for case_index, case in enumerate(activity.cases):
            label = case.label or (
                f"case{case_index}" if len(activity.cases) > 1 else ""
            )
            for gate in case.output_gates:
                for place in sorted(gate.places(), key=lambda p: p.name):
                    suffix = f' [label="{label}"]' if label else ""
                    lines.append(
                        f"  {_dot_id(activity.name)} -> "
                        f"{_dot_id(place.name)}{suffix};"
                    )
    lines.append("}")
    return "\n".join(lines)
