"""Structural validation of SAN models.

Run :func:`validate_model` after building a model (the AHS builders do this
automatically).  Checks are structural and cheap; dynamic properties (e.g.
instantaneous-activity loops) are guarded at runtime by the simulator and
the state-space generator.
"""

from __future__ import annotations

from repro.san.marking import Marking
from repro.san.model import SANModel

__all__ = ["validate_model", "ModelValidationError"]


class ModelValidationError(ValueError):
    """The model is structurally invalid."""


def validate_model(model: SANModel) -> None:
    """Validate ``model``; raise :class:`ModelValidationError` on problems.

    Checks:

    * at least one activity;
    * every activity's places are registered in the model;
    * constant case probabilities of each activity sum to 1;
    * initial marking is valid for every place, and enabling predicates /
      constant rates evaluate without raising in the initial marking;
    * no duplicate place names among distinct places.
    """
    if not model.activities:
        raise ModelValidationError(f"model {model.name!r} has no activities")

    place_set = set(model.places)
    names: dict[str, object] = {}
    for place in model.places:
        previous = names.get(place.name)
        if previous is not None and previous is not place:
            raise ModelValidationError(
                f"model {model.name!r}: two distinct places named {place.name!r}"
            )
        names[place.name] = place

    for activity in model.activities:
        missing = (activity.reads() | activity.writes()) - place_set
        if missing:
            missing_names = sorted(p.name for p in missing)
            raise ModelValidationError(
                f"activity {activity.name!r} uses unregistered places: "
                f"{missing_names}"
            )
        constant_probs = [
            c.probability for c in activity.cases if isinstance(c.probability, float)
        ]
        if len(constant_probs) == len(activity.cases):
            total = sum(constant_probs)
            if abs(total - 1.0) > 1e-9:
                raise ModelValidationError(
                    f"activity {activity.name!r}: constant case probabilities "
                    f"sum to {total}, expected 1"
                )

    # Smoke-evaluate predicates and rates in the initial marking.
    marking = model.initial_marking()
    for activity in model.activities:
        try:
            enabled = activity.enabled(marking)
        except Exception as exc:  # noqa: BLE001 - reported as validation error
            raise ModelValidationError(
                f"activity {activity.name!r}: enabling predicate raised "
                f"{exc!r} in the initial marking"
            ) from exc
        if enabled and hasattr(activity, "rate_in") and activity.rate is not None:
            try:
                rate = activity.rate_in(marking)
            except Exception as exc:  # noqa: BLE001
                raise ModelValidationError(
                    f"activity {activity.name!r}: rate raised {exc!r} in the "
                    f"initial marking"
                ) from exc
            if rate < 0:
                raise ModelValidationError(
                    f"activity {activity.name!r}: negative initial rate {rate}"
                )
