"""Structural validation of SAN models.

Run :func:`validate_model` after building a model (the AHS builders do
this automatically).  Checks are structural and cheap, plus a static
instantaneous-loop screen covering the *definite* cases (an activity
with no input gates, or a time-zero firing that provably makes no
progress); loops that depend on reachable markings beyond the initial
one are flagged as warnings by :mod:`repro.analysis` (rule ST003) and,
as a last resort, still abort the cascade at runtime in the simulator
and the state-space generator.
"""

from __future__ import annotations

from repro.san.marking import Marking, MarkingFunction
from repro.san.model import SANModel

__all__ = ["validate_model", "ModelValidationError"]


class ModelValidationError(ValueError):
    """The model is structurally invalid."""


def validate_model(model: SANModel) -> None:
    """Validate ``model``; raise :class:`ModelValidationError` on problems.

    Checks:

    * at least one activity;
    * every activity's places are registered in the model;
    * constant case probabilities of each activity sum to 1;
    * initial marking is valid for every place, and enabling predicates /
      constant rates evaluate without raising in the initial marking;
    * marking-dependent case probabilities of activities enabled in the
      initial marking evaluate without raising and sum to 1 there;
    * no duplicate place names among distinct places;
    * no statically certain instantaneous-activity loop: every
      instantaneous activity has at least one input gate, and the first
      instantaneous activity that would fire at time zero changes the
      marking when it does.
    """
    if not model.activities:
        raise ModelValidationError(f"model {model.name!r} has no activities")

    place_set = set(model.places)
    names: dict[str, object] = {}
    for place in model.places:
        previous = names.get(place.name)
        if previous is not None and previous is not place:
            raise ModelValidationError(
                f"model {model.name!r}: two distinct places named {place.name!r}"
            )
        names[place.name] = place

    for activity in model.activities:
        missing = (activity.reads() | activity.writes()) - place_set
        if missing:
            missing_names = sorted(p.name for p in missing)
            raise ModelValidationError(
                f"activity {activity.name!r} uses unregistered places: "
                f"{missing_names}"
            )
        constant_probs = [
            c.probability for c in activity.cases if isinstance(c.probability, float)
        ]
        if len(constant_probs) == len(activity.cases):
            total = sum(constant_probs)
            if abs(total - 1.0) > 1e-9:
                raise ModelValidationError(
                    f"activity {activity.name!r}: constant case probabilities "
                    f"sum to {total}, expected 1"
                )

    # An instantaneous activity with no input gates is enabled in every
    # marking, so the time-zero instantaneous scan can never converge.
    for activity in model.instantaneous_activities:
        if not activity.input_gates:
            raise ModelValidationError(
                f"instantaneous activity {activity.name!r} has no input "
                f"gates; it is enabled in every marking and would fire "
                f"forever"
            )

    # Smoke-evaluate predicates, rates and marking-dependent case
    # probabilities in the initial marking.
    marking = model.initial_marking()
    for activity in model.activities:
        try:
            enabled = activity.enabled(marking)
        except Exception as exc:  # noqa: BLE001 - reported as validation error
            raise ModelValidationError(
                f"activity {activity.name!r}: enabling predicate raised "
                f"{exc!r} in the initial marking"
            ) from exc
        if enabled and hasattr(activity, "rate_in") and activity.rate is not None:
            try:
                rate = activity.rate_in(marking)
            except Exception as exc:  # noqa: BLE001
                raise ModelValidationError(
                    f"activity {activity.name!r}: rate raised {exc!r} in the "
                    f"initial marking"
                ) from exc
            if rate < 0:
                raise ModelValidationError(
                    f"activity {activity.name!r}: negative initial rate {rate}"
                )
        if enabled and any(
            isinstance(case.probability, MarkingFunction)
            for case in activity.cases
        ):
            try:
                probs = [
                    case.probability_in(marking) for case in activity.cases
                ]
            except Exception as exc:  # noqa: BLE001
                raise ModelValidationError(
                    f"activity {activity.name!r}: case probability raised "
                    f"{exc!r} in the initial marking"
                ) from exc
            total = sum(probs)
            if abs(total - 1.0) > 1e-6:
                raise ModelValidationError(
                    f"activity {activity.name!r}: case probabilities sum to "
                    f"{total} in the initial marking, expected 1"
                )

    _check_time_zero_loop(model, marking)


def _check_time_zero_loop(model: SANModel, marking: Marking) -> None:
    """Static screen for a certain instantaneous loop at time zero.

    The simulator fires the highest-priority enabled instantaneous
    activity first; if one of that activity's selectable cases fires
    without changing the marking, the activity is immediately enabled
    again in the identical marking — a guaranteed infinite loop.
    """
    first_enabled = None
    for activity in model.ordered_instantaneous():
        try:
            if activity.enabled(marking):
                first_enabled = activity
                break
        except Exception:  # noqa: BLE001 - predicate errors reported above
            return
    if first_enabled is None:
        return
    try:
        probs = first_enabled.case_probabilities(marking)
    except Exception:  # noqa: BLE001 - probability errors reported above
        probs = None
    order = list(model.places)
    before = marking.freeze(order)
    for case_index in range(len(first_enabled.cases)):
        if probs is not None and probs[case_index] <= 0.0:
            continue  # this case cannot be selected at time zero
        scratch = marking.copy()
        try:
            first_enabled.fire(scratch, case_index)
        except Exception:  # noqa: BLE001 - firing errors surface at runtime
            continue
        if scratch.freeze(order) == before:
            raise ModelValidationError(
                f"instantaneous activity {first_enabled.name!r} fires at "
                f"time zero without changing the marking "
                f"(case {case_index}); the instantaneous scan would loop "
                f"forever"
            )
