"""Stochastic Activity Networks (SAN).

An open re-implementation of the SAN formalism used by the Möbius tool
[Sanders & Meyer 2001; Daly et al. 2000], which the reproduced paper builds
its Automated-Highway-System safety models in:

* *state*: :class:`~repro.san.places.Place` (integer marking) and
  :class:`~repro.san.places.ExtendedPlace` (structured marking — the paper's
  ``platoon1``/``platoon2`` arrays and severity-class arrays);
* *actions*: :class:`~repro.san.activities.TimedActivity` (distributed firing
  delay, marking-dependent rates, probabilistic *cases*) and
  :class:`~repro.san.activities.InstantaneousActivity`;
* *connectivity*: :class:`~repro.san.gates.InputGate` (enabling predicate +
  firing function) and :class:`~repro.san.gates.OutputGate`;
* *composition*: ``join`` and ``replicate`` (the Rep/Join operators of the
  paper's Figure 9) in :mod:`repro.san.composition`;
* *solution*: a discrete-event simulator with Möbius execution semantics
  (:mod:`repro.san.simulator`), and a state-space generator producing a CTMC
  for numerical transient analysis (:mod:`repro.san.statespace`).
"""

from repro.san.places import Place, ExtendedPlace
from repro.san.marking import Marking, GateView, MarkingFunction
from repro.san.gates import InputGate, OutputGate, input_arc, output_arc
from repro.san.activities import Case, TimedActivity, InstantaneousActivity
from repro.san.model import SANModel
from repro.san.composition import join, replicate
from repro.san.simulator import SANSimulator, MarkovJumpSimulator, SimulationRun
from repro.san.compiled import (
    ENGINES,
    CompiledJumpEngine,
    CompiledMarking,
    CompiledModel,
    compile_model,
    make_jump_engine,
)
from repro.san.batched import DEFAULT_BATCH_SIZE, BatchedJumpEngine
from repro.san.stepped import SteppedJumpEngine
from repro.san.multipoint import (
    MultiPointContext,
    MultiPointJob,
    tensor_compatible,
)
from repro.san.registry import (
    AdmissionResult,
    ModelSpec,
    admission_key,
    admit,
    get_model,
    list_models,
    register_model,
    unregister_model,
)
from repro.san.statespace import StateSpace, generate_state_space
from repro.san.rewards import RateReward, ImpulseReward, TransientEstimate
from repro.san.validation import validate_model, ModelValidationError
from repro.san.describe import describe_lowering, describe_model, to_dot

__all__ = [
    "Place",
    "ExtendedPlace",
    "Marking",
    "GateView",
    "MarkingFunction",
    "InputGate",
    "OutputGate",
    "input_arc",
    "output_arc",
    "Case",
    "TimedActivity",
    "InstantaneousActivity",
    "SANModel",
    "join",
    "replicate",
    "SANSimulator",
    "MarkovJumpSimulator",
    "SimulationRun",
    "ENGINES",
    "BatchedJumpEngine",
    "SteppedJumpEngine",
    "MultiPointContext",
    "MultiPointJob",
    "tensor_compatible",
    "DEFAULT_BATCH_SIZE",
    "CompiledJumpEngine",
    "CompiledMarking",
    "CompiledModel",
    "compile_model",
    "make_jump_engine",
    "AdmissionResult",
    "ModelSpec",
    "admission_key",
    "admit",
    "get_model",
    "list_models",
    "register_model",
    "unregister_model",
    "StateSpace",
    "generate_state_space",
    "RateReward",
    "ImpulseReward",
    "TransientEstimate",
    "validate_model",
    "ModelValidationError",
    "describe_lowering",
    "describe_model",
    "to_dot",
]
