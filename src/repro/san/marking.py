"""Markings (SAN state) and the views gate code reads/writes through."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.san.places import Place

__all__ = ["Marking", "GateView", "MarkingFunction"]


class Marking:
    """An assignment of values to places.

    Write tracking: every mutation records the place in :attr:`changed`,
    which the simulator uses to re-evaluate only the activities whose
    enabling could have been affected.
    """

    __slots__ = ("_values", "changed")

    def __init__(self, values: Mapping[Place, Any]) -> None:
        self._values: dict[Place, Any] = dict(values)
        self.changed: set[Place] = set()

    @classmethod
    def initial(cls, places: Iterable[Place]) -> "Marking":
        """Marking with every place at its declared initial value."""
        return cls({p: p.initial for p in places})

    # ------------------------------------------------------------------
    def get(self, place: Place) -> Any:
        """Current value of ``place``."""
        try:
            return self._values[place]
        except KeyError:
            raise KeyError(f"place {place.name!r} is not part of this marking")

    def set(self, place: Place, value: Any) -> None:
        """Assign ``value`` to ``place`` (validated by the place)."""
        if place not in self._values:
            raise KeyError(f"place {place.name!r} is not part of this marking")
        value = place.validate_value(value)
        if self._values[place] != value:
            self._values[place] = value
            self.changed.add(place)

    def places(self) -> Iterable[Place]:
        """The places of this marking."""
        return self._values.keys()

    def clear_changed(self) -> set[Place]:
        """Return and reset the set of places written since the last call."""
        changed, self.changed = self.changed, set()
        return changed

    def copy(self) -> "Marking":
        """Independent copy (used by splitting and state-space search)."""
        return Marking(self._values)

    def values_in(self, order: Iterable[Place]) -> list:
        """Values in the given place order (the compiled engine's loader).

        Raises
        ------
        KeyError
            If a requested place is not part of this marking.
        """
        values = self._values
        try:
            return [values[p] for p in order]
        except KeyError as exc:
            place = exc.args[0]
            raise KeyError(
                f"place {getattr(place, 'name', place)!r} is not part of "
                f"this marking"
            ) from None

    def freeze(self, order: list[Place]) -> tuple:
        """Hashable snapshot of the marking, in the given place order."""
        return tuple(self._values[p] for p in order)

    @classmethod
    def thaw(cls, frozen: tuple, order: list[Place]) -> "Marking":
        """Rebuild a marking from a frozen snapshot."""
        if len(frozen) != len(order):
            raise ValueError(
                f"frozen state has {len(frozen)} entries for {len(order)} places"
            )
        return cls(dict(zip(order, frozen)))

    def as_dict(self) -> dict[str, Any]:
        """Name-keyed snapshot for reports and debugging."""
        return {p.name: v for p, v in self._values.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{p.name}={v}" for p, v in self._values.items())
        return f"Marking({inner})"


class GateView:
    """Gate-local window onto a marking.

    Gate predicates and functions are written against *local* place names
    declared in the gate's binding — never against global place objects —
    so that a gate can be cloned for the Rep operator by rebinding.

    Examples
    --------
    ``g["CC"]`` reads the place bound to local name ``"CC"``;
    ``g["CC"] = 1`` writes it; ``g.inc("SM")`` / ``g.dec("SM")`` adjust
    integer markings.
    """

    __slots__ = ("_marking", "_binding")

    def __init__(self, marking: Marking, binding: Mapping[str, Place]) -> None:
        self._marking = marking
        self._binding = binding

    def _place(self, local: str) -> Place:
        try:
            return self._binding[local]
        except KeyError:
            raise KeyError(
                f"gate refers to undeclared local place {local!r}; "
                f"declared: {sorted(self._binding)}"
            )

    def __getitem__(self, local: str) -> Any:
        return self._marking.get(self._place(local))

    def __setitem__(self, local: str, value: Any) -> None:
        self._marking.set(self._place(local), value)

    def inc(self, local: str, amount: int = 1) -> None:
        """Add ``amount`` tokens to an integer place."""
        place = self._place(local)
        self._marking.set(place, self._marking.get(place) + amount)

    def dec(self, local: str, amount: int = 1) -> None:
        """Remove ``amount`` tokens from an integer place."""
        self.inc(local, -amount)

    def tuple_set(self, local: str, index: int, value: Any) -> None:
        """Replace one element of an extended place's tuple marking."""
        place = self._place(local)
        current = list(self._marking.get(place))
        current[index] = value
        self._marking.set(place, tuple(current))


class MarkingFunction:
    """A clonable marking-dependent scalar (rate or case probability).

    Wraps a pure function of a :class:`GateView` together with the binding
    naming the places it reads.  Cloning for the Rep operator substitutes
    the binding while keeping the function.
    """

    __slots__ = ("binding", "fn")

    def __init__(
        self, binding: Mapping[str, Place], fn: Callable[[GateView], float]
    ) -> None:
        self.binding = dict(binding)
        self.fn = fn

    def __call__(self, marking: Marking) -> float:
        return self.fn(GateView(marking, self.binding))

    def rebind(self, place_map: Mapping[Place, Place]) -> "MarkingFunction":
        """Copy with places substituted through ``place_map``."""
        new_binding = {
            local: place_map.get(place, place)
            for local, place in self.binding.items()
        }
        return MarkingFunction(new_binding, self.fn)

    def reads(self) -> set[Place]:
        """Places this function may read (conservative: all bound)."""
        return set(self.binding.values())

    def slot_binding(self, slot_of: Mapping[Place, int]) -> dict[str, int]:
        """Local name → slot index (compile-pass lowering of the binding)."""
        return {local: slot_of[place] for local, place in self.binding.items()}
