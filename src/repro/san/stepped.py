"""Stepped SAN execution: the select-and-fire loop lowered to array kernels.

The batched engine (:mod:`repro.san.batched`) vectorizes gate and rate
*evaluation* across a lockstep batch, but still walks the jump loop
per-event in Python: every firing pays a cursor row-switch, a scalar
``searchsorted``, per-write closure calls with per-write validation, and
an instantaneous-activity scan.  This module lowers the loop itself so
the Python-level iteration is **per batch step** rather than per event:

* holding times and selection uniforms are drawn per replication stream
  (bit-identity pins each row to its own
  :class:`~repro.stochastic.rng.RandomStream`), but activity selection is
  resolved for the whole step at once — a masked comparison against the
  cumulative-sum rate rows replays ``choice_index``'s left-to-right
  tie-break exactly (``(cumsum <= u).sum()`` ≡ ``bisect_right``);
* firing is fused: :func:`~repro.san.compiled.trace_fire_programs`
  precomputes per-(activity, case) **delta programs** — column writes of
  the form ``const`` or ``initial[slot] + delta`` — applied to all rows
  that fired the same case in one NumPy operation, with per-row Python
  values synchronised lazily (a ``stale`` bitmask per row) only when a
  scalar closure, stop predicate or export actually needs them;
* the instantaneous-activity scan and the stop predicate are lowered to
  column expressions where possible, so the per-event Python work for
  the common movement firings collapses to the two stream draws;
* masked time-advance: absorbed, deadlocked and horizon-crossed rows
  drop out of the step loop exactly as in the batched engine.

Equivalence contract: identical to the batched engine's — per stream,
runs are **bit-identical** to the compiled engine (draw order, IS
weights, stop times, final markings) at any batch size.  Every lowering
above is an exact replay: delta programs reproduce the compiled write
(and negative-marking error) semantics or fall back per row; the
instantaneous skip only elides scans that would provably fire nothing
(which draw nothing and write nothing); lowered stop predicates evaluate
the same integer comparisons over the matrix.  The one intentional
divergence is error *ordering* inside a single step when several rows
raise simultaneously (rows are processed grouped by activity rather than
by row index), and, as in the batched engine, re-evaluation timing of
model-bug errors (negative rates) may differ because changed-slot masks
are supersets of the compiled engine's.

Observers and rate rewards take the batched engine's paths unchanged
(per-row compiled delegation / the per-event batched loop), preserving
trace ordering, ``wants_deltas`` delta reporting and reward integrals.

See ``docs/engine_perf.md`` for measurements and guidance.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.san.batched import (
    BatchedJumpEngine,
    _build_tree,
    _CannotLower,
    _enumerate_paths,
    _lower_group,
    _Node,
    _tree_expr,
)
from repro.san.compiled import trace_fire_programs
from repro.san.simulator import SimulationRun, _RewardIntegrator

__all__ = ["SteppedJumpEngine"]


class _StopProbe:
    """Marking stand-in for tracing a stop predicate into a column expr.

    Only the read surface stop predicates actually use (``get``) is
    provided; anything else raises and aborts lowering, sending the
    predicate to the per-row path.
    """

    __slots__ = ("_slot_of", "_extended")

    def __init__(self, slot_of, extended: frozenset) -> None:
        self._slot_of = slot_of
        self._extended = extended

    def get(self, place) -> _Node:
        slot = self._slot_of.get(place)
        if slot is None:
            raise _CannotLower("unknown place in stop predicate")
        if slot in self._extended:
            raise _CannotLower("extended place in stop predicate")
        return _Node(lambda M, _s=slot: M[:, _s])


def _bool_rows(value, n_rows: int) -> np.ndarray:
    """Normalise a lowered expression's output to an (R,) bool array."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return np.full(n_rows, bool(arr != 0))
    return (arr != 0).reshape(n_rows, -1).any(axis=1)


#: per-part table size cap — a span beyond this falls back to the
#: direct tree refresh (8 MiB of float64 per part at the cap)
_SPAN_CAP = 1 << 20


class _PartMemo:
    """Direct-address value table over one lowered part's read *roles*.

    A lowered group fuses 2n replicas of the same gate/rate code; each
    member's value is a pure function of the slots its binding maps the
    code's place names to.  Because the code (and hence the traced name
    set) is identical across members, the name-aligned slot vectors —
    the *roles* — give a sound shared key: ``role values → value`` is
    the same map for every member.  Roles whose slot is the same for
    all members (the shared occupancy counters) contribute one column
    read per refresh; per-member roles (per-vehicle flags) contribute a
    ``(rows, G)`` gather.  The mixed-radix index over per-role value
    bounds addresses a dense table, so a warm refresh is a handful of
    gathers with no tree evaluation at all.

    Bounds adapt: a value at or beyond a role's bound grows the bound
    and rebuilds (clears) the table — rare, since the paper models'
    occupancies are bounded by the platoon size.  A span above
    ``_SPAN_CAP`` reports ``None`` and the owner reverts to the direct
    refresh for good.
    """

    __slots__ = ("member_slots", "member_keys", "shared_slots", "bounds",
                 "strides", "table", "is_float", "dead", "span", "defer")

    def __init__(self, roles: list, is_float: bool,
                 defer: bool = False) -> None:
        # dedupe identical roles (a name bound twice to the same slots)
        seen: set = set()
        unique = []
        for role in roles:
            key = role.tobytes()
            if key not in seen:
                seen.add(key)
                unique.append(role)
        self.member_slots = [
            role for role in unique if (role != role[0]).any()
        ]
        # cache key per member role: the same per-vehicle flag role is
        # read by many groups, so its gather is shared within a refresh
        self.member_keys = [role.tobytes() for role in self.member_slots]
        self.shared_slots = [
            int(role[0]) for role in unique if not (role != role[0]).any()
        ]
        self.bounds = [2] * (len(self.member_slots) + len(self.shared_slots))
        self.is_float = is_float
        #: diagnose-mode flag: derive spans/strides but never allocate
        #: the backing array (the static analyzer only reads the specs)
        self.defer = defer
        self.strides: list = []
        self.table = None
        self.span = 1
        self.dead = False
        self._rebuild()

    def _rebuild(self) -> bool:
        span = 1
        strides = []
        for bound in self.bounds:
            strides.append(span)
            span *= bound
        self.span = span
        if span > _SPAN_CAP:
            self.dead = True
            self.table = None
            return False
        self.strides = strides
        if self.defer:
            self.table = None
        elif self.is_float:
            self.table = np.full(span, np.nan, dtype=np.float64)
        else:
            # 0/1 cached predicate values; 2 marks a never-seen key
            self.table = np.full(span, 2, dtype=np.uint8)
        return True

    def index(self, matrix, rows, cache: dict):
        """Mixed-radix table index per (row, member) — ``(a,)`` when all
        roles are shared, ``(a, G)`` otherwise, ``None`` once dead.

        ``cache`` shares gathered shared-slot columns (and their maxima)
        across every part refreshed for the same row set within one
        refresh call — the AHS groups all key on the same few occupancy
        counters, so most gathers hit it.
        """
        if self.dead:
            return None
        n_member = len(self.member_slots)
        signature = None
        if not self.member_slots:
            # fully-shared parts with the same slots converge to the same
            # bounds (they see the same data), so their mixed-radix index
            # is identical — compute it once per refresh call
            signature = (tuple(self.shared_slots), tuple(self.bounds))
            memoised = cache.get(signature)
            if memoised is not None:
                return memoised
        rows2 = cache.get("rows2")
        if rows2 is None:
            rows2 = rows[:, None]
            cache["rows2"] = rows2
        while True:
            grow = False
            vals_member = []
            for k, slots in enumerate(self.member_slots):
                entry = cache.get(self.member_keys[k])
                if entry is None:
                    v = matrix[rows2, slots]
                    entry = (v, int(v.max()) if v.size else 0)
                    cache[self.member_keys[k]] = entry
                v, top = entry
                if top >= self.bounds[k]:
                    self.bounds[k] = top + 2
                    grow = True
                vals_member.append(v)
            vals_shared = []
            for j, slot in enumerate(self.shared_slots):
                entry = cache.get(slot)
                if entry is None:
                    v = matrix[rows, slot]
                    entry = (v, int(v.max()) if v.size else 0)
                    cache[slot] = entry
                v, top = entry
                if top >= self.bounds[n_member + j]:
                    self.bounds[n_member + j] = top + 2
                    grow = True
                vals_shared.append(v)
            if not grow:
                break
            if not self._rebuild():
                return None
        idx_shared = None
        for j, v in enumerate(vals_shared):
            stride = self.strides[n_member + j]
            term = v if stride == 1 else v * stride
            idx_shared = term if idx_shared is None else idx_shared + term
        idx_member = None
        for k, v in enumerate(vals_member):
            stride = self.strides[k]
            term = v if stride == 1 else v * stride
            idx_member = term if idx_member is None else idx_member + term
        if idx_member is None:
            if idx_shared is None:
                return np.zeros(len(rows), dtype=np.int64)
            if signature is not None:
                # bounds may have grown above — key under the final ones
                cache[tuple(self.shared_slots), tuple(self.bounds)] = (
                    idx_shared
                )
            return idx_shared
        if idx_shared is not None:
            idx_member = idx_member + idx_shared[:, None]
        return idx_member


class _TableGroup:
    """Tabulated refresh for one lowered group (stepped engine only).

    Splits the group into its gate conjunction (a 0/1 table) and its
    rate expression (a float table), each direct-addressed by
    :class:`_PartMemo` keys.  Missing entries are filled by evaluating
    the group's own lowered trees on just the missing rows, so every
    cached value holds exactly the bits the direct full-batch refresh
    would produce (elementwise ufuncs are bitwise shape-independent),
    and the per-step work in the steady state collapses to column
    gathers, two table lookups and one ``where``.

    Parity notes: the negative-rate guard runs per step on the gathered
    values (gate-masked, alive rows only) exactly like the direct
    refresh; a model whose rate evaluates to NaN never caches (NaN is
    the miss sentinel), degrading that pathological case to per-step
    re-evaluation with unchanged semantics.
    """

    __slots__ = ("group", "gate", "rate", "direct")

    def __init__(self, compiled, group, extended: frozenset,
                 defer: bool = False) -> None:
        self.group = group
        self.gate: Optional[_PartMemo] = None
        self.rate: Optional[_PartMemo] = None
        self.direct = False
        members = [compiled.timed[i] for i in group.indices]
        try:
            gate_roles, rate_roles = self._derive_roles(
                compiled.slot_of, members, extended
            )
        except (_CannotLower, KeyError, TypeError):
            self.direct = True
            return
        if group.gate_exprs:
            self.gate = _PartMemo(gate_roles, is_float=False, defer=defer)
        if group.rate_expr is not None:
            self.rate = _PartMemo(rate_roles, is_float=True, defer=defer)
        if (self.gate is not None and self.gate.dead) or (
            self.rate is not None and self.rate.dead
        ):
            self.direct = True

    @staticmethod
    def _derive_roles(slot_of, members, extended: frozenset) -> tuple:
        """Name-aligned per-role slot vectors for gates and rate.

        The trace runs once on the template member; the read name set
        is code-determined (path enumeration never looks at values), so
        the other members' slots come straight from their bindings.
        """
        template = members[0]
        gate_roles: list = []
        for position in range(len(template.input_gates)):
            binding = template.input_gates[position].slot_binding(slot_of)
            _expr, reads = _lower_group(
                template.input_gates[position].predicate, [binding], extended
            )
            names = sorted(
                name for name, slot in binding.items() if slot in reads
            )
            if reads - {binding[name] for name in names}:
                raise _CannotLower("gate read outside its binding")
            bindings = [
                m.input_gates[position].slot_binding(slot_of)
                for m in members
            ]
            for name in names:
                gate_roles.append(np.array(
                    [b[name] for b in bindings], dtype=np.intp
                ))
        rate_roles: list = []
        _constant, rate_fn = template.exponential_parts()
        if rate_fn is not None:
            binding = rate_fn.slot_binding(slot_of)
            _expr, reads = _lower_group(rate_fn.fn, [binding], extended)
            names = sorted(
                name for name, slot in binding.items() if slot in reads
            )
            if reads - {binding[name] for name in names}:
                raise _CannotLower("rate read outside its binding")
            bindings = [
                m.exponential_parts()[1].slot_binding(slot_of)
                for m in members
            ]
            for name in names:
                rate_roles.append(np.array(
                    [b[name] for b in bindings], dtype=np.intp
                ))
        return gate_roles, rate_roles

    def refresh(self, matrix, rows, Ro, Rb, alive_mask,
                has_bias: bool, cache: Optional[dict] = None,
                restrict: bool = False) -> None:
        """Refresh the group's rate columns for ``rows``.

        ``restrict`` keeps every write (including the direct-tree
        escapes) to ``rows`` — required by multi-point tensors, where a
        full-matrix refresh would clobber sibling points' rate lanes.
        The tabulated path is row-restricted either way, so the flag
        never changes what a single-point batch computes.
        """
        group = self.group
        if self.direct:
            if restrict:
                group.refresh_rows(matrix, rows, Ro, Rb, has_bias)
            else:
                group.refresh(matrix, Ro, Rb, alive_mask, has_bias)
            return
        if cache is None:
            cache = {}
        gate_idx = None
        if self.gate is not None:
            gate_idx = self.gate.index(matrix, rows, cache)
            if gate_idx is None:
                self.direct = True
                if restrict:
                    group.refresh_rows(matrix, rows, Ro, Rb, has_bias)
                else:
                    group.refresh(matrix, Ro, Rb, alive_mask, has_bias)
                return
        rate_idx = None
        if self.rate is not None:
            rate_idx = self.rate.index(matrix, rows, cache)
            if rate_idx is None:
                self.direct = True
                if restrict:
                    group.refresh_rows(matrix, rows, Ro, Rb, has_bias)
                else:
                    group.refresh(matrix, Ro, Rb, alive_mask, has_bias)
                return

        en = self.gate.table[gate_idx] if self.gate is not None else None
        rt = self.rate.table[rate_idx] if self.rate is not None else None
        miss = None
        if en is not None:
            miss = en == 2
        if rt is not None:
            rt_miss = np.isnan(rt)
            if miss is None:
                miss = rt_miss
            elif miss.shape == rt_miss.shape:
                miss = miss | rt_miss
            else:  # one side per-row, the other per-(row, member)
                miss = (
                    miss.reshape(len(rows), -1).any(axis=1)
                    | rt_miss.reshape(len(rows), -1).any(axis=1)
                )
        if miss is not None and miss.any():
            if miss.ndim == 2:
                local = np.unique(np.nonzero(miss)[0])
            else:
                local = np.flatnonzero(miss)
            self._fill(matrix, rows, local, gate_idx, rate_idx)
            if en is not None:
                en = self.gate.table[gate_idx]
            if rt is not None:
                rt = self.rate.table[rate_idx]

        if rt is None:
            enabled = en != 0
            if enabled.ndim == 1:
                enabled = enabled[:, None]
            block = np.where(enabled, group.eff_consts, 0.0)
        else:
            if rt.ndim == 1:
                rt = rt[:, None]
            positive = rt > 0.0
            negative = rt < 0.0
            if en is not None:
                enabled = en != 0
                if enabled.ndim == 1:
                    enabled = enabled[:, None]
                positive = positive & enabled
                negative = negative & enabled
            if negative.any():
                shape = (len(rows), len(group.indices))
                flat = np.broadcast_to(negative, shape)
                row, col = divmod(int(np.argmax(flat)), shape[1])
                rates = np.broadcast_to(rt, shape)
                raise ValueError(
                    f"activity {group.names[col]!r}: negative rate "
                    f"{float(rates[row, col])}"
                )
            block = np.where(positive, rt, 0.0)
        rows2 = cache.get("rows2")
        if rows2 is None:
            rows2 = rows[:, None]
            cache["rows2"] = rows2
        Ro[rows2, group.indices] = block
        if has_bias:
            if group.any_factor:
                Rb[rows2, group.indices] = block * group.factors
            else:
                Rb[rows2, group.indices] = block

    def _fill(self, matrix, rows, local, gate_idx, rate_idx) -> None:
        """Evaluate the group's trees on the missing rows and cache."""
        group = self.group
        sub = matrix[rows[local]]
        shape = (len(local), len(group.indices))
        if self.gate is not None:
            enabled = None
            for expr in group.gate_exprs:
                gate = np.asarray(expr(sub)) != 0
                enabled = gate if enabled is None else (enabled & gate)
            if enabled.ndim != 2:
                enabled = np.broadcast_to(enabled, shape)
            target = gate_idx[local]
            if target.ndim == 1:
                # shared-only roles: every member caches the same value
                self.gate.table[target] = enabled[:, 0]
            else:
                self.gate.table[target] = enabled
        if self.rate is not None:
            rates = np.asarray(group.rate_expr(sub), dtype=np.float64)
            if rates.ndim != 2:
                rates = np.broadcast_to(rates, shape)
            target = rate_idx[local]
            if target.ndim == 1:
                self.rate.table[target] = rates[:, 0]
            else:
                self.rate.table[target] = rates


class SteppedJumpEngine(BatchedJumpEngine):
    """Per-batch-step lockstep executor (see module docstring).

    Accepts exactly the :class:`BatchedJumpEngine` constructor surface
    and produces bit-identical results; the difference is purely
    throughput on models whose firings lower to delta programs (all of
    the built-in AHS models' movement activities do).
    """

    #: engine label reported in runtime telemetry footers
    engine_name = "stepped"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._bind_stepped()

    # ------------------------------------------------------------------
    def _bind_stepped(self) -> None:
        compiled = self.compiled
        #: per timed activity, per case: FireProgram or None (fallback)
        self._fire_programs = [
            trace_fire_programs(compiled, activity)
            for activity in compiled.timed
        ]
        self._insta_lowered = self._lower_insta()
        extended = frozenset(
            slot for slot, place in enumerate(compiled.places)
            if place.is_extended
        )
        #: per lowered group, its tabulated refresh (tables persist
        #: across batches — read-value combinations recur between sweep
        #: points, so later points start warm)
        self._tables = [
            _TableGroup(compiled, group, extended, defer=self.diagnose)
            for group in self._lowered
        ]
        #: table-memoised insta-gate scan: ``read values -> any enabled``
        #: keyed the same way as the refresh tables (the severity gates
        #: read a handful of shared class counters, so the key space is
        #: tiny); None when the gates didn't lower or the span is hopeless
        self._insta_memo: Optional[_PartMemo] = None
        if self._insta_lowered is not None and self._insta_read_slots:
            memo = _PartMemo(
                [
                    np.array([slot], dtype=np.intp)
                    for slot in sorted(self._insta_read_slots)
                ],
                is_float=False,
                defer=self.diagnose,
            )
            if not memo.dead:
                self._insta_memo = memo
        #: entry stabilisation is deterministic (and so broadcastable
        #: from the first row) exactly when no instantaneous activity
        #: can draw a case — single-case activities never touch the
        #: stream, and all rows share the same initial marking
        self._insta_single_case = all(
            len(activity.cases) == 1 for activity in compiled.instantaneous
        )
        # stop-predicate lowering cache: id → (predicate, expr or None);
        # the strong predicate reference prevents id reuse
        self._stop_cache: dict[int, tuple] = {}

    def _lower_insta(self) -> Optional[list]:
        """Per instantaneous activity, its lowered gate conjunction.

        ``None`` when any activity resists lowering (or is gateless,
        i.e. unconditionally enabled): the conservative changed-mask
        trigger then scans exactly like the batched engine.
        """
        compiled = self.compiled
        slot_of = compiled.slot_of
        extended = frozenset(
            slot for slot, place in enumerate(compiled.places)
            if place.is_extended
        )
        per_activity: list[list[Callable]] = []
        reads_union: set[int] = set()
        self._insta_read_slots: frozenset = frozenset()
        for activity in compiled.instantaneous:
            if not activity.input_gates:
                return None
            gate_exprs = []
            try:
                for gate in activity.input_gates:
                    expr, reads = _lower_group(
                        gate.predicate,
                        [gate.slot_binding(slot_of)],
                        extended,
                    )
                    gate_exprs.append(expr)
                    reads_union |= reads
            except _CannotLower:
                return None
            per_activity.append(gate_exprs)
        self._insta_read_slots = frozenset(reads_union)
        return per_activity

    def _any_insta_enabled(self, sub: np.ndarray, n_rows: int) -> np.ndarray:
        """(R,) bool: rows where some instantaneous activity is enabled."""
        any_enabled: Optional[np.ndarray] = None
        for gate_exprs in self._insta_lowered:  # type: ignore[union-attr]
            act: Optional[np.ndarray] = None
            for expr in gate_exprs:
                gate = _bool_rows(expr(sub), n_rows)
                act = gate if act is None else (act & gate)
            any_enabled = act if any_enabled is None else (any_enabled | act)
        if any_enabled is None:  # no instantaneous activities at all
            return np.zeros(n_rows, dtype=bool)
        return any_enabled

    def _insta_enabled_rows(self, matrix, rows: np.ndarray) -> np.ndarray:
        """(len(rows),) bool: some instantaneous activity enabled, per row.

        Served from the insta memo table where possible (misses evaluate
        the lowered gate trees on just the missing rows, so cached bits
        match direct evaluation exactly); falls back to full-matrix
        evaluation once the memo dies at the span cap.
        """
        memo = self._insta_memo
        if memo is not None:
            idx = memo.index(matrix, rows, {})
            if idx is None:
                self._insta_memo = None
            else:
                vals = memo.table[idx]
                miss = vals == 2
                if miss.any():
                    local = np.flatnonzero(miss)
                    sub = matrix[rows[local]]
                    memo.table[idx[local]] = self._any_insta_enabled(
                        sub, len(local)
                    )
                    vals = memo.table[idx]
                return vals != 0
        return self._any_insta_enabled(matrix, matrix.shape[0])[rows]

    def _lowered_stop(self, stop_predicate) -> Optional[Callable]:
        """Column expression for ``stop_predicate``, or ``None``."""
        if stop_predicate is None:
            return None
        key = id(stop_predicate)
        entry = self._stop_cache.get(key)
        if entry is not None and entry[0] is stop_predicate:
            return entry[1]
        compiled = self.compiled
        extended = frozenset(
            slot for slot, place in enumerate(compiled.places)
            if place.is_extended
        )
        probe = _StopProbe(compiled.slot_of, extended)
        try:
            paths = _enumerate_paths(stop_predicate, probe)
            expr, _const = _tree_expr(_build_tree(paths, 0))
        except _CannotLower:
            expr = None
        self._stop_cache[key] = (stop_predicate, expr)
        return expr

    # ------------------------------------------------------------------
    def _refresh_lowered(self, changed_mask: int, matrix, Ro, Rb, alive_mask,
                         has_bias: bool) -> None:
        """Memoized variant of the batched refresh (alive rows only).

        Dead rows' rate lanes go stale, which is unobservable: every
        consumer (cumulative sums, selection clamp-back, weight ratios)
        indexes alive rows exclusively.
        """
        lowered_dep = self._lowered_dep
        affected = 0
        while changed_mask:
            low = changed_mask & -changed_mask
            affected |= lowered_dep[low.bit_length() - 1]
            changed_mask ^= low
        if not affected:
            return
        rows = np.flatnonzero(alive_mask)
        tables = self._tables
        cache: dict = {}
        with np.errstate(all="ignore"):
            while affected:
                low = affected & -affected
                tables[low.bit_length() - 1].refresh(
                    matrix, rows, Ro, Rb, alive_mask, has_bias, cache,
                )
                affected ^= low

    # ------------------------------------------------------------------
    def lowering_stats(self) -> dict[str, int]:
        """Batched stats plus the stepped fire/stop/insta coverage."""
        stats = super().lowering_stats()
        cases = lowered = 0
        for programs in self._fire_programs:
            cases += len(programs)
            lowered += sum(1 for program in programs if program is not None)
        stats["fire_cases"] = cases
        stats["fire_lowered"] = lowered
        stats["insta_lowered"] = int(self._insta_lowered is not None)
        stats["groups_tabulated"] = sum(
            1 for table in self._tables if not table.direct
        )
        return stats

    # ------------------------------------------------------------------
    def run_batch(
        self,
        streams,
        horizon: float,
        stop_predicate=None,
        rate_rewards=None,
    ) -> list[SimulationRun]:
        """Advance one replication per stream, one batch step at a time.

        Observed runs delegate per row to the compiled engine and runs
        with rate rewards take the batched per-event loop (both via
        :class:`BatchedJumpEngine`), keeping their contracts intact.
        """
        self._require_runtime()
        if self.observer is not None or rate_rewards:
            return super().run_batch(
                streams, horizon, stop_predicate, rate_rewards
            )
        n_rows = len(streams)
        if n_rows == 0:
            return []
        compiled = self.compiled
        cursor = self._cursor
        n_acts = self._n
        has_bias = self._has_bias
        insta_reads = compiled.insta_reads_mask
        have_insta = bool(self._insta)
        insta_lowered = self._insta_lowered
        stop_expr = self._lowered_stop(stop_predicate)
        fire_programs = self._fire_programs
        choosers = self._choosers
        firers = self._firers

        rows = [list(compiled.initial_values) for _ in range(n_rows)]
        matrix = np.zeros((n_rows, compiled.n_slots), dtype=np.int64,
                          order="F")
        for slot, mirrored in enumerate(cursor._mirror):
            if mirrored:
                matrix[:, slot] = compiled.initial_values[slot]
        cursor.bind_batch(rows, matrix)

        Ro = np.zeros((n_rows, n_acts), dtype=np.float64)
        Rb = np.zeros((n_rows, n_acts), dtype=np.float64) if has_bias else Ro
        alive_mask = np.zeros(n_rows, dtype=bool)

        results: list[Optional[SimulationRun]] = [None] * n_rows
        now = [0.0] * n_rows
        weights = [1.0] * n_rows
        firings = [0] * n_rows
        # stepped runs inline only without rate rewards; the integrals
        # are the same empty dict the batched engine would produce
        integrators = [_RewardIntegrator(None) for _ in range(n_rows)]
        #: per-row bitmask of matrix slots not yet copied back into the
        #: exact Python row values (delta programs write the matrix only)
        stale = [0] * n_rows
        changed_masks = [0] * n_rows
        fb_count = len(self._fb_indices)
        fb_reads = [[0] * fb_count for _ in range(n_rows)]
        fb_union = [0] * n_rows
        any_fb = fb_count > 0

        def sync(row: int) -> None:
            mask = stale[row]
            if mask:
                values = rows[row]
                while mask:
                    low = mask & -mask
                    slot = low.bit_length() - 1
                    values[slot] = int(matrix[row, slot])
                    mask ^= low
                stale[row] = 0

        def finalize(row: int, end_time: float, stopped: bool,
                     stop_time: float) -> None:
            alive_mask[row] = False
            sync(row)
            cursor.set_row(row)
            cursor.changed_mask = 0
            results[row] = SimulationRun(
                end_time=end_time,
                stopped=stopped,
                stop_time=stop_time,
                weight=weights[row],
                firings=firings[row],
                final_marking=cursor.export(),
                reward_integrals=integrators[row].integrals,
            )

        # --- batch entry: stabilise, time-zero absorption, refresh ----
        # With only single-case instantaneous activities the entry
        # stabilisation draws nothing and every row starts from the same
        # initial marking, so row 0's stabilised state is every row's:
        # broadcast it instead of re-scanning per row (rows' streams are
        # untouched either way, so the replay is exact).
        broadcast = self._insta_single_case and n_rows > 1
        if broadcast:
            cursor.set_row(0)
            cursor.changed_mask = 0
            self._stabilize(streams[0])
            cursor.changed_mask = 0
            base_values = rows[0]
            for row in range(1, n_rows):
                rows[row][:] = base_values
            matrix[1:] = matrix[0]
        alive: list[int] = []
        for row in range(n_rows):
            cursor.set_row(row)
            cursor.changed_mask = 0
            if not broadcast:
                self._stabilize(streams[row])
                cursor.changed_mask = 0
            if stop_predicate is not None and stop_predicate(cursor):
                finalize(row, 0.0, True, 0.0)
            elif horizon <= 0.0:
                finalize(row, horizon, False, math.inf)
            else:
                alive_mask[row] = True
                alive.append(row)
        if alive:
            rows_alive = np.array(alive, dtype=np.intp)
            entry_cache: dict = {}
            with np.errstate(all="ignore"):
                for table in self._tables:
                    table.refresh(matrix, rows_alive, Ro, Rb, alive_mask,
                                  has_bias, entry_cache)
            if any_fb:
                for row in alive:
                    cursor.set_row(row)
                    self._refresh_fallback_row(row, -1, fb_reads[row],
                                               Ro, Rb)
                    fb_union[row] = self._fold_union(fb_reads[row])
                    cursor.changed_mask = 0

        # --- batch-step loop ------------------------------------------
        while alive:
            full = len(alive) == n_rows
            Cb = np.cumsum(Rb if full else Rb[alive], axis=1)
            if has_bias:
                Co = np.cumsum(Ro if full else Ro[alive], axis=1)

            # phase 1: per-row draws (a row's exponential and selection
            # uniform stay consecutive on its own stream), deadlock and
            # horizon-crossing exits
            fired_rows: list[int] = []
            fired_pos: list[int] = []
            fired_u: list[float] = []
            fired_tb: list[float] = []
            fired_tot: list[float] = []
            fired_hold: list[float] = []
            for position, row in enumerate(alive):
                stream = streams[row]
                total_biased = float(Cb[position, -1])
                total = (
                    float(Co[position, -1]) if has_bias else total_biased
                )
                if total <= 0.0:
                    # deadlock: the marking persists until the horizon
                    finalize(row, now[row], False, math.inf)
                    continue
                holding = stream.exponential(total_biased)
                if now[row] + holding > horizon:
                    if has_bias:
                        weights[row] *= math.exp(
                            -(total - total_biased) * (horizon - now[row])
                        )
                    now[row] = horizon
                    finalize(row, horizon, False, math.inf)
                    continue
                u = stream.random() * total_biased
                now[row] += holding
                firings[row] += 1
                changed_masks[row] = 0
                fired_rows.append(row)
                fired_pos.append(position)
                fired_u.append(u)
                if has_bias:
                    fired_tb.append(total_biased)
                    fired_tot.append(total)
                    fired_hold.append(holding)
            self._kernel_events += len(fired_rows)
            if not fired_rows:
                alive = []
                continue

            # phase 2: vectorized selection — count of cumulative sums
            # <= u replays searchsorted(side="right") ≡ bisect_right,
            # with the same numerical-edge clamp-back as the other
            # engines (u == total selects the last enabled activity)
            pos_arr = np.array(fired_pos, dtype=np.intp)
            u_arr = np.array(fired_u, dtype=np.float64)
            indices = (Cb[pos_arr] <= u_arr[:, None]).sum(axis=1)
            for k in np.nonzero(indices >= n_acts)[0]:
                row = fired_rows[k]
                index = n_acts - 1
                while index > 0 and Rb[row, index] <= 0.0:
                    index -= 1
                indices[k] = index
            if has_bias:
                for k, row in enumerate(fired_rows):
                    index = int(indices[k])
                    weights[row] *= (
                        float(Ro[row, index]) / float(Rb[row, index])
                    ) * math.exp(
                        -(fired_tot[k] - fired_tb[k]) * fired_hold[k]
                    )
            # (without bias the weight factor is exactly 1.0: Ro is Rb,
            # x/x == 1.0 and exp(-0.0·h) == 1.0 — skipping it is exact)

            # phase 3: fused firing, grouped by (activity, case)
            groups: dict[int, list[int]] = {}
            for k in range(len(fired_rows)):
                groups.setdefault(int(indices[k]), []).append(k)
            for index, members in groups.items():
                chooser = choosers[index]
                if chooser is None:
                    by_case = {0: members}
                else:
                    by_case = {}
                    for k in members:
                        row = fired_rows[k]
                        sync(row)
                        cursor.set_row(row)
                        by_case.setdefault(
                            chooser(streams[row]), []
                        ).append(k)
                programs = fire_programs[index]
                for case, ks in by_case.items():
                    program = programs[case]
                    if program is not None:
                        if len(ks) <= 2:
                            # tiny groups: plain-integer writes beat the
                            # fancy-indexing overhead; per-row failure
                            # replays just that row (the batch variant
                            # replays the whole group through the same
                            # closures with identical values and the
                            # same first-offender error)
                            write_mask = program.write_mask
                            for k in ks:
                                row = fired_rows[k]
                                if program.apply_row(matrix, row):
                                    stale[row] |= write_mask
                                    changed_masks[row] |= write_mask
                                else:
                                    sync(row)
                                    cursor.set_row(row)
                                    cursor.changed_mask = 0
                                    firers[index](case)
                                    changed_masks[row] |= (
                                        cursor.clear_changed_mask()
                                    )
                            continue
                        krows = np.fromiter(
                            (fired_rows[k] for k in ks),
                            dtype=np.intp,
                            count=len(ks),
                        )
                        if program.apply(matrix, krows):
                            write_mask = program.write_mask
                            for k in ks:
                                row = fired_rows[k]
                                stale[row] |= write_mask
                                changed_masks[row] |= write_mask
                            continue
                    # unlowered case, or a row would validate-fail:
                    # compiled closures reproduce the exact semantics
                    for k in ks:
                        row = fired_rows[k]
                        sync(row)
                        cursor.set_row(row)
                        cursor.changed_mask = 0
                        firers[index](case)
                        changed_masks[row] |= cursor.clear_changed_mask()

            # phase 4: instantaneous stabilisation — scan only the rows
            # whose changes can have enabled an instantaneous activity
            # (and, when the gates lower, only rows where one actually is
            # enabled: a scan that fires nothing draws and writes
            # nothing, so skipping it is exact)
            if have_insta:
                triggered = [
                    row for row in fired_rows
                    if changed_masks[row] & insta_reads
                ]
                if triggered:
                    if insta_lowered is not None:
                        with np.errstate(all="ignore"):
                            enabled = self._insta_enabled_rows(
                                matrix,
                                np.asarray(triggered, dtype=np.intp),
                            )
                        scan_rows = [
                            row for row, ok in zip(triggered, enabled)
                            if ok
                        ]
                    else:
                        scan_rows = triggered
                    for row in scan_rows:
                        sync(row)
                        cursor.set_row(row)
                        cursor.changed_mask = 0
                        self._stabilize(streams[row])
                        changed_masks[row] |= cursor.clear_changed_mask()

            # phase 5: absorption (lowered where possible), horizon,
            # fallback-rate refresh for survivors, lowered refresh
            if stop_predicate is not None:
                if stop_expr is not None:
                    with np.errstate(all="ignore"):
                        hit = _bool_rows(stop_expr(matrix), n_rows)
                    for row in fired_rows:
                        if hit[row]:
                            finalize(row, now[row], True, now[row])
                else:
                    for row in fired_rows:
                        sync(row)
                        cursor.set_row(row)
                        if stop_predicate(cursor):
                            finalize(row, now[row], True, now[row])

            changed_union = 0
            survivors: list[int] = []
            for row in fired_rows:
                if results[row] is not None:
                    continue
                if now[row] >= horizon:
                    finalize(row, now[row], False, math.inf)
                    continue
                changed = changed_masks[row]
                if changed:
                    changed_union |= changed
                    if any_fb and changed & fb_union[row]:
                        sync(row)
                        cursor.set_row(row)
                        reads = fb_reads[row]
                        if self._refresh_fallback_row(row, changed, reads,
                                                      Ro, Rb):
                            fb_union[row] = self._fold_union(reads)
                survivors.append(row)
            alive = survivors
            if changed_union and alive and self._lowered:
                self._refresh_lowered(changed_union, matrix, Ro, Rb,
                                      alive_mask, has_bias)
        return results  # type: ignore[return-value]
