"""Timed and instantaneous activities with probabilistic cases."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from repro.stochastic.distributions import Distribution, Exponential
from repro.stochastic.rng import RandomStream
from repro.san.gates import InputGate, OutputGate
from repro.san.marking import Marking, MarkingFunction
from repro.san.places import Place

__all__ = ["Case", "TimedActivity", "InstantaneousActivity"]

RateLike = Union[float, int, MarkingFunction]
ProbLike = Union[float, int, MarkingFunction]


class Case:
    """One probabilistic outcome of an activity completion.

    Parameters
    ----------
    probability:
        A constant or a :class:`MarkingFunction` evaluated in the marking at
        completion time.  Probabilities of an activity's cases must sum to 1
        in every reachable marking (checked at runtime with tolerance).
    output_gates:
        Output gates executed (in order) when this case is selected.
    label:
        Optional diagnostic label ("success", "failure", ...).
    """

    __slots__ = ("probability", "output_gates", "label")

    def __init__(
        self,
        probability: ProbLike,
        output_gates: Sequence[OutputGate] = (),
        label: str = "",
    ) -> None:
        if not isinstance(probability, MarkingFunction):
            probability = float(probability)
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"constant case probability must be in [0,1], got {probability}"
                )
        self.probability = probability
        self.output_gates = list(output_gates)
        self.label = label

    def probability_in(self, marking: Marking) -> float:
        """Evaluate the case probability in ``marking``."""
        if isinstance(self.probability, MarkingFunction):
            value = float(self.probability(marking))
            if not -1e-9 <= value <= 1.0 + 1e-9:
                raise ValueError(
                    f"case {self.label!r}: marking-dependent probability "
                    f"{value} outside [0,1]"
                )
            return min(max(value, 0.0), 1.0)
        return self.probability

    def rebind(self, place_map: Mapping[Place, Place]) -> "Case":
        """Clone with places substituted (Rep support)."""
        prob = self.probability
        if isinstance(prob, MarkingFunction):
            prob = prob.rebind(place_map)
        return Case(
            prob, [g.rebind(place_map) for g in self.output_gates], self.label
        )

    def places(self) -> set[Place]:
        """All places this case's gates or probability touch."""
        result: set[Place] = set()
        if isinstance(self.probability, MarkingFunction):
            result |= self.probability.reads()
        for gate in self.output_gates:
            result |= gate.places()
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Case({self.label or self.probability!r})"


class _ActivityBase:
    """Shared mechanics of timed and instantaneous activities."""

    __slots__ = ("name", "input_gates", "cases")

    def __init__(
        self,
        name: str,
        input_gates: Sequence[InputGate],
        cases: Optional[Sequence[Case]],
    ) -> None:
        self.name = name
        self.input_gates = list(input_gates)
        self.cases = list(cases) if cases else [Case(1.0)]
        if not self.cases:
            raise ValueError(f"activity {name!r} needs at least one case")

    # ------------------------------------------------------------------
    def enabled(self, marking: Marking) -> bool:
        """True when every input gate predicate holds."""
        return all(gate.holds(marking) for gate in self.input_gates)

    def case_probabilities(self, marking: Marking) -> list[float]:
        """Evaluate all case probabilities; verify they sum to 1."""
        probs = [case.probability_in(marking) for case in self.cases]
        total = sum(probs)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"activity {self.name!r}: case probabilities sum to {total}, "
                f"expected 1"
            )
        return probs

    def choose_case(self, marking: Marking, stream: RandomStream) -> int:
        """Sample a case index according to the current probabilities."""
        if len(self.cases) == 1:
            return 0
        return stream.choice_index(self.case_probabilities(marking))

    def fire(self, marking: Marking, case_index: int) -> None:
        """Execute input gate functions, then the chosen case's output gates."""
        for gate in self.input_gates:
            gate.fire(marking)
        for gate in self.cases[case_index].output_gates:
            gate.fire(marking)

    # ------------------------------------------------------------------
    def reads(self) -> set[Place]:
        """Places whose change can affect enabling/rate/probabilities."""
        result: set[Place] = set()
        for gate in self.input_gates:
            result |= gate.places()
        for case in self.cases:
            result |= case.places()
        return result

    def writes(self) -> set[Place]:
        """Places this activity may modify (conservative)."""
        result: set[Place] = set()
        for gate in self.input_gates:
            result |= gate.places()
        for case in self.cases:
            for gate in case.output_gates:
                result |= gate.places()
        return result


class TimedActivity(_ActivityBase):
    """An activity whose completion takes random time.

    Exactly one of ``rate`` and ``distribution`` must be given:

    * ``rate`` — a constant or :class:`MarkingFunction`; the delay is
      exponential with that (possibly marking-dependent) rate.  Only
      rate-specified (exponential) activities are admissible for CTMC
      state-space generation.
    * ``distribution`` — any :class:`Distribution`; simulation only.
    """

    __slots__ = ("rate", "distribution")

    def __init__(
        self,
        name: str,
        rate: Optional[RateLike] = None,
        distribution: Optional[Distribution] = None,
        input_gates: Sequence[InputGate] = (),
        cases: Optional[Sequence[Case]] = None,
    ) -> None:
        super().__init__(name, input_gates, cases)
        if (rate is None) == (distribution is None):
            raise ValueError(
                f"activity {name!r}: give exactly one of rate= or distribution="
            )
        if rate is not None and not isinstance(rate, MarkingFunction):
            rate = float(rate)
            if rate <= 0.0:
                raise ValueError(f"activity {name!r}: rate must be > 0, got {rate}")
        self.rate = rate
        self.distribution = distribution

    @property
    def is_markovian(self) -> bool:
        """True when the firing delay is exponential."""
        return self.rate is not None or (
            self.distribution is not None and self.distribution.is_exponential
        )

    def rate_in(self, marking: Marking) -> float:
        """Exponential rate in ``marking``.

        A marking-dependent rate may evaluate to 0, meaning "enabled but
        firing at rate zero" (treated as disabled by both engines).

        Raises
        ------
        TypeError
            If the activity has a non-exponential distribution.
        """
        if self.rate is not None:
            if isinstance(self.rate, MarkingFunction):
                value = float(self.rate(marking))
                if value < 0.0:
                    raise ValueError(
                        f"activity {self.name!r}: negative rate {value}"
                    )
                return value
            return self.rate
        if self.distribution is not None and self.distribution.is_exponential:
            return self.distribution.rate()
        raise TypeError(
            f"activity {self.name!r} is not exponential; no rate available"
        )

    def exponential_parts(
        self,
    ) -> "tuple[Optional[float], Optional[MarkingFunction]]":
        """Split the exponential rate into ``(constant, marking_fn)``.

        Exactly one element is non-None.  The compile pass uses this to
        cache constant rates and to lower marking-dependent ones to
        slot-indexed closures.

        Raises
        ------
        TypeError
            If the activity is not exponential (same condition as
            :meth:`rate_in`).
        """
        if self.rate is not None:
            if isinstance(self.rate, MarkingFunction):
                return None, self.rate
            return self.rate, None
        if self.distribution is not None and self.distribution.is_exponential:
            return self.distribution.rate(), None
        raise TypeError(
            f"activity {self.name!r} is not exponential; no rate available"
        )

    def sample_delay(self, marking: Marking, stream: RandomStream) -> float:
        """Draw a firing delay in ``marking``."""
        if self.rate is not None:
            rate = self.rate_in(marking)
            if rate <= 0.0:
                return float("inf")
            return stream.exponential(rate)
        return self.distribution.sample(stream)

    def reads(self) -> set[Place]:
        result = super().reads()
        if isinstance(self.rate, MarkingFunction):
            result |= self.rate.reads()
        return result

    def rebind(self, place_map: Mapping[Place, Place], name: str) -> "TimedActivity":
        """Clone with places substituted (Rep support)."""
        rate = self.rate
        if isinstance(rate, MarkingFunction):
            rate = rate.rebind(place_map)
        return TimedActivity(
            name,
            rate=rate,
            distribution=self.distribution,
            input_gates=[g.rebind(place_map) for g in self.input_gates],
            cases=[c.rebind(place_map) for c in self.cases],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimedActivity({self.name!r})"


class InstantaneousActivity(_ActivityBase):
    """An activity that fires as soon as it is enabled.

    When several instantaneous activities are enabled simultaneously the one
    with the highest ``priority`` fires first; ties break by model insertion
    order (deterministic, documented).
    """

    __slots__ = ("priority",)

    def __init__(
        self,
        name: str,
        input_gates: Sequence[InputGate] = (),
        cases: Optional[Sequence[Case]] = None,
        priority: int = 0,
    ) -> None:
        super().__init__(name, input_gates, cases)
        self.priority = int(priority)

    def rebind(
        self, place_map: Mapping[Place, Place], name: str
    ) -> "InstantaneousActivity":
        """Clone with places substituted (Rep support)."""
        return InstantaneousActivity(
            name,
            input_gates=[g.rebind(place_map) for g in self.input_gates],
            cases=[c.rebind(place_map) for c in self.cases],
            priority=self.priority,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstantaneousActivity({self.name!r}, priority={self.priority})"
