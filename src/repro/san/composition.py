"""Join and Rep composition operators.

Möbius composes SAN submodels with *Join* (merge named state variables) and
*Rep* (replicate a submodel, sharing a designated subset of its state
variables across replicas).  Here sharing is by place-object identity:

* :func:`join` unions submodels; places held by several submodels are shared
  automatically because they are the same object.
* :func:`replicate` clones a submodel ``n`` times; places in ``shared`` keep
  their identity across clones, all other places (and all activities) are
  copied with per-replica names ``name[i]``.

The paper's composed model (Figure 9) is::

    join(Configuration, Severity, Dynamicity, replicate(One_vehicle, 2n, shared=...))
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.san.model import SANModel
from repro.san.places import Place

__all__ = ["join", "replicate"]


def join(name: str, models: Sequence[SANModel]) -> SANModel:
    """Merge submodels into one flat model.

    Places shared across submodels (same object) appear once.  Distinct
    places with colliding names are rejected — they would make reports and
    ``place_named`` lookups ambiguous.

    Parameters
    ----------
    name:
        Name of the composed model.
    models:
        Submodels to merge; activity names must be globally unique.
    """
    if not models:
        raise ValueError("join() needs at least one submodel")
    composed = SANModel(name)
    seen_names: dict[str, Place] = {}
    for model in models:
        for place in model.places:
            previous = seen_names.get(place.name)
            if previous is not None and previous is not place:
                raise ValueError(
                    f"join({name!r}): distinct places both named {place.name!r} "
                    f"(from submodel {model.name!r}); rename one or share it"
                )
            seen_names[place.name] = place
            composed.add_place(place)
        for activity in model.activities:
            composed.add_activity(activity)
    return composed


def replicate(
    model: SANModel, n: int, shared: Iterable[Place] = ()
) -> list[SANModel]:
    """Create ``n`` replicas of ``model`` sharing the given places.

    Returns the list of replicas (pass them to :func:`join` to finish the
    composition).  Non-shared places are cloned per replica and renamed
    ``"<name>[<i>]"``; activities are renamed the same way.

    Parameters
    ----------
    model:
        The submodel to replicate (e.g. the paper's ``One_vehicle``).
    n:
        Number of replicas (the paper uses ``2n`` vehicles).
    shared:
        Places that keep a single identity across all replicas (the paper
        shares ``IN``, ``OUT``, ``platoon1/2``, the severity-class places,
        the id-assignment places...).
    """
    if n < 1:
        raise ValueError(f"replicate() needs n >= 1, got {n}")
    shared_set = set(shared)
    unknown = shared_set - set(model.places)
    if unknown:
        names = sorted(p.name for p in unknown)
        raise ValueError(
            f"replicate({model.name!r}): shared places not in model: {names}"
        )

    replicas: list[SANModel] = []
    for i in range(n):
        replica = SANModel(f"{model.name}[{i}]")
        place_map: dict[Place, Place] = {}
        for place in model.places:
            if place in shared_set:
                place_map[place] = place
            else:
                place_map[place] = place.renamed(f"{place.name}[{i}]")
            replica.add_place(place_map[place])
        for activity in model.activities:
            replica.add_activity(
                activity.rebind(place_map, f"{activity.name}[{i}]")
            )
        replicas.append(replica)
    return replicas
