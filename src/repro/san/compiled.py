"""Compiled SAN execution: array-backed markings, incremental propensities.

The interpreted :class:`~repro.san.simulator.MarkovJumpSimulator` pays
O(all activities) of Python-level gate evaluation *per jump*: every input
gate predicate and every rate is re-evaluated against a dict-backed
marking even when the firing touched two places out of hundreds.  This
module removes that cost with a one-time compile pass:

* :func:`compile_model` assigns every place an integer *slot*, lowers gate
  bindings to ``local name → slot`` maps, and builds the place→activity
  dependency index (as bitmasks over activity indices) once;
* :class:`CompiledMarking` stores the marking as a flat list indexed by
  slot, with a changed-slot bitmask instead of a changed-place set;
* :class:`CompiledJumpEngine` keeps a per-activity rate table and only
  re-evaluates the activities whose read slots changed since the last
  firing (*incremental propensity maintenance*), instead of rescanning
  the whole model.

Equivalence contract (enforced by ``tests/san/test_compiled_equivalence``):
for the same seed the compiled engine consumes the random stream in
exactly the same order as the interpreted engine and produces bit-identical
``SimulationRun``/``JumpOutcome`` fields, including importance-sampling
likelihood-ratio weights.  Two implementation details make this exact:

1. **Totals.**  The total (biased) exit rate is reduced left-to-right over
   the *full* rate table, with disabled activities contributing ``0.0``.
   Adding ``0.0`` to a non-negative partial sum is a bitwise no-op, so the
   result equals the interpreted engine's compact-list sum exactly.  With
   the default ``recompute_interval=1`` this reduction runs every jump (at
   C speed, via ``sum``); larger intervals switch to delta maintenance of
   the running totals with a periodic exact re-reduction to bound float
   drift, trading last-ulp equality for fewer O(n) passes.
2. **Selection.**  Activity selection replays the interpreted engine's
   ``choice_index`` draw (one uniform) and resolves it with a C-level
   prefix sum + bisection over the rate table; zero entries cannot be
   selected, so the winning activity is identical.

See ``docs/engine_perf.md`` for the full invariant list and fallback
guidance.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from functools import partial
from itertools import accumulate
from typing import Any, Callable, Iterable, Mapping, Optional, Union

from repro.san.activities import InstantaneousActivity, TimedActivity
from repro.san.marking import Marking, MarkingFunction
from repro.san.model import SANModel
from repro.san.places import Place
from repro.san.simulator import (
    MAX_INSTANTANEOUS_CHAIN,
    JumpOutcome,
    MarkovJumpSimulator,
    SimulationRun,
    UnstableMarkingError,
    _RewardIntegrator,
)
from repro.stochastic.rng import RandomStream

__all__ = [
    "ENGINES",
    "CompiledMarking",
    "CompiledModel",
    "CompiledJumpEngine",
    "FireProgram",
    "compile_model",
    "make_jump_engine",
    "trace_fire_programs",
]

#: engine names accepted by :func:`make_jump_engine` and the CLI ``--engine``
ENGINES = ("interpreted", "compiled", "batched", "stepped")


class CompiledMarking:
    """A marking lowered to a flat slot-indexed list.

    Duck-type compatible with the read/write surface of
    :class:`~repro.san.marking.Marking` that stop predicates, level
    functions, rate rewards and gate views use (``get``/``set`` by place,
    ``as_dict``), so user callbacks run unchanged against it.  Mutations
    record the written slot in :attr:`changed_mask` (bit ``1 << slot``).
    """

    __slots__ = ("values", "changed_mask", "_slot_of", "_places", "_validators")

    def __init__(
        self,
        places: list[Place],
        slot_of: dict[Place, int],
        validators: list[Callable[[Any], Any]],
        values: list,
    ) -> None:
        self._places = places
        self._slot_of = slot_of
        self._validators = validators
        self.values = values
        self.changed_mask = 0

    # ------------------------------------------------------------------
    # Marking-compatible surface (place-keyed)
    # ------------------------------------------------------------------
    def get(self, place: Place) -> Any:
        """Current value of ``place``."""
        try:
            return self.values[self._slot_of[place]]
        except KeyError:
            raise KeyError(f"place {place.name!r} is not part of this marking")

    def set(self, place: Place, value: Any) -> None:
        """Assign ``value`` to ``place`` (validated by the place)."""
        try:
            slot = self._slot_of[place]
        except KeyError:
            raise KeyError(f"place {place.name!r} is not part of this marking")
        self.set_slot(slot, value)

    def places(self) -> Iterable[Place]:
        """The places of this marking (slot order)."""
        return self._places

    def as_dict(self) -> dict[str, Any]:
        """Name-keyed snapshot for reports and debugging."""
        return {p.name: v for p, v in zip(self._places, self.values)}

    # ------------------------------------------------------------------
    # slot-indexed fast path
    # ------------------------------------------------------------------
    def set_slot(self, slot: int, value: Any) -> None:
        """Validated write through a slot index (the gate-view fast path)."""
        value = self._validators[slot](value)
        if self.values[slot] != value:
            self.values[slot] = value
            self.changed_mask |= 1 << slot

    def clear_changed_mask(self) -> int:
        """Return and reset the bitmask of slots written since last call."""
        mask, self.changed_mask = self.changed_mask, 0
        return mask

    def load(self, marking: Union[Marking, "CompiledMarking"]) -> None:
        """Overwrite all slots from another marking (no validation — the
        source marking already validated its values)."""
        if isinstance(marking, CompiledMarking):
            self.values[:] = marking.values
        else:
            self.values[:] = marking.values_in(self._places)
        self.changed_mask = 0

    def export(self) -> Marking:
        """An independent dict-backed :class:`Marking` snapshot."""
        return Marking(dict(zip(self._places, self.values)))

    def copy(self) -> Marking:
        """Alias of :meth:`export` (splitting pools call ``copy``)."""
        return self.export()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{p.name}={v}" for p, v in zip(self._places, self.values)
        )
        return f"CompiledMarking({inner})"


class _SlotView:
    """Gate-local window onto a :class:`CompiledMarking`.

    Same API as :class:`~repro.san.marking.GateView`, but local names
    resolve through a precompiled ``name → slot`` map: one dict lookup and
    one list index per access, no per-call view allocation.
    """

    __slots__ = ("_marking", "_slots")

    def __init__(self, marking: CompiledMarking, slots: dict[str, int]) -> None:
        self._marking = marking
        self._slots = slots

    def _slot(self, local: str) -> int:
        try:
            return self._slots[local]
        except KeyError:
            raise KeyError(
                f"gate refers to undeclared local place {local!r}; "
                f"declared: {sorted(self._slots)}"
            )

    def __getitem__(self, local: str) -> Any:
        try:
            return self._marking.values[self._slots[local]]
        except KeyError:
            return self._marking.values[self._slot(local)]

    def __setitem__(self, local: str, value: Any) -> None:
        self._marking.set_slot(self._slot(local), value)

    def inc(self, local: str, amount: int = 1) -> None:
        """Add ``amount`` tokens to an integer place."""
        slot = self._slot(local)
        marking = self._marking
        marking.set_slot(slot, marking.values[slot] + amount)

    def dec(self, local: str, amount: int = 1) -> None:
        """Remove ``amount`` tokens from an integer place."""
        self.inc(local, -amount)

    def tuple_set(self, local: str, index: int, value: Any) -> None:
        """Replace one element of an extended place's tuple marking."""
        slot = self._slot(local)
        marking = self._marking
        current = list(marking.values[slot])
        current[index] = value
        marking.set_slot(slot, tuple(current))


class _TracingSlotView(_SlotView):
    """A :class:`_SlotView` that records every slot it reads.

    The engine evaluates enabling predicates and rate functions through
    tracing views and collects the union of read slots in a shared one-cell
    accumulator (``trace[0]``).  Because predicates and rates are pure
    functions of the marking, the slots read by the *last* evaluation are
    exactly the slots that determine its result: if none of them changed,
    re-execution would take the same branches, read the same slots, and
    return the same value.  The engine therefore skips it — this is what
    makes the dependency index *dynamic* and tight even when gate bindings
    are conservatively broad (e.g. every gate binding all shared places).
    """

    __slots__ = ("_trace",)

    def __init__(
        self, marking: CompiledMarking, slots: dict[str, int], trace: list[int]
    ) -> None:
        super().__init__(marking, slots)
        self._trace = trace

    def __getitem__(self, local: str) -> Any:
        try:
            slot = self._slots[local]
        except KeyError:
            slot = self._slot(local)
        self._trace[0] |= 1 << slot
        return self._marking.values[slot]


class CompiledModel:
    """The marking-independent output of :func:`compile_model`.

    Holds the slot assignment, per-slot validators and initial values, the
    activity lists in execution order, and the slot → timed-activity
    dependency bitmasks.  Engines bind it to a concrete
    :class:`CompiledMarking` (see :meth:`new_marking`); one compiled model
    can back any number of engines.
    """

    def __init__(self, model: SANModel) -> None:
        self.model = model
        self.places: list[Place] = list(model.places)
        self.slot_of: dict[Place, int] = model.place_slots()
        self.validators: list[Callable[[Any], Any]] = [
            place.validate_value for place in self.places
        ]
        self.initial_values: list = [place.initial for place in self.places]
        self.timed: list[TimedActivity] = list(model.timed_activities)
        self.instantaneous: list[InstantaneousActivity] = (
            model.ordered_instantaneous()
        )
        self.n_slots = len(self.places)
        self.n_timed = len(self.timed)

        # slot → bitmask of timed-activity indices whose enabling or rate
        # depends on that slot.  Enabling depends only on input-gate places
        # and the rate only on the rate function's binding — NOT on the
        # places case probabilities or output gates touch (those are read
        # at fire time), so the tighter set keeps the per-jump refresh
        # fan-out small even when output gates write widely-shared places.
        self.dep_masks: list[int] = [0] * self.n_slots
        for index, activity in enumerate(self.timed):
            bit = 1 << index
            for place in _enabling_reads(activity):
                self.dep_masks[self.slot_of[place]] |= bit

        # union of the instantaneous activities' enabling slots: if a
        # firing's changed slots miss this mask, no instantaneous activity
        # can have become enabled and the stabilisation scan is skipped
        self.insta_reads_mask = 0
        for activity in self.instantaneous:
            for place in _enabling_reads(activity):
                self.insta_reads_mask |= 1 << self.slot_of[place]

    def new_marking(self, values: Optional[list] = None) -> CompiledMarking:
        """A fresh array-backed marking (initial values by default)."""
        return CompiledMarking(
            self.places,
            self.slot_of,
            self.validators,
            list(self.initial_values) if values is None else list(values),
        )

    def stats(self) -> dict[str, int]:
        """Size summary for reports."""
        return {
            "slots": self.n_slots,
            "timed_activities": self.n_timed,
            "instantaneous_activities": len(self.instantaneous),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"CompiledModel({self.model.name!r}, slots={s['slots']}, "
            f"timed={s['timed_activities']}, "
            f"instantaneous={s['instantaneous_activities']})"
        )


def compile_model(model: SANModel) -> CompiledModel:
    """Compile a SAN into its array-backed execution form.

    The pass is a snapshot: places or activities registered afterwards are
    not part of the compiled model.
    """
    return CompiledModel(model)


def _enabling_reads(activity) -> set[Place]:
    """Places that can change the activity's enabling or (timed) rate.

    Strictly the input-gate bindings plus a marking-dependent rate's
    binding.  Places read by case probabilities or touched by output gates
    are excluded: both are evaluated at fire time, never cached, so they
    need no dependency tracking.
    """
    places: set[Place] = set()
    for gate in activity.input_gates:
        places |= gate.places()
    rate = getattr(activity, "rate", None)
    if isinstance(rate, MarkingFunction):
        places |= rate.reads()
    return places


# ----------------------------------------------------------------------
# closure compilation (per engine, bound to one CompiledMarking)
# ----------------------------------------------------------------------
def _view(
    marking: CompiledMarking, slots: dict[str, int], trace: Optional[list[int]]
) -> _SlotView:
    """A plain or tracing slot view, depending on ``trace``."""
    if trace is None:
        return _SlotView(marking, slots)
    return _TracingSlotView(marking, slots, trace)


def _compile_enabled(
    activity,
    marking: CompiledMarking,
    slot_of,
    trace: Optional[list[int]] = None,
) -> Optional[Callable[[], bool]]:
    """The activity's conjunction of input-gate predicates, slot-lowered.

    ``None`` for always-enabled activities (no input gates); a C-level
    ``partial`` for the common single-gate case.  With ``trace``, the
    views record every slot the predicates read (incremental-maintenance
    dependency discovery).
    """
    checks = [
        (gate.predicate, _view(marking, gate.slot_binding(slot_of), trace))
        for gate in activity.input_gates
    ]
    if not checks:
        return None
    if len(checks) == 1:
        predicate, view = checks[0]
        return partial(predicate, view)

    def enabled() -> bool:
        for predicate, view in checks:
            if not predicate(view):
                return False
        return True

    return enabled


def _compile_rate(
    activity: TimedActivity,
    marking: CompiledMarking,
    slot_of,
    trace: Optional[list[int]] = None,
) -> tuple[float, Optional[Callable[[], float]]]:
    """``(constant, None)`` or ``(0.0, closure)`` for the activity's rate.

    The closure mirrors :meth:`TimedActivity.rate_in` exactly, including
    the negative-rate guard and its message.
    """
    constant, fn = activity.exponential_parts()
    if fn is None:
        return float(constant), None
    view = _view(marking, fn.slot_binding(slot_of), trace)
    raw = fn.fn
    name = activity.name

    def rate() -> float:
        value = float(raw(view))
        if value < 0.0:
            raise ValueError(f"activity {name!r}: negative rate {value}")
        return value

    return 0.0, rate


def _compile_chooser(
    activity, marking: CompiledMarking, slot_of
) -> Optional[Callable[[RandomStream], int]]:
    """Case selection; ``None`` for single-case activities (no draw).

    Replays :meth:`_ActivityBase.choose_case` exactly: identical
    probability evaluation (with the [0,1] clamp and error messages of
    ``Case.probability_in``), the same sum-to-1 check, and the same single
    ``choice_index`` draw.
    """
    cases = activity.cases
    if len(cases) == 1:
        return None
    evaluators: list[Callable[[], float]] = []
    for case in cases:
        probability = case.probability
        if isinstance(probability, MarkingFunction):
            view = _SlotView(marking, probability.slot_binding(slot_of))
            raw = probability.fn
            label = case.label

            def evaluate(raw=raw, view=view, label=label) -> float:
                value = float(raw(view))
                if not -1e-9 <= value <= 1.0 + 1e-9:
                    raise ValueError(
                        f"case {label!r}: marking-dependent probability "
                        f"{value} outside [0,1]"
                    )
                return min(max(value, 0.0), 1.0)

            evaluators.append(evaluate)
        else:
            evaluators.append(lambda probability=probability: probability)
    name = activity.name

    def choose(stream: RandomStream) -> int:
        probs = [evaluate() for evaluate in evaluators]
        total = sum(probs)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"activity {name!r}: case probabilities sum to {total}, "
                f"expected 1"
            )
        return stream.choice_index(probs)

    return choose


def _compile_fire(
    activity, marking: CompiledMarking, slot_of
) -> Callable[[int], None]:
    """Input-gate functions then the chosen case's output gates, in order."""
    input_calls = [
        (gate.function, _SlotView(marking, gate.slot_binding(slot_of)))
        for gate in activity.input_gates
        if gate.function is not None
    ]
    case_calls = [
        [
            (gate.function, _SlotView(marking, gate.slot_binding(slot_of)))
            for gate in case.output_gates
        ]
        for case in activity.cases
    ]

    def fire(case_index: int) -> None:
        for function, view in input_calls:
            function(view)
        for function, view in case_calls[case_index]:
            function(view)

    return fire


# ----------------------------------------------------------------------
# delta-matrix fire programs (consumed by the stepped batch engine)
# ----------------------------------------------------------------------
class _FireTraceAbort(BaseException):
    """The fire function resists delta lowering (branches, extended
    places, non-integer writes...).  A ``BaseException`` so gate code
    wrapped in broad ``except Exception`` handlers cannot swallow it."""


class _PendingShift:
    """Symbolic fire-time value: ``initial marking of slot + delta``.

    Supports exactly the integer ``+``/``-`` arithmetic that token moves
    (``inc``/``dec``/read-modify-write) need; anything else — truthiness,
    comparisons, coercions — aborts the trace, sending the activity to
    the per-row closure path.
    """

    __slots__ = ("slot", "delta")

    def __init__(self, slot: int, delta: int) -> None:
        self.slot = slot
        self.delta = delta

    def _shift(self, amount: Any) -> "_PendingShift":
        if not isinstance(amount, int) or isinstance(amount, bool):
            raise _FireTraceAbort("non-integer arithmetic in fire function")
        return _PendingShift(self.slot, self.delta + amount)

    def __add__(self, other: Any) -> "_PendingShift":
        return self._shift(other)

    def __radd__(self, other: Any) -> "_PendingShift":
        return self._shift(other)

    def __sub__(self, other: Any) -> "_PendingShift":
        if not isinstance(other, int) or isinstance(other, bool):
            raise _FireTraceAbort("non-integer arithmetic in fire function")
        return _PendingShift(self.slot, self.delta - other)

    def __bool__(self):
        raise _FireTraceAbort("branch on a marking value in fire function")

    def __eq__(self, other):
        raise _FireTraceAbort("comparison on a marking value in fire function")

    def __ne__(self, other):
        raise _FireTraceAbort("comparison on a marking value in fire function")

    def __lt__(self, other):
        raise _FireTraceAbort("comparison on a marking value in fire function")

    def __le__(self, other):
        raise _FireTraceAbort("comparison on a marking value in fire function")

    def __gt__(self, other):
        raise _FireTraceAbort("comparison on a marking value in fire function")

    def __ge__(self, other):
        raise _FireTraceAbort("comparison on a marking value in fire function")

    def __hash__(self):
        raise _FireTraceAbort("hashing a marking value in fire function")

    def __int__(self):
        raise _FireTraceAbort("int() coercion in fire function")

    def __index__(self):
        raise _FireTraceAbort("index coercion in fire function")

    def __float__(self):
        raise _FireTraceAbort("float() coercion in fire function")

    def __mul__(self, other):
        raise _FireTraceAbort("non-shift arithmetic in fire function")

    __rmul__ = __truediv__ = __rtruediv__ = __floordiv__ = __rsub__ = __mul__
    __mod__ = __pow__ = __neg__ = __mul__


class _FireTraceView:
    """Stand-in gate view that records a fire function's writes.

    Reads resolve against a *pending value* table keyed by global slot —
    a read after a write sees the written symbolic value, so the
    recorded ops can later be applied against an **initial-column
    snapshot** in any order without read-after-write hazards.  Values
    are either exact ``int`` constants or :class:`_PendingShift`\\ s
    (initial value of some slot plus an integer delta).
    """

    __slots__ = ("_slots", "_state")

    def __init__(self, slots: dict[str, int], state: "_FireTraceState") -> None:
        self._slots = slots
        self._state = state

    def _slot(self, local: str) -> int:
        try:
            slot = self._slots[local]
        except KeyError:
            raise _FireTraceAbort(f"undeclared local place {local!r}")
        if not self._state.mirrored[slot]:
            raise _FireTraceAbort("extended place access in fire function")
        return slot

    def __getitem__(self, local: str) -> Any:
        slot = self._slot(local)
        pending = self._state.pending
        if slot in pending:
            return pending[slot]
        return _PendingShift(slot, 0)

    def __setitem__(self, local: str, value: Any) -> None:
        slot = self._slot(local)
        state = self._state
        if isinstance(value, _PendingShift):
            state.ops.append((slot, value.slot, value.delta))
        elif isinstance(value, int) and not isinstance(value, bool):
            if value < 0:
                # the compiled path would raise at this write; keep the
                # activity on the per-row closures so it actually does
                raise _FireTraceAbort("negative constant write")
            state.ops.append((slot, None, value))
        else:
            raise _FireTraceAbort(
                f"non-integer write {type(value).__name__} in fire function"
            )
        state.pending[slot] = value

    def inc(self, local: str, amount: int = 1) -> None:
        self[local] = self[local] + amount

    def dec(self, local: str, amount: int = 1) -> None:
        self.inc(local, -amount)

    def tuple_set(self, local: str, index: int, value: Any) -> None:
        raise _FireTraceAbort("extended place write in fire function")


class _FireTraceState:
    """Shared op recorder for one (activity, case) trace."""

    __slots__ = ("mirrored", "pending", "ops")

    def __init__(self, mirrored: list[bool]) -> None:
        self.mirrored = mirrored
        self.pending: dict[int, Any] = {}
        self.ops: list[tuple] = []


class FireProgram:
    """One (activity, case) firing lowered to batched column writes.

    Applying the program to rows of the batch marking matrix is
    equivalent to running the compiled fire closures row by row:

    * every op value is a function of the **pre-fire** marking only
      (read-after-write was resolved symbolically at trace time), so the
      per-slot final values can be written in any order from an initial
      column snapshot;
    * the only runtime validation the compiled path could fail is a
      negative marking, which only a negative net shift can produce —
      :meth:`apply` checks exactly those ops and reports ``False`` so the
      caller can replay the rows through the compiled closures,
      reproducing the exact per-row error.

    ``write_mask`` is the union of written slots — a superset of the
    compiled engine's changed mask (a write of an unchanged value sets no
    bit there).  All batch-engine consumers of changed masks are pure
    re-evaluation triggers, so the superset is bitwise harmless.
    """

    __slots__ = ("checks", "finals", "srcs", "write_mask")

    def __init__(self, ops: list[tuple]) -> None:
        # validation set: any traced op with a negative net shift can
        # drive a marking negative (consts were validated at trace time,
        # and a non-negative shift of a non-negative marking stays >= 0)
        self.checks = tuple(
            (src, delta) for _slot, src, delta in ops
            if src is not None and delta < 0
        )
        finals: dict[int, tuple] = {}
        for op in ops:
            finals[op[0]] = op
        self.finals = tuple(finals.values())
        self.srcs = tuple(
            {src for _slot, src, _d in self.finals if src is not None}
            | {src for src, _d in self.checks}
        )
        self.write_mask = 0
        for slot, _src, _delta in self.finals:
            self.write_mask |= 1 << slot

    def apply(self, matrix, rows) -> bool:
        """Fire the program for ``rows`` (an index array) of ``matrix``.

        Returns ``False`` without touching the matrix when any row would
        validate-fail (negative marking); the caller replays those rows
        through the compiled closures to surface the exact error.
        """
        # advanced indexing copies, so these are pre-fire snapshots
        cols = {src: matrix[rows, src] for src in self.srcs}
        for src, delta in self.checks:
            if (cols[src] + delta < 0).any():
                return False
        for slot, src, delta in self.finals:
            if src is None:
                matrix[rows, slot] = delta
            else:
                matrix[rows, slot] = cols[src] + delta
        return True

    def apply_row(self, matrix, row: int) -> bool:
        """Scalar :meth:`apply` for a single row.

        Fancy indexing costs more than it saves on the one- and two-row
        case groups a step typically shatters into, so callers use this
        plain-integer path below a small group size.  Same contract:
        ``False`` (and no writes) when the row would validate-fail.
        """
        vals = {src: int(matrix[row, src]) for src in self.srcs}
        for src, delta in self.checks:
            if vals[src] + delta < 0:
                return False
        for slot, src, delta in self.finals:
            matrix[row, slot] = delta if src is None else vals[src] + delta
        return True


def trace_fire_programs(
    compiled: CompiledModel, activity
) -> list[Optional["FireProgram"]]:
    """Delta-matrix fire programs for each case of ``activity``.

    Entries are ``None`` for cases whose firing resists lowering
    (data-dependent control flow, extended places, non-integer writes,
    writes the compiled path would reject outright); those cases keep the
    per-row compiled closures.
    """
    slot_of = compiled.slot_of
    mirrored = [not place.is_extended for place in compiled.places]
    input_gates = [
        (gate.function, gate.slot_binding(slot_of))
        for gate in activity.input_gates
        if gate.function is not None
    ]
    programs: list[Optional[FireProgram]] = []
    for case in activity.cases:
        state = _FireTraceState(mirrored)
        try:
            for function, slots in input_gates:
                function(_FireTraceView(slots, state))
            for gate in case.output_gates:
                function = gate.function
                function(
                    _FireTraceView(gate.slot_binding(slot_of), state)
                )
        except (_FireTraceAbort, Exception):
            # any exception at trace time (including gate code raising
            # on symbolic values) means the case cannot be lowered; the
            # per-row path reproduces the real runtime behaviour
            programs.append(None)
        else:
            programs.append(FireProgram(state.ops))
    return programs


class CompiledJumpEngine:
    """Jump-chain executor over a compiled SAN with incremental propensities.

    Drop-in replacement for :class:`~repro.san.simulator.MarkovJumpSimulator`
    (same constructor validation, same ``run``/``simulate`` signatures and
    semantics, including importance-sampling weights), several times faster
    on models with many activities because a jump only re-evaluates the
    activities whose read slots actually changed.

    Parameters
    ----------
    model:
        The flattened all-exponential SAN, or an existing
        :class:`CompiledModel` (sharing one compile pass across engines).
    bias:
        Optional activity-name → rate-multiplier mapping (importance
        sampling, exactly as in the interpreted engine).
    recompute_interval:
        How often (in jumps) the running total rates are recomputed by an
        exact left-to-right reduction.  ``1`` (default) recomputes every
        jump, which keeps holding times bit-identical to the interpreted
        engine; larger values maintain the totals by delta between
        recomputes — faster on huge models, at the price of last-ulp float
        drift in the sampled holding times (bounded by the interval).
    observer:
        Optional observability hook (see :mod:`repro.obs`).  Hooks fire
        after every random draw of the step they describe and never
        consult the stream, so draw order and weights stay bit-identical
        with the observer attached or not.
    """

    #: engine label reported in runtime telemetry footers
    engine_name = "compiled"

    def __init__(
        self,
        model: Union[SANModel, CompiledModel],
        bias: Optional[Mapping[str, float]] = None,
        recompute_interval: int = 1,
        observer=None,
    ) -> None:
        compiled = model if isinstance(model, CompiledModel) else None
        san = compiled.model if compiled is not None else model
        if not san.is_markovian:
            bad = [a.name for a in san.timed_activities if not a.is_markovian]
            raise TypeError(
                f"CompiledJumpEngine requires exponential activities; "
                f"non-exponential: {bad[:5]}"
            )
        if recompute_interval < 1:
            raise ValueError(
                f"recompute_interval must be >= 1, got {recompute_interval}"
            )
        self.compiled = compiled if compiled is not None else compile_model(san)
        self.model = self.compiled.model
        self.recompute_interval = int(recompute_interval)
        self.bias: dict[str, float] = dict(bias or {})
        unknown = set(self.bias) - {a.name for a in self.model.timed_activities}
        if unknown:
            raise ValueError(f"bias refers to unknown activities: {sorted(unknown)}")
        for name, factor in self.bias.items():
            if factor <= 0.0 or not math.isfinite(factor):
                raise ValueError(
                    f"bias factor for {name!r} must be finite and > 0, got {factor}"
                )
        self.observer = observer
        #: timed firings executed over this engine's lifetime (telemetry)
        self.fired_events = 0
        self._bind()

    # ------------------------------------------------------------------
    def _bind(self) -> None:
        """Build the slot-indexed closures over this engine's marking."""
        compiled = self.compiled
        marking = compiled.new_marking()
        slot_of = compiled.slot_of
        self._marking = marking
        self._n = compiled.n_timed
        self._factors = [
            self.bias.get(activity.name, 1.0) for activity in compiled.timed
        ]
        self._has_bias = any(factor != 1.0 for factor in self._factors)
        self._names = [activity.name for activity in compiled.timed]
        # one-cell read-trace accumulator shared by every tracing view;
        # _refresh resets it, evaluates, then harvests the union of reads
        self._trace = [0]
        self._enabled = [
            _compile_enabled(activity, marking, slot_of, self._trace)
            for activity in compiled.timed
        ]
        rate_parts = [
            _compile_rate(activity, marking, slot_of, self._trace)
            for activity in compiled.timed
        ]
        self._rate_consts = [constant for constant, _ in rate_parts]
        self._rate_fns = [fn for _, fn in rate_parts]
        self._choosers = [
            _compile_chooser(activity, marking, slot_of)
            for activity in compiled.timed
        ]
        self._firers = [
            _compile_fire(activity, marking, slot_of)
            for activity in compiled.timed
        ]
        self._insta = [
            (
                _compile_enabled(activity, marking, slot_of),
                _compile_chooser(activity, marking, slot_of),
                _compile_fire(activity, marking, slot_of),
            )
            for activity in compiled.instantaneous
        ]
        # propensity state: original and biased rate tables (0.0 when the
        # activity is disabled or at rate 0), running totals, active count
        self._orig = [0.0] * self._n
        self._biased = [0.0] * self._n
        self._total = 0.0
        self._total_biased = 0.0
        self._n_active = 0
        # dynamic dependency index: per-activity mask of the slots its last
        # enabling/rate evaluation actually read, and the per-slot reverse
        # masks.  Seeded from the static (conservative) compile-time index;
        # tightened to the traced read sets as activities are evaluated.
        self._read_masks = [0] * self._n
        for index, activity in enumerate(compiled.timed):
            bit = 1 << index
            for place in _enabling_reads(activity):
                self._read_masks[index] |= 1 << slot_of[place]
        self._dep_masks = list(compiled.dep_masks)

    # ------------------------------------------------------------------
    # propensity maintenance
    # ------------------------------------------------------------------
    def _refresh(self, index: int) -> None:
        """Re-evaluate one activity's enabling and rate; update the tables,
        the delta-maintained totals, and the dynamic dependency index."""
        trace = self._trace
        trace[0] = 0
        enabled = self._enabled[index]
        if enabled is None or enabled():
            fn = self._rate_fns[index]
            rate = self._rate_consts[index] if fn is None else fn()
            if rate > 0.0:
                new_orig = rate
                new_biased = rate * self._factors[index]
            else:
                new_orig = 0.0
                new_biased = 0.0
        else:
            new_orig = 0.0
            new_biased = 0.0
        old_orig = self._orig[index]
        if new_orig != old_orig or new_biased != self._biased[index]:
            if (new_orig > 0.0) != (old_orig > 0.0):
                self._n_active += 1 if new_orig > 0.0 else -1
            self._total += new_orig - old_orig
            self._total_biased += new_biased - self._biased[index]
            self._orig[index] = new_orig
            self._biased[index] = new_biased
        # fold the traced read set into the reverse index (purity of gate
        # predicates/rates guarantees the last evaluation's reads are the
        # complete determinant of the cached result)
        reads = trace[0]
        old_reads = self._read_masks[index]
        if reads != old_reads:
            dep_masks = self._dep_masks
            bit = 1 << index
            stale = old_reads & ~reads
            while stale:
                low_bit = stale & -stale
                dep_masks[low_bit.bit_length() - 1] &= ~bit
                stale ^= low_bit
            fresh = reads & ~old_reads
            while fresh:
                low_bit = fresh & -fresh
                dep_masks[low_bit.bit_length() - 1] |= bit
                fresh ^= low_bit
            self._read_masks[index] = reads

    def _refresh_all(self) -> None:
        """Full rebuild of the propensity tables (run entry)."""
        self._orig = [0.0] * self._n
        self._biased = [0.0] * self._n
        self._total = 0.0
        self._total_biased = 0.0
        self._n_active = 0
        for index in range(self._n):
            self._refresh(index)
        # run entry is a recompute point: fix the reduction order exactly
        self._total_biased = sum(self._biased)
        self._total = sum(self._orig) if self._has_bias else self._total_biased

    def _refresh_affected(self, changed_mask: int) -> None:
        """Re-evaluate only the activities whose last evaluation read one
        of the changed slots."""
        dep_masks = self._dep_masks
        affected = 0
        while changed_mask:
            low_bit = changed_mask & -changed_mask
            affected |= dep_masks[low_bit.bit_length() - 1]
            changed_mask ^= low_bit
        refresh = self._refresh
        while affected:
            low_bit = affected & -affected
            refresh(low_bit.bit_length() - 1)
            affected ^= low_bit

    def _marking_delta(self, changed_mask: int) -> dict:
        """``{place name: new value}`` for the slots in ``changed_mask``.

        Keys are sorted so traces serialise identically to the interpreted
        engine's :func:`~repro.san.simulator._marking_delta`.
        """
        cm = self._marking
        places = self.compiled.places
        entries = []
        while changed_mask:
            low_bit = changed_mask & -changed_mask
            slot = low_bit.bit_length() - 1
            entries.append((places[slot].name, cm.values[slot]))
            changed_mask ^= low_bit
        entries.sort()
        return dict(entries)

    # ------------------------------------------------------------------
    # stabilisation (instantaneous activities)
    # ------------------------------------------------------------------
    def _stabilize(self, stream: RandomStream) -> None:
        """Fire enabled instantaneous activities until none remains.

        Same scan order and draw sequence as the interpreted
        :func:`~repro.san.simulator._stabilize`.
        """
        insta = self._insta
        if not insta:
            return
        for _ in range(MAX_INSTANTANEOUS_CHAIN):
            for enabled, choose, fire in insta:
                if enabled is None or enabled():
                    fire(0 if choose is None else choose(stream))
                    break
            else:
                return
        raise UnstableMarkingError(
            f"more than {MAX_INSTANTANEOUS_CHAIN} consecutive instantaneous "
            f"firings in model {self.model.name!r}; the marking never "
            f"stabilises"
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        stream: RandomStream,
        horizon: float,
        stop_predicate: Optional[Callable[[Any], bool]] = None,
        rate_rewards=None,
    ) -> SimulationRun:
        """One replication from the model's initial marking."""
        outcome = self.simulate(
            None,
            start_time=0.0,
            horizon=horizon,
            stream=stream,
            stop_predicate=stop_predicate,
            rate_rewards=rate_rewards,
        )
        if self.observer is not None:
            self.observer.record_run(
                outcome.stopped, outcome.stop_time, outcome.weight, outcome.time
            )
        return SimulationRun(
            end_time=outcome.time,
            stopped=outcome.stopped,
            stop_time=outcome.stop_time,
            weight=outcome.weight,
            firings=outcome.firings,
            final_marking=outcome.marking,
            reward_integrals=outcome.reward_integrals,
        )

    def simulate(
        self,
        marking: Optional[Union[Marking, CompiledMarking]],
        start_time: float,
        horizon: float,
        stream: RandomStream,
        stop_predicate: Optional[Callable[[Any], bool]] = None,
        level_fn: Optional[Callable[[Any], float]] = None,
        level_target: Optional[float] = None,
        initial_weight: float = 1.0,
        rate_rewards=None,
    ) -> JumpOutcome:
        """Simulate a path segment (mirrors the interpreted engine).

        ``marking`` may be a dict-backed :class:`Marking` (as handed out by
        the splitting engine's pools), a :class:`CompiledMarking`, or
        ``None`` for the model's initial marking.  The returned
        :class:`JumpOutcome` carries an independent dict-backed snapshot,
        never the engine's working marking.
        """
        cm = self._marking
        if marking is None:
            cm.values[:] = self.compiled.initial_values
            cm.changed_mask = 0
        else:
            cm.load(marking)
        weight = float(initial_weight)
        now = float(start_time)
        firings = 0
        observer = self.observer
        integrator = _RewardIntegrator(rate_rewards)

        self._stabilize(stream)
        cm.changed_mask = 0
        if stop_predicate is not None and stop_predicate(cm):
            if observer is not None:
                observer.record_absorption("(initial)", now, cm)
            return JumpOutcome(
                cm.export(), now, weight, True, now, False, firings,
                integrator.integrals,
            )
        if (
            level_fn is not None
            and level_target is not None
            and level_fn(cm) >= level_target
        ):
            return JumpOutcome(
                cm.export(), now, weight, False, math.inf, True, firings,
                integrator.integrals,
            )

        self._refresh_all()
        orig = self._orig
        biased = self._biased
        has_bias = self._has_bias
        interval = self.recompute_interval
        insta_reads = self.compiled.insta_reads_mask
        exponential = stream.exponential
        random = stream.random
        since_recompute = 0

        while now < horizon:
            if interval == 1:
                # exact per-jump reduction: left-to-right over the full
                # table, 0.0 entries are bitwise no-ops, so this equals
                # the interpreted engine's compact sum exactly
                total_biased = sum(biased)
                total = sum(orig) if has_bias else total_biased
            elif since_recompute >= interval or self._total_biased <= 0.0:
                total_biased = self._total_biased = sum(biased)
                total = self._total = (
                    sum(orig) if has_bias else total_biased
                )
                since_recompute = 0
            else:
                total_biased = self._total_biased
                total = self._total if has_bias else total_biased
            since_recompute += 1

            if self._n_active == 0:
                # deadlock: the marking persists until the horizon
                integrator.accumulate(cm, horizon - now)
                return JumpOutcome(
                    cm.export(), now, weight, False, math.inf, False,
                    firings, integrator.integrals,
                )

            holding = exponential(total_biased)
            if now + holding > horizon:
                # No event before the horizon under the biased law; correct
                # for the survival-probability ratio over the residual time.
                weight *= math.exp(-(total - total_biased) * (horizon - now))
                integrator.accumulate(cm, horizon - now)
                now = horizon
                break

            # replay choice_index: one uniform, resolved by prefix-sum
            # bisection (zero-rate entries are never selected)
            u = random() * total_biased
            cumulative = list(accumulate(biased))
            index = bisect_right(cumulative, u)
            if index >= self._n:
                # numerical edge u == total: last enabled activity, as in
                # the interpreted engine's choice_index fallback
                index = self._n - 1
                while index > 0 and biased[index] <= 0.0:
                    index -= 1
            weight *= (orig[index] / biased[index]) * math.exp(
                -(total - total_biased) * holding
            )
            integrator.accumulate(cm, holding)
            now += holding

            chooser = self._choosers[index]
            case = 0 if chooser is None else chooser(stream)
            self._firers[index](case)
            firings += 1
            self.fired_events += 1
            if cm.changed_mask & insta_reads:
                self._stabilize(stream)

            if observer is not None:
                delta = (
                    self._marking_delta(cm.changed_mask)
                    if observer.wants_deltas
                    else None
                )
                observer.record_firing(
                    self._names[index], now, holding, case, delta
                )

            if stop_predicate is not None and stop_predicate(cm):
                if observer is not None:
                    observer.record_absorption(self._names[index], now, cm)
                return JumpOutcome(
                    cm.export(), now, weight, True, now, False, firings,
                    integrator.integrals,
                )
            if (
                level_fn is not None
                and level_target is not None
                and level_fn(cm) >= level_target
            ):
                return JumpOutcome(
                    cm.export(), now, weight, False, math.inf, True,
                    firings, integrator.integrals,
                )

            self._refresh_affected(cm.clear_changed_mask())

        return JumpOutcome(
            cm.export(), now, weight, False, math.inf, False, firings,
            integrator.integrals,
        )


def make_jump_engine(
    model: SANModel,
    bias: Optional[Mapping[str, float]] = None,
    engine: str = "compiled",
    observer=None,
    batch_size: int = 256,
):
    """The jump-chain executor for ``engine`` ∈ :data:`ENGINES`.

    ``"compiled"`` (default) builds a :class:`CompiledJumpEngine`;
    ``"interpreted"`` the original
    :class:`~repro.san.simulator.MarkovJumpSimulator`; ``"batched"`` the
    lockstep NumPy kernel (:class:`~repro.san.batched.BatchedJumpEngine`);
    ``"stepped"`` the per-batch-step kernel on top of it
    (:class:`~repro.san.stepped.SteppedJumpEngine`, fastest for large
    replication counts — ``batch_size`` sets the default lockstep width
    of both).  All four produce bit-identical results for the same seed;
    fall back to ``interpreted`` when debugging gate code (plain
    dict-backed markings) — see ``docs/engine_perf.md``.  ``observer``
    attaches an observability hook (:mod:`repro.obs`) to any engine (the
    batch engines then delegate traced runs to their per-row compiled
    path, keeping RNG invariance).
    """
    if engine == "compiled":
        return CompiledJumpEngine(model, bias=bias, observer=observer)
    if engine == "interpreted":
        return MarkovJumpSimulator(model, bias=bias, observer=observer)
    if engine == "batched":
        from repro.san.batched import BatchedJumpEngine

        return BatchedJumpEngine(
            model, bias=bias, observer=observer, batch_size=batch_size
        )
    if engine == "stepped":
        from repro.san.stepped import SteppedJumpEngine

        return SteppedJumpEngine(
            model, bias=bias, observer=observer, batch_size=batch_size
        )
    raise ValueError(f"unknown engine {engine!r}; choose one of {ENGINES}")
