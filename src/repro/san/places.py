"""State variables of a SAN: simple and extended places."""

from __future__ import annotations

from itertools import count
from typing import Any

__all__ = ["Place", "ExtendedPlace"]

_place_ids = count()


class Place:
    """A state variable holding a non-negative integer marking.

    Place identity is by object, not by name: two submodels *share* a place
    exactly when they hold the same :class:`Place` object — this is how the
    Join operator and the Rep operator's ``shared`` set are realised
    (mirroring Möbius's state-variable sharing).
    """

    __slots__ = ("name", "initial", "_uid")

    #: marker used by the marking layer to validate assignments
    is_extended = False

    def __init__(self, name: str, initial: int = 0) -> None:
        if initial < 0:
            raise ValueError(f"place {name!r}: initial marking must be >= 0")
        self.name = name
        self.initial = int(initial)
        self._uid = next(_place_ids)

    @property
    def uid(self) -> int:
        """Process-wide unique id (stable ordering for frozen states)."""
        return self._uid

    def validate_value(self, value: Any) -> int:
        """Check and normalise a marking value for this place."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(
                f"place {self.name!r} holds integers, got {value!r}"
            )
        if value < 0:
            raise ValueError(
                f"place {self.name!r}: marking must stay >= 0, got {value}"
            )
        return value

    def renamed(self, name: str) -> "Place":
        """A fresh place with the same initial marking and a new name."""
        return Place(name, self.initial)

    def __repr__(self) -> str:
        return f"Place({self.name!r}, initial={self.initial})"


class ExtendedPlace(Place):
    """A state variable holding a structured marking (a tuple).

    The paper's ``platoon1``/``platoon2`` places ("extended places
    represented as an array of length n") and the severity-class arrays are
    extended places.  Values are stored as immutable tuples so that frozen
    states remain hashable for state-space generation.
    """

    __slots__ = ()

    is_extended = True

    def __init__(self, name: str, initial: tuple = ()) -> None:
        # Bypass Place.__init__'s integer validation.
        self.name = name
        self.initial = tuple(initial)
        self._uid = next(_place_ids)

    def validate_value(self, value: Any) -> tuple:
        if isinstance(value, list):
            value = tuple(value)
        if not isinstance(value, tuple):
            raise TypeError(
                f"extended place {self.name!r} holds tuples, got {value!r}"
            )
        return value

    def renamed(self, name: str) -> "ExtendedPlace":
        return ExtendedPlace(name, self.initial)

    def __repr__(self) -> str:
        return f"ExtendedPlace({self.name!r}, initial={self.initial!r})"
