"""Input and output gates.

Gates are the SAN mechanism for marking-dependent enabling and state change:
an :class:`InputGate` carries an enabling *predicate* and a firing
*function*; an :class:`OutputGate` carries a firing function only.  Plain
Petri-net arcs are provided as the :func:`input_arc` / :func:`output_arc`
conveniences, implemented as gates.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.san.marking import GateView, Marking
from repro.san.places import Place

__all__ = ["InputGate", "OutputGate", "input_arc", "output_arc"]


class InputGate:
    """Enabling predicate + input function.

    Parameters
    ----------
    name:
        Diagnostic label.
    binding:
        Mapping of gate-local place names to :class:`Place` objects.
    predicate:
        ``fn(view) -> bool`` — the activity is enabled only while this holds.
    function:
        ``fn(view) -> None`` executed when the activity fires (defaults to a
        no-op, matching Möbius's identity input function).
    """

    __slots__ = ("name", "binding", "predicate", "function")

    def __init__(
        self,
        name: str,
        binding: Mapping[str, Place],
        predicate: Callable[[GateView], bool],
        function: Optional[Callable[[GateView], None]] = None,
    ) -> None:
        self.name = name
        self.binding = dict(binding)
        self.predicate = predicate
        self.function = function

    def holds(self, marking: Marking) -> bool:
        """Evaluate the enabling predicate on ``marking``."""
        return bool(self.predicate(GateView(marking, self.binding)))

    def fire(self, marking: Marking) -> None:
        """Run the input function on ``marking``."""
        if self.function is not None:
            self.function(GateView(marking, self.binding))

    def rebind(self, place_map: Mapping[Place, Place]) -> "InputGate":
        """Clone with places substituted (Rep support)."""
        new_binding = {
            local: place_map.get(place, place)
            for local, place in self.binding.items()
        }
        return InputGate(self.name, new_binding, self.predicate, self.function)

    def places(self) -> set[Place]:
        """All places this gate touches."""
        return set(self.binding.values())

    def slot_binding(self, slot_of: Mapping[Place, int]) -> dict[str, int]:
        """Local name → slot index (the compile pass's lowering of
        :attr:`binding` onto an array-backed marking)."""
        return {local: slot_of[place] for local, place in self.binding.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InputGate({self.name!r})"


class OutputGate:
    """Output function applied after a case is selected."""

    __slots__ = ("name", "binding", "function")

    def __init__(
        self,
        name: str,
        binding: Mapping[str, Place],
        function: Callable[[GateView], None],
    ) -> None:
        self.name = name
        self.binding = dict(binding)
        self.function = function

    def fire(self, marking: Marking) -> None:
        """Run the output function on ``marking``."""
        self.function(GateView(marking, self.binding))

    def rebind(self, place_map: Mapping[Place, Place]) -> "OutputGate":
        """Clone with places substituted (Rep support)."""
        new_binding = {
            local: place_map.get(place, place)
            for local, place in self.binding.items()
        }
        return OutputGate(self.name, new_binding, self.function)

    def places(self) -> set[Place]:
        """All places this gate touches."""
        return set(self.binding.values())

    def slot_binding(self, slot_of: Mapping[Place, int]) -> dict[str, int]:
        """Local name → slot index (see :meth:`InputGate.slot_binding`)."""
        return {local: slot_of[place] for local, place in self.binding.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OutputGate({self.name!r})"


def input_arc(place: Place, tokens: int = 1) -> InputGate:
    """Standard Petri-net input arc: requires and consumes ``tokens``."""
    if tokens < 1:
        raise ValueError(f"input arc multiplicity must be >= 1, got {tokens}")

    def predicate(g: GateView) -> bool:
        return g["p"] >= tokens

    def function(g: GateView) -> None:
        g.dec("p", tokens)

    return InputGate(f"arc_in({place.name},{tokens})", {"p": place}, predicate, function)


def output_arc(place: Place, tokens: int = 1) -> OutputGate:
    """Standard Petri-net output arc: deposits ``tokens``."""
    if tokens < 1:
        raise ValueError(f"output arc multiplicity must be >= 1, got {tokens}")

    def function(g: GateView) -> None:
        g.inc("p", tokens)

    return OutputGate(f"arc_out({place.name},{tokens})", {"p": place}, function)
