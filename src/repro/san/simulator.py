"""Discrete-event execution of SAN models.

Two engines:

* :class:`SANSimulator` — general event-driven executor supporting any
  firing-time distribution, with Möbius execution semantics: input-gate
  predicates define enabling; instantaneous activities fire (highest
  priority first) until the marking is stable before time advances; timed
  activities keep their sampled completion times while they remain enabled,
  are cancelled when disabled, and are resampled when re-enabled or when a
  marking-dependent rate's inputs change.

* :class:`MarkovJumpSimulator` — jump-chain executor for all-exponential
  models.  Slightly slower per event but supports *importance sampling*
  (failure biasing) with exact likelihood-ratio weights, which is what makes
  the paper's rare unsafety probabilities (down to 1e-13) estimable by
  simulation at all.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.san.activities import InstantaneousActivity, TimedActivity
from repro.san.marking import Marking, MarkingFunction
from repro.san.model import SANModel
from repro.san.places import Place
from repro.stochastic.rng import RandomStream

__all__ = ["SANSimulator", "MarkovJumpSimulator", "SimulationRun"]

#: Safety bound on consecutive instantaneous firings before declaring an
#: unstable (looping) vanishing marking.
MAX_INSTANTANEOUS_CHAIN = 100_000


class UnstableMarkingError(RuntimeError):
    """Instantaneous activities fired in an apparent infinite loop."""


@dataclass
class SimulationRun:
    """Outcome of one simulation replication."""

    #: simulated time at which the run ended (horizon, stop, or deadlock)
    end_time: float
    #: True when the stop predicate was satisfied
    stopped: bool
    #: time of first stop-predicate satisfaction (inf if never)
    stop_time: float
    #: importance-sampling likelihood-ratio weight (1.0 unbiased)
    weight: float
    #: number of timed firings executed
    firings: int
    #: final marking (shared object; copy before mutating)
    final_marking: Marking
    #: per-activity firing counts (only when tracing was requested)
    activity_counts: dict[str, int] = field(default_factory=dict)
    #: time integrals of requested rate rewards (∫ r(X_s) ds over the run)
    reward_integrals: dict[str, float] = field(default_factory=dict)


def _stabilize(
    model: SANModel,
    marking: Marking,
    stream: RandomStream,
    counts: Optional[dict[str, int]] = None,
) -> None:
    """Fire enabled instantaneous activities until none remains.

    Firing order: priority descending, then model insertion order — a
    deterministic policy (documented in the package docstring).
    """
    if not model.instantaneous_activities:
        return
    ordered = model.ordered_instantaneous()
    for _ in range(MAX_INSTANTANEOUS_CHAIN):
        for activity in ordered:
            if activity.enabled(marking):
                case = activity.choose_case(marking, stream)
                activity.fire(marking, case)
                if counts is not None:
                    counts[activity.name] = counts.get(activity.name, 0) + 1
                break
        else:
            return
    raise UnstableMarkingError(
        f"more than {MAX_INSTANTANEOUS_CHAIN} consecutive instantaneous "
        f"firings in model {model.name!r}; the marking never stabilises"
    )


def _marking_delta(marking: Marking, changed: set[Place]) -> dict:
    """``{place name: new value}`` for the places touched by a firing.

    Keys are sorted so traces from the interpreted and compiled engines
    serialise identically.
    """
    return {
        place.name: marking.get(place)
        for place in sorted(changed, key=lambda p: p.name)
    }


class _RewardIntegrator:
    """Accumulates ∫ r(X_s) ds for a set of rate rewards along a run.

    Rewards are duck-typed: anything with ``.name`` and
    ``.evaluate(marking) -> float`` works (see
    :class:`repro.san.rewards.RateReward`).
    """

    __slots__ = ("rewards", "integrals")

    def __init__(self, rewards) -> None:
        self.rewards = list(rewards or ())
        self.integrals = {reward.name: 0.0 for reward in self.rewards}

    def accumulate(self, marking: Marking, dt: float) -> None:
        if dt <= 0.0:
            return
        for reward in self.rewards:
            self.integrals[reward.name] += reward.evaluate(marking) * dt


class SANSimulator:
    """Event-driven simulator for arbitrary (incl. non-Markovian) SANs.

    Parameters
    ----------
    model:
        The (flattened) SAN to execute.
    trace:
        When True, per-activity firing counts are collected (slower).
    observer:
        Optional observability hook (see :mod:`repro.obs`): any object
        with ``wants_deltas``, ``record_firing``, ``record_absorption``
        and ``record_run``.  Never consulted for randomness.
    """

    def __init__(
        self, model: SANModel, trace: bool = False, observer=None
    ) -> None:
        self.model = model
        self.trace = trace
        self.observer = observer
        # place -> timed activities whose enabling/rate could change with it
        self._deps: dict[Place, list[TimedActivity]] = {p: [] for p in model.places}
        for activity in model.timed_activities:
            for place in activity.reads():
                self._deps[place].append(activity)

    # ------------------------------------------------------------------
    def run(
        self,
        stream: RandomStream,
        horizon: float,
        stop_predicate: Optional[Callable[[Marking], bool]] = None,
        initial_marking: Optional[Marking] = None,
        start_time: float = 0.0,
        rate_rewards=None,
    ) -> SimulationRun:
        """Execute one replication.

        The run ends at the first of: ``horizon`` reached, ``stop_predicate``
        satisfied (checked after instantaneous stabilisation following each
        timed firing, and once at the start), or deadlock (no enabled timed
        activity).

        Parameters
        ----------
        rate_rewards:
            Optional rate rewards (objects with ``name`` and
            ``evaluate(marking)``) whose time integrals over the run are
            reported in :attr:`SimulationRun.reward_integrals`.

        Returns
        -------
        SimulationRun
        """
        if horizon < start_time:
            raise ValueError(f"horizon {horizon} precedes start {start_time}")
        model = self.model
        marking = (
            initial_marking.copy() if initial_marking else model.initial_marking()
        )
        counts: Optional[dict[str, int]] = {} if self.trace else None
        observer = self.observer
        integrator = _RewardIntegrator(rate_rewards)
        _stabilize(model, marking, stream, counts)
        marking.clear_changed()

        if stop_predicate is not None and stop_predicate(marking):
            if observer is not None:
                observer.record_absorption("(initial)", start_time, marking)
                observer.record_run(True, start_time, 1.0, start_time)
            return SimulationRun(
                end_time=start_time,
                stopped=True,
                stop_time=start_time,
                weight=1.0,
                firings=0,
                final_marking=marking,
                activity_counts=counts or {},
                reward_integrals=integrator.integrals,
            )

        now = start_time
        heap: list[tuple[float, int, TimedActivity, int]] = []
        tokens: dict[TimedActivity, int] = {}
        scheduled: dict[TimedActivity, float] = {}
        seq = 0

        def schedule(activity: TimedActivity) -> None:
            nonlocal seq
            delay = activity.sample_delay(marking, stream)
            if not math.isfinite(delay):
                return  # rate 0: enabled but firing never
            token = tokens.get(activity, 0) + 1
            tokens[activity] = token
            when = now + delay
            scheduled[activity] = when
            seq += 1
            heapq.heappush(heap, (when, seq, activity, token))

        def unschedule(activity: TimedActivity) -> None:
            tokens[activity] = tokens.get(activity, 0) + 1
            scheduled.pop(activity, None)

        for activity in model.timed_activities:
            if activity.enabled(marking):
                schedule(activity)

        firings = 0
        while heap:
            when, _, activity, token = heapq.heappop(heap)
            if tokens.get(activity) != token:
                continue  # stale entry
            if when > horizon:
                integrator.accumulate(marking, horizon - now)
                now = horizon
                break
            sojourn = when - now
            integrator.accumulate(marking, sojourn)
            now = when
            scheduled.pop(activity, None)
            tokens[activity] = token + 1  # consumed

            case = activity.choose_case(marking, stream)
            activity.fire(marking, case)
            firings += 1
            if counts is not None:
                counts[activity.name] = counts.get(activity.name, 0) + 1
            _stabilize(model, marking, stream, counts)
            changed = marking.clear_changed()

            if observer is not None:
                delta = (
                    _marking_delta(marking, changed)
                    if observer.wants_deltas
                    else None
                )
                observer.record_firing(activity.name, now, sojourn, case, delta)

            if stop_predicate is not None and stop_predicate(marking):
                if observer is not None:
                    observer.record_absorption(activity.name, now, marking)
                    observer.record_run(True, now, 1.0, now)
                return SimulationRun(
                    end_time=now,
                    stopped=True,
                    stop_time=now,
                    weight=1.0,
                    firings=firings,
                    final_marking=marking,
                    activity_counts=counts or {},
                    reward_integrals=integrator.integrals,
                )

            affected: set[TimedActivity] = {activity}
            for place in changed:
                affected.update(self._deps.get(place, ()))
            for candidate in affected:
                is_enabled = candidate.enabled(marking)
                was_scheduled = candidate in scheduled
                if is_enabled and not was_scheduled:
                    schedule(candidate)
                elif not is_enabled and was_scheduled:
                    unschedule(candidate)
                elif is_enabled and was_scheduled:
                    # Resample when a marking-dependent rate may have moved
                    # (memoryless, so resampling is distribution-preserving).
                    rate = candidate.rate
                    if isinstance(rate, MarkingFunction) and (
                        changed & rate.reads()
                    ):
                        unschedule(candidate)
                        schedule(candidate)

        # queue drained (deadlock) or horizon reached: close the last
        # constant-marking segment
        if now < horizon:
            integrator.accumulate(marking, horizon - now)
            now = horizon
        if observer is not None:
            observer.record_run(False, math.inf, 1.0, now)
        return SimulationRun(
            end_time=now,
            stopped=False,
            stop_time=math.inf,
            weight=1.0,
            firings=firings,
            final_marking=marking,
            activity_counts=counts or {},
            reward_integrals=integrator.integrals,
        )


@dataclass
class JumpOutcome:
    """Result of :meth:`MarkovJumpSimulator.simulate` (one path segment)."""

    marking: Marking
    time: float
    weight: float
    stopped: bool
    stop_time: float
    crossed: bool
    firings: int
    reward_integrals: dict[str, float] = field(default_factory=dict)


class MarkovJumpSimulator:
    """Jump-chain simulator for all-exponential SANs with optional biasing.

    Importance sampling: ``bias`` maps activity names to rate multipliers
    (> 0).  The simulator samples the biased process and maintains the exact
    Radon-Nikodym weight so that ``weight * indicator`` is an unbiased
    estimator under the original measure.  Only timed-activity rates are
    biased; case selection stays unbiased.

    Parameters
    ----------
    model:
        The flattened SAN; every timed activity must be exponential.
    bias:
        Optional activity-name → rate-multiplier mapping.
    observer:
        Optional observability hook (see :mod:`repro.obs`).  Hooks fire
        *after* every random draw of the step they describe, and never
        consult the stream — draw order and weights are bit-identical
        with the observer attached or not.
    """

    #: engine label reported in runtime telemetry footers
    engine_name = "interpreted"

    def __init__(
        self,
        model: SANModel,
        bias: Optional[Mapping[str, float]] = None,
        observer=None,
    ) -> None:
        if not model.is_markovian:
            bad = [a.name for a in model.timed_activities if not a.is_markovian]
            raise TypeError(
                f"MarkovJumpSimulator requires exponential activities; "
                f"non-exponential: {bad[:5]}"
            )
        self.model = model
        self.bias: dict[str, float] = dict(bias or {})
        unknown = set(self.bias) - {a.name for a in model.timed_activities}
        if unknown:
            raise ValueError(f"bias refers to unknown activities: {sorted(unknown)}")
        for name, factor in self.bias.items():
            if factor <= 0.0 or not math.isfinite(factor):
                raise ValueError(
                    f"bias factor for {name!r} must be finite and > 0, got {factor}"
                )
        self.observer = observer
        #: timed firings executed over this simulator's lifetime (events/sec
        #: telemetry; reset by the caller if per-window numbers are needed)
        self.fired_events = 0

    # ------------------------------------------------------------------
    def run(
        self,
        stream: RandomStream,
        horizon: float,
        stop_predicate: Optional[Callable[[Marking], bool]] = None,
        rate_rewards=None,
    ) -> SimulationRun:
        """One replication from the model's initial marking."""
        outcome = self.simulate(
            self.model.initial_marking(),
            start_time=0.0,
            horizon=horizon,
            stream=stream,
            stop_predicate=stop_predicate,
            rate_rewards=rate_rewards,
        )
        if self.observer is not None:
            self.observer.record_run(
                outcome.stopped, outcome.stop_time, outcome.weight, outcome.time
            )
        return SimulationRun(
            end_time=outcome.time,
            stopped=outcome.stopped,
            stop_time=outcome.stop_time,
            weight=outcome.weight,
            firings=outcome.firings,
            final_marking=outcome.marking,
            reward_integrals=outcome.reward_integrals,
        )

    def simulate(
        self,
        marking: Marking,
        start_time: float,
        horizon: float,
        stream: RandomStream,
        stop_predicate: Optional[Callable[[Marking], bool]] = None,
        level_fn: Optional[Callable[[Marking], float]] = None,
        level_target: Optional[float] = None,
        initial_weight: float = 1.0,
        rate_rewards=None,
    ) -> JumpOutcome:
        """Simulate a path segment (the splitting engine's building block).

        The segment ends at the first of: ``horizon``; ``stop_predicate``
        true; ``level_fn(marking) >= level_target`` (a *crossing*, used by
        multilevel splitting); or deadlock.

        Parameters mirror :meth:`run`; ``marking`` is mutated in place (pass
        a copy to preserve the entry state).
        """
        model = self.model
        timed = model.timed_activities
        weight = float(initial_weight)
        now = float(start_time)
        firings = 0
        observer = self.observer
        integrator = _RewardIntegrator(rate_rewards)

        _stabilize(model, marking, stream)
        marking.clear_changed()
        if stop_predicate is not None and stop_predicate(marking):
            if observer is not None:
                observer.record_absorption("(initial)", now, marking)
            return JumpOutcome(
                marking, now, weight, True, now, False, firings,
                integrator.integrals,
            )
        if (
            level_fn is not None
            and level_target is not None
            and level_fn(marking) >= level_target
        ):
            return JumpOutcome(
                marking, now, weight, False, math.inf, True, firings,
                integrator.integrals,
            )

        while now < horizon:
            original_rates: list[float] = []
            biased_rates: list[float] = []
            enabled: list[TimedActivity] = []
            total = 0.0
            total_biased = 0.0
            for activity in timed:
                if not activity.enabled(marking):
                    continue
                rate = activity.rate_in(marking)
                if rate <= 0.0:
                    continue
                factor = self.bias.get(activity.name, 1.0)
                enabled.append(activity)
                original_rates.append(rate)
                biased_rates.append(rate * factor)
                total += rate
                total_biased += rate * factor

            if not enabled:
                # deadlock: the marking persists until the horizon
                integrator.accumulate(marking, horizon - now)
                return JumpOutcome(
                    marking, now, weight, False, math.inf, False, firings,
                    integrator.integrals,
                )

            holding = stream.exponential(total_biased)
            if now + holding > horizon:
                # No event before the horizon under the biased law; correct
                # for the survival-probability ratio over the residual time.
                weight *= math.exp(-(total - total_biased) * (horizon - now))
                integrator.accumulate(marking, horizon - now)
                now = horizon
                break

            index = stream.choice_index(biased_rates)
            activity = enabled[index]
            weight *= (
                original_rates[index] / biased_rates[index]
            ) * math.exp(-(total - total_biased) * holding)
            integrator.accumulate(marking, holding)
            now += holding

            case = activity.choose_case(marking, stream)
            activity.fire(marking, case)
            firings += 1
            self.fired_events += 1
            _stabilize(model, marking, stream)
            changed = marking.clear_changed()

            if observer is not None:
                delta = (
                    _marking_delta(marking, changed)
                    if observer.wants_deltas
                    else None
                )
                observer.record_firing(activity.name, now, holding, case, delta)

            if stop_predicate is not None and stop_predicate(marking):
                if observer is not None:
                    observer.record_absorption(activity.name, now, marking)
                return JumpOutcome(
                    marking, now, weight, True, now, False, firings,
                    integrator.integrals,
                )
            if (
                level_fn is not None
                and level_target is not None
                and level_fn(marking) >= level_target
            ):
                return JumpOutcome(
                    marking, now, weight, False, math.inf, True, firings,
                    integrator.integrals,
                )

        return JumpOutcome(
            marking, now, weight, False, math.inf, False, firings,
            integrator.integrals,
        )
