"""Batched SAN execution: a NumPy structure-of-arrays replication kernel.

The compiled engine (:mod:`repro.san.compiled`) advances one replication
at a time: every jump pays Python-level closure calls for the affected
gates plus an O(activities) total-rate reduction.  This module amortises
that cost over a *batch* of B replications advanced in lockstep:

* the batch's markings live in a ``(B, n_places)`` int64 matrix (column
  major, so per-place columns are contiguous) mirrored from exact
  per-row Python values;
* a lowering pass translates the paper model's gate predicates and rate
  functions — threshold comparisons and arithmetic on place markings —
  into vectorized column expressions, evaluated once per changed place
  for all B rows instead of once per row;
* per-row propensity vectors (rows of the ``(B, n_activities)`` rate
  tables) are maintained incrementally through the same changed-slot
  bitmask protocol as the compiled engine;
* rows that absorb (stop predicate), deadlock, or reach the horizon are
  masked out while the rest of the batch keeps running.

Any gate that resists lowering (writes, extended places, ``float()``
coercions, data-dependent Python control flow beyond branch-enumerable
comparisons) automatically degrades to a **per-row closure fallback**
that reuses the compiled engine's tracing closures — arbitrary SANs
still run, only the lowered fraction of the model gets the vector
speedup.

Equivalence contract (``tests/san/test_batched_equivalence``): each row
draws from its *own* :class:`~repro.stochastic.rng.RandomStream` in
exactly the compiled engine's order, totals are reduced with
``np.cumsum`` (strictly sequential, bitwise equal to the interpreted
engine's left-to-right sum) and activity selection replays
``choice_index`` via ``np.searchsorted`` (bitwise equal to
``bisect_right``).  Runs are therefore **bit-identical** to the compiled
engine — same draw counts, weights, stop times and final markings — at
*any* batch size, including under importance-sampling bias.

Observers force the per-row fallback path: with an observer attached,
``run``/``run_batch`` delegate row by row to an internal
:class:`~repro.san.compiled.CompiledJumpEngine` sharing the same compile
pass, preserving the trace ordering and RNG-invariance guarantees of the
observability layer.  ``simulate`` (splitting segments, arbitrary start
markings, level functions) always delegates.

See ``docs/engine_perf.md`` for layout details and batch-size guidance.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping, Optional, Union

import numpy as np

from repro.san.compiled import (
    CompiledJumpEngine,
    CompiledMarking,
    CompiledModel,
    _compile_chooser,
    _compile_enabled,
    _compile_fire,
    _compile_rate,
    _enabling_reads,
    compile_model,
)
from repro.san.model import SANModel
from repro.san.simulator import (
    MAX_INSTANTANEOUS_CHAIN,
    SimulationRun,
    UnstableMarkingError,
    _RewardIntegrator,
)
from repro.stochastic.rng import RandomStream

__all__ = ["DEFAULT_BATCH_SIZE", "BatchedJumpEngine"]

#: default replications advanced in lockstep (see docs/engine_perf.md)
DEFAULT_BATCH_SIZE = 256

# lowering caps: a gate whose branch structure exceeds these falls back
# to the per-row closure path instead of exploding the compile pass
_MAX_PATHS = 128
_MAX_DEPTH = 48


class _CannotLower(BaseException):
    """Raised (and caught internally) when a gate resists vectorization.

    Deliberately a ``BaseException``: gate code wrapped in broad
    ``except Exception`` handlers must not swallow the abort signal and
    let a half-traced expression masquerade as a lowered result.
    """


# ----------------------------------------------------------------------
# symbolic tracing: expression nodes + branch-path enumeration
# ----------------------------------------------------------------------
#: the branch trail the tracer is currently recording into (single
#: threaded by construction: lowering happens once, at engine build)
_ACTIVE_TRAIL: list = [None]


class _Node:
    """A deferred column expression over the batch marking matrix.

    ``ev(M)`` maps the ``(B, n_slots)`` matrix to a length-B column (or
    a scalar for constant subtrees).  Arithmetic and comparisons build
    bigger nodes; truthiness (`bool`) defers to the active branch trail,
    which is how data-dependent control flow is enumerated.  Escapes the
    numeric domain (``float``/``int``/``len``/iteration) abort lowering.
    """

    __slots__ = ("ev",)

    def __init__(self, ev: Callable[[np.ndarray], Any]) -> None:
        self.ev = ev

    # -- coercions that end symbolic execution --------------------------
    def __bool__(self) -> bool:
        trail = _ACTIVE_TRAIL[0]
        if trail is None:
            raise _CannotLower("truth value outside a tracing context")
        return trail.decide(self)

    def __float__(self):
        raise _CannotLower("float() coercion")

    def __int__(self):
        raise _CannotLower("int() coercion")

    def __index__(self):
        raise _CannotLower("index coercion")

    def __iter__(self):
        raise _CannotLower("iteration over a marking expression")

    def __len__(self):
        raise _CannotLower("len() of a marking expression")

    def __hash__(self):
        raise _CannotLower("hashing a marking expression")


def _ev_of(value: Any) -> Callable[[np.ndarray], Any]:
    """The evaluator of an operand (node or plain number)."""
    if isinstance(value, _Node):
        return value.ev
    if isinstance(value, (bool, int, float)):
        return lambda M, _c=value: _c
    raise _CannotLower(f"non-numeric operand {type(value).__name__}")


def _binary(op: Callable[[Any, Any], Any]):
    def method(self: _Node, other: Any) -> _Node:
        ev_other = _ev_of(other)
        ev_self = self.ev
        return _Node(lambda M: op(ev_self(M), ev_other(M)))

    return method


def _rbinary(op: Callable[[Any, Any], Any]):
    def method(self: _Node, other: Any) -> _Node:
        ev_other = _ev_of(other)
        ev_self = self.ev
        return _Node(lambda M: op(ev_other(M), ev_self(M)))

    return method


def _unary(op: Callable[[Any], Any]):
    def method(self: _Node) -> _Node:
        ev_self = self.ev
        return _Node(lambda M: op(ev_self(M)))

    return method


import operator as _op  # noqa: E402  (kept next to its sole use)

for _name, _fn in [
    ("__add__", _op.add), ("__sub__", _op.sub), ("__mul__", _op.mul),
    ("__truediv__", _op.truediv), ("__floordiv__", _op.floordiv),
    ("__mod__", _op.mod), ("__pow__", _op.pow),
    ("__lt__", _op.lt), ("__le__", _op.le), ("__gt__", _op.gt),
    ("__ge__", _op.ge), ("__eq__", _op.eq), ("__ne__", _op.ne),
]:
    setattr(_Node, _name, _binary(_fn))
for _name, _fn in [
    ("__radd__", _op.add), ("__rsub__", _op.sub), ("__rmul__", _op.mul),
    ("__rtruediv__", _op.truediv), ("__rfloordiv__", _op.floordiv),
    ("__rmod__", _op.mod), ("__rpow__", _op.pow),
]:
    setattr(_Node, _name, _rbinary(_fn))
for _name, _fn in [
    ("__neg__", _op.neg), ("__pos__", _op.pos), ("__abs__", _op.abs),
]:
    setattr(_Node, _name, _unary(_fn))
del _name, _fn


class _BranchTrail:
    """One forced-outcome replay of a gate function.

    The first ``len(forced)`` truthiness decisions take the forced
    outcomes; later ones default to ``True`` and are recorded so the
    enumerator can queue their flipped variants.
    """

    __slots__ = ("forced", "decisions")

    def __init__(self, forced: tuple) -> None:
        self.forced = forced
        self.decisions: list[tuple[_Node, bool]] = []

    def decide(self, node: _Node) -> bool:
        depth = len(self.decisions)
        if depth >= _MAX_DEPTH:
            raise _CannotLower("branch depth cap exceeded")
        outcome = self.forced[depth] if depth < len(self.forced) else True
        self.decisions.append((node, outcome))
        return outcome


class _LowerView:
    """The gate-view stand-in used while tracing a predicate or rate.

    Bound to a *group* of activities sharing the same gate/rate code:
    each local name maps to one slot per group member, so reads return
    ``(B, G)`` column-block :class:`_Node` expressions and record every
    member's global slot.  Writes and extended-place reads abort
    lowering (the per-row closure fallback handles those activities with
    compiled-engine semantics).
    """

    __slots__ = ("_cols", "_extended", "reads")

    def __init__(
        self, cols: dict[str, np.ndarray], extended: frozenset
    ) -> None:
        self._cols = cols
        self._extended = extended
        self.reads: set[int] = set()

    def __getitem__(self, local: str) -> _Node:
        cols = self._cols[local]  # KeyError → _CannotLower via enumerator
        slots = [int(slot) for slot in cols]
        if any(slot in self._extended for slot in slots):
            raise _CannotLower(f"extended place read {local!r}")
        self.reads.update(slots)
        return _Node(lambda M, _c=cols: M[:, _c])

    def __setitem__(self, local: str, value: Any):
        raise _CannotLower("marking write during predicate/rate tracing")

    def inc(self, local: str, amount: int = 1):
        raise _CannotLower("marking write during predicate/rate tracing")

    def dec(self, local: str, amount: int = 1):
        raise _CannotLower("marking write during predicate/rate tracing")

    def tuple_set(self, local: str, index: int, value: Any):
        raise _CannotLower("marking write during predicate/rate tracing")


def _enumerate_paths(fn: Callable, view: _LowerView) -> list:
    """All (decision sequence, result) pairs of ``fn`` over the view.

    Depth-first forced replay: run with every decision defaulting to
    True, then re-run with each defaulted decision flipped, recursively.
    Pure numeric gate code terminates with at most 2^depth paths; the
    caps bound pathological cases.
    """
    paths = []
    stack: list[tuple] = [()]
    while stack:
        forced = stack.pop()
        trail = _BranchTrail(forced)
        previous = _ACTIVE_TRAIL[0]
        _ACTIVE_TRAIL[0] = trail
        try:
            result = fn(view)
        except _CannotLower:
            raise
        except Exception as exc:
            # a gate that raises under some branch combination cannot be
            # vectorized; the runtime fallback reproduces the real error
            raise _CannotLower(f"path evaluation raised {type(exc).__name__}")
        finally:
            _ACTIVE_TRAIL[0] = previous
        paths.append((tuple(trail.decisions), result))
        if len(paths) > _MAX_PATHS:
            raise _CannotLower("branch path cap exceeded")
        for depth in range(len(forced), len(trail.decisions)):
            prefix = tuple(o for _, o in trail.decisions[:depth])
            stack.append(prefix + (False,))
    return paths


def _build_tree(paths: list, depth: int):
    """Fold enumerated paths into a binary decision tree.

    Nodes are ``("leaf", value)`` or ``("branch", cond, true, false)``.
    Purity of gate code guarantees all paths sharing a decision prefix
    met the same condition at the same depth; violations abort lowering.
    """
    terminal = [p for p in paths if len(p[0]) == depth]
    ongoing = [p for p in paths if len(p[0]) > depth]
    if terminal and ongoing:
        raise _CannotLower("non-deterministic branch structure")
    if terminal:
        if len(terminal) != 1:
            raise _CannotLower("duplicate decision paths")
        value = terminal[0][1]
        if not isinstance(value, (_Node, bool, int, float)):
            raise _CannotLower(f"non-numeric result {type(value).__name__}")
        return ("leaf", value)
    if not ongoing:
        raise _CannotLower("empty path set")
    condition = ongoing[0][0][depth][0]
    true_side = [p for p in ongoing if p[0][depth][1]]
    false_side = [p for p in ongoing if not p[0][depth][1]]
    if not true_side or not false_side:
        raise _CannotLower("one-sided branch enumeration")
    return (
        "branch",
        condition,
        _build_tree(true_side, depth + 1),
        _build_tree(false_side, depth + 1),
    )


def _tree_expr(tree) -> tuple[Callable, Optional[float]]:
    """Fold the tree into one column expression ``expr(M)``.

    Returns ``(expr, const)`` where ``const`` is the Python value when
    the whole tree is a constant leaf (letting callers special-case it).
    Branches become element-wise ``np.where`` selections — both sides are
    evaluated over all rows, which is exactly what the earlier masked
    formulation did too (a leaf's expression ignores its mask), so the
    selected values are bit-identical while the per-branch mask algebra,
    ``.any()`` guards and per-leaf ``copyto`` calls disappear.
    """
    kind = tree[0]
    if kind == "leaf":
        value = tree[1]
        if isinstance(value, _Node):
            return value.ev, None
        constant = float(value)
        return (lambda M, _c=constant: _c), constant

    _, condition, true_tree, false_tree = tree
    cond_ev = condition.ev
    true_expr, true_const = _tree_expr(true_tree)
    false_expr, false_const = _tree_expr(false_tree)
    if true_const == 1.0 and false_const == 0.0:
        # `x and y`-style predicate chains bottom out in 1/0 leaves; the
        # branch then IS its condition (as 0/1 via the boolean array)
        return (lambda M: np.asarray(cond_ev(M)) != 0), None

    def expr(M):
        return np.where(
            np.asarray(cond_ev(M)) != 0, true_expr(M), false_expr(M)
        )

    return expr, None


def _lower_group(
    fn: Callable,
    bindings: list[dict[str, int]],
    extended: frozenset,
) -> tuple[Callable, set[int]]:
    """Lower one predicate/rate over a member group.

    ``bindings`` carries each member's local-name → global-slot mapping;
    the shared ``fn`` is traced once and the resulting expression reads
    ``(B, G)`` column blocks (member ``g``'s slots in column ``g``).
    Returns the fused expression and the union of read slots.
    """
    try:
        cols = {
            name: np.array(
                [binding[name] for binding in bindings], dtype=np.intp
            )
            for name in bindings[0]
        }
    except KeyError as exc:
        raise _CannotLower(f"unaligned gate binding {exc}") from None
    view = _LowerView(cols, extended)
    paths = _enumerate_paths(fn, view)
    tree = _build_tree(paths, 0)
    expr, _const = _tree_expr(tree)
    return expr, set(view.reads)


class _LoweredGroup:
    """Timed activities sharing gate/rate code, refreshed as one block.

    The paper model instantiates the same per-vehicle activity types
    across its 2n replicas, so most predicate/rate *functions* recur ~2n
    times with different place bindings.  Grouping those members means
    each unique decision tree is evaluated once per refresh over a
    ``(B, G)`` column block instead of once per member — the second
    amortization axis of the SoA layout (rows amortize over
    replications, columns over model replicas).
    """

    __slots__ = ("indices", "names", "gate_exprs", "eff_consts",
                 "rate_expr", "factors", "any_factor", "reads_mask")

    def __init__(self, indices, names, gate_exprs, eff_consts, rate_expr,
                 factors, reads_mask: int) -> None:
        self.indices = indices        # (G,) intp — activity columns in R
        self.names = names
        self.gate_exprs = gate_exprs  # fused truthy expressions, (B, G)
        self.eff_consts = eff_consts  # (G,) float64, <= 0 clamped (or None)
        self.rate_expr = rate_expr
        self.factors = factors        # (G,) float64 bias multipliers
        self.any_factor = bool((factors != 1.0).any())
        self.reads_mask = reads_mask

    def refresh(self, M, Ro, Rb, alive, has_bias: bool) -> None:
        """Recompute the group's rate columns from the matrix.

        Pure block math over all B rows and all G members (recomputing
        unchanged lanes is bitwise harmless); only the negative-rate
        guard is restricted to live rows, matching the compiled engine's
        evaluate-on-demand error surface.
        """
        shape = (M.shape[0], len(self.indices))
        enabled = None
        for expr in self.gate_exprs:
            gate = np.asarray(expr(M)) != 0
            enabled = gate if enabled is None else (enabled & gate)
        if enabled is not None and enabled.ndim != 2:
            enabled = np.broadcast_to(enabled, shape)
        if self.rate_expr is None:
            if enabled is None:
                block = np.broadcast_to(self.eff_consts, shape)
            else:
                block = np.where(enabled, self.eff_consts, 0.0)
        else:
            rates = np.asarray(self.rate_expr(M), dtype=np.float64)
            if rates.ndim != 2:
                rates = np.broadcast_to(rates, shape)
            # NaN rates count as "not > 0" (disabled), like the scalar path
            positive = rates > 0.0
            negative = alive[:, None] & (rates < 0.0)
            if enabled is not None:
                positive = enabled & positive
                negative = enabled & negative
            if negative.any():
                row, col = divmod(int(np.argmax(negative)), shape[1])
                raise ValueError(
                    f"activity {self.names[col]!r}: negative rate "
                    f"{float(rates[row, col])}"
                )
            block = np.where(positive, rates, 0.0)
        Ro[:, self.indices] = block
        if has_bias:
            if self.any_factor:
                Rb[:, self.indices] = block * self.factors
            else:
                Rb[:, self.indices] = block

    def refresh_rows(self, M, rows, Ro, Rb, has_bias: bool) -> None:
        """Row-restricted :meth:`refresh` for cross-point tensor runs.

        A multi-point tensor interleaves rows of *different* models in
        one matrix, so a full-matrix refresh would scribble this group's
        rate columns over sibling points' rows (and evaluate its trees
        on foreign markings).  This variant evaluates the same lowered
        expressions on the ``rows`` sub-matrix — elementwise ufuncs are
        bitwise shape-independent, so the written lanes hold exactly the
        full-matrix values — and writes only those rows.  Callers pass
        the owning point's *alive* rows, which keeps the negative-rate
        guard on the same rows the full refresh restricts it to.
        """
        sub = M[rows]
        shape = (len(rows), len(self.indices))
        enabled = None
        for expr in self.gate_exprs:
            gate = np.asarray(expr(sub)) != 0
            enabled = gate if enabled is None else (enabled & gate)
        if enabled is not None and enabled.ndim != 2:
            enabled = np.broadcast_to(enabled, shape)
        if self.rate_expr is None:
            if enabled is None:
                block = np.broadcast_to(self.eff_consts, shape)
            else:
                block = np.where(enabled, self.eff_consts, 0.0)
        else:
            rates = np.asarray(self.rate_expr(sub), dtype=np.float64)
            if rates.ndim != 2:
                rates = np.broadcast_to(rates, shape)
            positive = rates > 0.0
            negative = rates < 0.0
            if enabled is not None:
                positive = enabled & positive
                negative = enabled & negative
            if negative.any():
                row, col = divmod(int(np.argmax(negative)), shape[1])
                raise ValueError(
                    f"activity {self.names[col]!r}: negative rate "
                    f"{float(rates[row, col])}"
                )
            block = np.where(positive, rates, 0.0)
        rows2 = rows[:, None]
        Ro[rows2, self.indices] = block
        if has_bias:
            if self.any_factor:
                Rb[rows2, self.indices] = block * self.factors
            else:
                Rb[rows2, self.indices] = block


class _BatchCursor(CompiledMarking):
    """A :class:`CompiledMarking` pointed at one row of the batch.

    ``values`` aliases the current row's exact Python-valued list (so
    closures, validators and stop predicates see the compiled engine's
    value domain), while integer writes are mirrored into the int64
    matrix column the vector kernels read.
    """

    __slots__ = ("_rows", "_matrix", "_mirror", "_row")

    def __init__(self, compiled: CompiledModel) -> None:
        super().__init__(
            compiled.places, compiled.slot_of, compiled.validators,
            list(compiled.initial_values),
        )
        self._rows: list[list] = []
        self._matrix: Optional[np.ndarray] = None
        self._mirror = [not place.is_extended for place in compiled.places]
        self._row = 0

    def bind_batch(self, rows: list[list], matrix: np.ndarray) -> None:
        self._rows = rows
        self._matrix = matrix
        self._row = 0
        if rows:
            self.values = rows[0]
        self.changed_mask = 0

    def set_row(self, row: int) -> None:
        self._row = row
        self.values = self._rows[row]

    def set_slot(self, slot: int, value: Any) -> None:
        value = self._validators[slot](value)
        if self.values[slot] != value:
            self.values[slot] = value
            self.changed_mask |= 1 << slot
            if self._mirror[slot]:
                self._matrix[self._row, slot] = value


class BatchedJumpEngine:
    """Lockstep batch executor over a compiled SAN (NumPy SoA kernel).

    Semantically a drop-in for :class:`CompiledJumpEngine` — same
    constructor validation, same ``run``/``simulate`` surface plus
    :meth:`run_batch` — producing bit-identical results per stream at
    any batch size.  The throughput win comes from vectorizing the
    model's *lowerable* gates (all of the paper model's structural
    gates) across rows; unlowerable activities transparently use the
    compiled engine's per-row closures.

    Parameters
    ----------
    model:
        The flattened all-exponential SAN or a shared
        :class:`CompiledModel`.
    bias:
        Optional activity-name → rate multiplier (importance sampling).
    observer:
        Optional observability hook; forces per-row delegation to an
        internal compiled engine so trace ordering and RNG invariance
        are preserved (see module docstring).
    batch_size:
        Default lockstep width, used by callers that slice replication
        stream batches (``run_batch`` itself accepts any length).
    diagnose:
        Compile-for-inspection mode: run the full lowering pass (so
        ``lowering_stats``/``fallback_reasons`` and the lowered trees are
        populated) but skip the per-row delegate and every runtime
        closure.  A diagnose engine cannot run — ``run``/``simulate``/
        ``run_batch`` raise — which is what the static analyzer wants:
        lowering facts without paying for executable kernels.
    """

    #: engine label reported in runtime telemetry footers
    engine_name = "batched"

    def __init__(
        self,
        model: Union[SANModel, CompiledModel],
        bias: Optional[Mapping[str, float]] = None,
        observer=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        diagnose: bool = False,
    ) -> None:
        compiled = model if isinstance(model, CompiledModel) else None
        san = compiled.model if compiled is not None else model
        if not san.is_markovian:
            bad = [a.name for a in san.timed_activities if not a.is_markovian]
            raise TypeError(
                f"BatchedJumpEngine requires exponential activities; "
                f"non-exponential: {bad[:5]}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.compiled = compiled if compiled is not None else compile_model(san)
        self.model = self.compiled.model
        self.batch_size = int(batch_size)
        self.bias: dict[str, float] = dict(bias or {})
        unknown = set(self.bias) - {a.name for a in self.model.timed_activities}
        if unknown:
            raise ValueError(f"bias refers to unknown activities: {sorted(unknown)}")
        for name, factor in self.bias.items():
            if factor <= 0.0 or not math.isfinite(factor):
                raise ValueError(
                    f"bias factor for {name!r} must be finite and > 0, got {factor}"
                )
        self.observer = observer
        self.diagnose = bool(diagnose)
        self._kernel_events = 0
        # per-row delegate: observed runs, simulate() segments, and the
        # unlowerable remainder share this engine's compile pass
        self._delegate = (
            None
            if self.diagnose
            else CompiledJumpEngine(self.compiled, bias=bias, observer=observer)
        )
        self._bind()

    # ------------------------------------------------------------------
    def _require_runtime(self) -> None:
        if self.diagnose:
            raise RuntimeError(
                f"{type(self).__name__} was built with diagnose=True and "
                f"has no runtime kernels; construct without diagnose to run"
            )

    @property
    def fired_events(self) -> int:
        """Timed firings over this engine's lifetime (kernel + delegate)."""
        delegated = 0 if self._delegate is None else self._delegate.fired_events
        return self._kernel_events + delegated

    @property
    def has_bias(self) -> bool:
        """Whether any activity carries an importance-sampling factor.

        Multi-point tensor runs partition engines on this flag: biased
        and unbiased rows cannot share one cumulative-sum pass because
        the biased path draws against ``Rb`` while computing weights
        from ``Ro``.
        """
        return self._has_bias

    # ------------------------------------------------------------------
    def _bind(self) -> None:
        """Lower what lowers; compile per-row closures for the rest."""
        compiled = self.compiled
        slot_of = compiled.slot_of
        cursor = _BatchCursor(compiled)
        self._cursor = cursor
        self._n = compiled.n_timed
        self._factors = [
            self.bias.get(activity.name, 1.0) for activity in compiled.timed
        ]
        self._has_bias = any(factor != 1.0 for factor in self._factors)
        extended = frozenset(
            slot for slot, place in enumerate(compiled.places)
            if place.is_extended
        )

        # group members by shared gate/rate *code*: the composed model
        # stamps the same per-vehicle activity types across 2n replicas,
        # so one traced tree covers a whole column block of activities
        signatures: dict[tuple, list[int]] = {}
        for index, activity in enumerate(compiled.timed):
            _constant, rate_fn = activity.exponential_parts()
            signature = (
                tuple(id(gate.predicate) for gate in activity.input_gates),
                id(rate_fn.fn) if rate_fn is not None else None,
            )
            signatures.setdefault(signature, []).append(index)

        def lower_members(indices: list[int]) -> _LoweredGroup:
            members = [compiled.timed[i] for i in indices]
            template = members[0]
            gate_exprs = []
            reads: set[int] = set()
            for position in range(len(template.input_gates)):
                expr, gate_reads = _lower_group(
                    template.input_gates[position].predicate,
                    [m.input_gates[position].slot_binding(slot_of)
                     for m in members],
                    extended,
                )
                gate_exprs.append(expr)
                reads |= gate_reads
            _c0, rate_fn = template.exponential_parts()
            if rate_fn is None:
                rate_expr = None
                consts = np.array(
                    [float(m.exponential_parts()[0]) for m in members]
                )
                eff_consts = np.where(consts > 0.0, consts, 0.0)
            else:
                eff_consts = None
                rate_expr, rate_reads = _lower_group(
                    rate_fn.fn,
                    [m.exponential_parts()[1].slot_binding(slot_of)
                     for m in members],
                    extended,
                )
                reads |= rate_reads
            reads_mask = 0
            for slot in reads:
                reads_mask |= 1 << slot
            return _LoweredGroup(
                np.array(indices, dtype=np.intp),
                [m.name for m in members],
                gate_exprs,
                eff_consts,
                rate_expr,
                np.array([self._factors[i] for i in indices]),
                reads_mask,
            )

        self._lowered: list[_LoweredGroup] = []
        fallback_indices: list[int] = []
        fallback_reasons: dict[str, str] = {}
        for members in signatures.values():
            try:
                self._lowered.append(lower_members(members))
            except _CannotLower as group_exc:
                # a group can fail collectively (e.g. one member binds an
                # extended place) while others still lower individually
                group_reason = str(group_exc)
                for index in members:
                    if len(members) > 1:
                        try:
                            self._lowered.append(lower_members([index]))
                            continue
                        except _CannotLower as solo_exc:
                            fallback_reasons[compiled.timed[index].name] = str(
                                solo_exc
                            )
                    else:
                        fallback_reasons[compiled.timed[index].name] = (
                            group_reason
                        )
                    fallback_indices.append(index)
        fallback_indices.sort()
        self.fallback_reasons = fallback_reasons

        # slot → bitmask of *positions in self._lowered* (reverse index)
        self._lowered_dep = [0] * compiled.n_slots
        for position, lowered in enumerate(self._lowered):
            bit = 1 << position
            mask = lowered.reads_mask
            while mask:
                low = mask & -mask
                self._lowered_dep[low.bit_length() - 1] |= bit
                mask ^= low

        # fallback activities: compiled tracing closures over the cursor
        self._fb_indices = fallback_indices
        self._trace = [0]
        self._fb_enabled = []
        self._fb_rate_consts = []
        self._fb_rate_fns = []
        self._fb_static_reads = []
        if self.diagnose:
            # diagnose mode keeps the lowering facts (groups, fallback
            # reasons, dependency masks) but compiles no runtime closures
            self._choosers = []
            self._firers = []
            self._insta = []
            return
        for index in fallback_indices:
            activity = compiled.timed[index]
            self._fb_enabled.append(
                _compile_enabled(activity, cursor, slot_of, self._trace)
            )
            constant, fn = _compile_rate(activity, cursor, slot_of, self._trace)
            self._fb_rate_consts.append(constant)
            self._fb_rate_fns.append(fn)
            static = 0
            for place in _enabling_reads(activity):
                static |= 1 << slot_of[place]
            self._fb_static_reads.append(static)

        # fire-path closures (chooser + gate functions) for every timed
        # activity, and the instantaneous scan — all bound to the cursor
        self._choosers = [
            _compile_chooser(activity, cursor, slot_of)
            for activity in compiled.timed
        ]
        self._firers = [
            _compile_fire(activity, cursor, slot_of)
            for activity in compiled.timed
        ]
        self._insta = [
            (
                _compile_enabled(activity, cursor, slot_of),
                _compile_chooser(activity, cursor, slot_of),
                _compile_fire(activity, cursor, slot_of),
            )
            for activity in compiled.instantaneous
        ]

    # ------------------------------------------------------------------
    def lowering_stats(self) -> dict[str, int]:
        """How much of the model the vector kernels cover (reports)."""
        return {
            "timed_activities": self._n,
            "lowered": sum(len(group.indices) for group in self._lowered),
            "groups": len(self._lowered),
            "fallback": len(self._fb_indices),
        }

    # ------------------------------------------------------------------
    def _stabilize(self, stream: RandomStream) -> None:
        """Compiled-identical instantaneous scan on the cursor's row."""
        insta = self._insta
        if not insta:
            return
        for _ in range(MAX_INSTANTANEOUS_CHAIN):
            for enabled, choose, fire in insta:
                if enabled is None or enabled():
                    fire(0 if choose is None else choose(stream))
                    break
            else:
                return
        raise UnstableMarkingError(
            f"more than {MAX_INSTANTANEOUS_CHAIN} consecutive instantaneous "
            f"firings in model {self.model.name!r}; the marking never "
            f"stabilises"
        )

    # ------------------------------------------------------------------
    def run(
        self,
        stream: RandomStream,
        horizon: float,
        stop_predicate: Optional[Callable[[Any], bool]] = None,
        rate_rewards=None,
    ) -> SimulationRun:
        """One replication (a batch of one; observers delegate per-row)."""
        self._require_runtime()
        if self.observer is not None:
            return self._delegate.run(stream, horizon, stop_predicate,
                                      rate_rewards)
        return self.run_batch([stream], horizon, stop_predicate,
                              rate_rewards)[0]

    def simulate(self, *args, **kwargs):
        """Path-segment simulation (splitting); always per-row compiled."""
        self._require_runtime()
        return self._delegate.simulate(*args, **kwargs)

    # ------------------------------------------------------------------
    def run_batch(
        self,
        streams: list[RandomStream],
        horizon: float,
        stop_predicate: Optional[Callable[[Any], bool]] = None,
        rate_rewards=None,
    ) -> list[SimulationRun]:
        """Advance one replication per stream in lockstep.

        Row ``i`` consumes ``streams[i]`` in exactly the order the
        compiled engine would, so results are bit-identical per stream
        regardless of the batch width or the fate of sibling rows.
        """
        self._require_runtime()
        if self.observer is not None:
            # traced runs take the per-row path: batching would
            # interleave rows within one trace stream
            return [
                self._delegate.run(stream, horizon, stop_predicate,
                                   rate_rewards)
                for stream in streams
            ]
        n_rows = len(streams)
        if n_rows == 0:
            return []
        compiled = self.compiled
        cursor = self._cursor
        n_acts = self._n
        has_bias = self._has_bias
        insta_reads = compiled.insta_reads_mask

        rows = [list(compiled.initial_values) for _ in range(n_rows)]
        matrix = np.zeros((n_rows, compiled.n_slots), dtype=np.int64,
                          order="F")
        for slot, mirrored in enumerate(cursor._mirror):
            if mirrored:
                matrix[:, slot] = compiled.initial_values[slot]
        cursor.bind_batch(rows, matrix)

        Ro = np.zeros((n_rows, n_acts), dtype=np.float64)
        Rb = np.zeros((n_rows, n_acts), dtype=np.float64) if has_bias else Ro
        alive_mask = np.zeros(n_rows, dtype=bool)

        results: list[Optional[SimulationRun]] = [None] * n_rows
        now = [0.0] * n_rows
        weights = [1.0] * n_rows
        firings = [0] * n_rows
        integrators = [_RewardIntegrator(rate_rewards) for _ in range(n_rows)]
        fb_count = len(self._fb_indices)
        fb_reads = [[0] * fb_count for _ in range(n_rows)]
        fb_union = [0] * n_rows

        def finalize(row: int, end_time: float, stopped: bool,
                     stop_time: float) -> None:
            alive_mask[row] = False
            cursor.changed_mask = 0
            results[row] = SimulationRun(
                end_time=end_time,
                stopped=stopped,
                stop_time=stop_time,
                weight=weights[row],
                firings=firings[row],
                final_marking=cursor.export(),
                reward_integrals=integrators[row].integrals,
            )

        # --- batch entry: stabilise, time-zero absorption, refresh ----
        alive: list[int] = []
        for row in range(n_rows):
            cursor.set_row(row)
            cursor.changed_mask = 0
            self._stabilize(streams[row])
            cursor.changed_mask = 0
            if stop_predicate is not None and stop_predicate(cursor):
                finalize(row, 0.0, True, 0.0)
            elif horizon <= 0.0:
                finalize(row, horizon, False, math.inf)
            else:
                alive_mask[row] = True
                alive.append(row)
        if alive:
            with np.errstate(all="ignore"):
                for lowered in self._lowered:
                    lowered.refresh(matrix, Ro, Rb, alive_mask, has_bias)
            for row in alive:
                cursor.set_row(row)
                self._refresh_fallback_row(row, -1, fb_reads[row], Ro, Rb)
                fb_union[row] = self._fold_union(fb_reads[row])
                cursor.changed_mask = 0

        # --- lockstep jump loop ---------------------------------------
        while alive:
            full = len(alive) == n_rows
            Rb_rows = Rb if full else Rb[alive]
            Cb = np.cumsum(Rb_rows, axis=1)
            if has_bias:
                Co = np.cumsum(Ro if full else Ro[alive], axis=1)
            changed_union = 0
            survivors: list[int] = []
            for position, row in enumerate(alive):
                cursor.set_row(row)
                stream = streams[row]
                total_biased = float(Cb[position, -1])
                total = float(Co[position, -1]) if has_bias else total_biased
                if total <= 0.0:
                    # deadlock: the marking persists until the horizon
                    integrators[row].accumulate(cursor, horizon - now[row])
                    finalize(row, now[row], False, math.inf)
                    continue
                holding = stream.exponential(total_biased)
                if now[row] + holding > horizon:
                    weights[row] *= math.exp(
                        -(total - total_biased) * (horizon - now[row])
                    )
                    integrators[row].accumulate(cursor, horizon - now[row])
                    now[row] = horizon
                    finalize(row, horizon, False, math.inf)
                    continue

                # replay choice_index: one uniform, prefix-sum bisection
                u = stream.random() * total_biased
                index = int(np.searchsorted(Cb[position], u, side="right"))
                if index >= n_acts:
                    index = n_acts - 1
                    while index > 0 and Rb[row, index] <= 0.0:
                        index -= 1
                weights[row] *= (
                    float(Ro[row, index]) / float(Rb[row, index])
                ) * math.exp(-(total - total_biased) * holding)
                integrators[row].accumulate(cursor, holding)
                now[row] += holding

                chooser = self._choosers[index]
                case = 0 if chooser is None else chooser(stream)
                self._firers[index](case)
                firings[row] += 1
                self._kernel_events += 1
                if cursor.changed_mask & insta_reads:
                    self._stabilize(stream)

                if stop_predicate is not None and stop_predicate(cursor):
                    finalize(row, now[row], True, now[row])
                    continue
                if now[row] >= horizon:
                    finalize(row, now[row], False, math.inf)
                    continue

                changed = cursor.clear_changed_mask()
                if changed:
                    changed_union |= changed
                    if changed & fb_union[row]:
                        reads = fb_reads[row]
                        if self._refresh_fallback_row(row, changed, reads,
                                                      Ro, Rb):
                            fb_union[row] = self._fold_union(reads)
                survivors.append(row)
            alive = survivors
            if changed_union and alive and self._lowered:
                self._refresh_lowered(changed_union, matrix, Ro, Rb,
                                      alive_mask, has_bias)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _refresh_lowered(self, changed_mask: int, matrix, Ro, Rb, alive_mask,
                         has_bias: bool) -> None:
        """Recompute the lowered groups whose read slots changed."""
        lowered_dep = self._lowered_dep
        affected = 0
        while changed_mask:
            low = changed_mask & -changed_mask
            affected |= lowered_dep[low.bit_length() - 1]
            changed_mask ^= low
        if not affected:
            return
        lowered = self._lowered
        with np.errstate(all="ignore"):
            while affected:
                low = affected & -affected
                lowered[low.bit_length() - 1].refresh(
                    matrix, Ro, Rb, alive_mask, has_bias,
                )
                affected ^= low

    def _refresh_fallback_row(self, row: int, changed_mask: int,
                              reads: list[int], Ro, Rb) -> bool:
        """Re-evaluate the row's fallback activities (compiled semantics).

        ``changed_mask == -1`` forces a full pass (batch entry); else only
        activities whose last traced read set intersects the mask run.
        The cursor must already be on ``row``.  Returns True when any
        read set changed (caller refolds the row's union mask).
        """
        trace = self._trace
        factors = self._factors
        has_bias = self._has_bias
        changed_reads = False
        for k, index in enumerate(self._fb_indices):
            if changed_mask != -1 and not (changed_mask & reads[k]):
                continue
            trace[0] = 0
            enabled = self._fb_enabled[k]
            if enabled is None or enabled():
                fn = self._fb_rate_fns[k]
                rate = self._fb_rate_consts[k] if fn is None else fn()
                if rate > 0.0:
                    new_orig = rate
                    new_biased = rate * factors[index]
                else:
                    new_orig = 0.0
                    new_biased = 0.0
            else:
                new_orig = 0.0
                new_biased = 0.0
            Ro[row, index] = new_orig
            if has_bias:
                Rb[row, index] = new_biased
            traced = trace[0] if trace[0] else self._fb_static_reads[k]
            if traced != reads[k]:
                reads[k] = traced
                changed_reads = True
        return changed_reads

    @staticmethod
    def _fold_union(reads: list[int]) -> int:
        union = 0
        for mask in reads:
            union |= mask
        return union
