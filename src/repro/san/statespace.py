"""Reachability-graph generation: SAN → CTMC.

Generates the tangible state space of an all-exponential SAN by breadth-
first exploration, eliminating *vanishing* markings (markings with enabled
instantaneous activities) on the fly, exactly as Möbius's state-space
generator does.  Supports:

* an ``absorbing`` predicate — matching states get no outgoing transitions
  (used for the paper's ``KO_total`` unsafe state);
* a ``truncate`` predicate — matching states are folded into one absorbing
  ``TRUNCATED`` pseudo-state whose transient probability bounds the
  truncation error (finite-state-projection style);
* a hard ``max_states`` cap that raises instead of silently truncating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy import sparse

from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.places import Place

__all__ = ["StateSpace", "generate_state_space", "StateSpaceError"]

#: recursion bound for vanishing-marking elimination
_MAX_VANISHING_DEPTH = 1000


class StateSpaceError(RuntimeError):
    """State-space generation failed (explosion, vanishing loop, ...)."""


@dataclass
class StateSpace:
    """A generated CTMC over tangible markings.

    Attributes
    ----------
    model:
        The SAN the space was generated from.
    order:
        Place ordering used to freeze markings.
    states:
        Frozen tangible states; index in this list is the CTMC state id.
    index:
        Frozen state → id.
    generator:
        Sparse CTMC generator matrix Q (rows sum to 0; absorbing rows are 0).
    initial:
        Initial probability distribution over states.
    truncated_index:
        Id of the TRUNCATED pseudo-state, or ``None`` when no truncation
        occurred.  Probability mass there at time t bounds the truncation
        error of any transient measure.
    absorbing_mask:
        Boolean array marking absorbing states.
    """

    model: SANModel
    order: list[Place]
    states: list[tuple]
    index: dict[tuple, int]
    generator: sparse.csr_matrix
    initial: np.ndarray
    truncated_index: Optional[int]
    absorbing_mask: np.ndarray

    @property
    def n_states(self) -> int:
        """Number of tangible states (including TRUNCATED if present)."""
        return len(self.states)

    def marking_of(self, state_id: int) -> Marking:
        """Rebuild the marking of a state (TRUNCATED has no marking)."""
        if self.truncated_index is not None and state_id == self.truncated_index:
            raise ValueError("the TRUNCATED pseudo-state has no marking")
        return Marking.thaw(self.states[state_id], self.order)

    def indicator(self, predicate: Callable[[Marking], bool]) -> np.ndarray:
        """0/1 vector of states whose marking satisfies ``predicate``."""
        result = np.zeros(self.n_states)
        for i, frozen in enumerate(self.states):
            if self.truncated_index is not None and i == self.truncated_index:
                continue
            if predicate(Marking.thaw(frozen, self.order)):
                result[i] = 1.0
        return result


#: sentinel frozen "state" for the truncation sink
_TRUNCATED = ("__TRUNCATED__",)


def _resolve_vanishing(
    model: SANModel,
    marking: Marking,
    order: list[Place],
    depth: int = 0,
) -> list[tuple[float, tuple]]:
    """Eliminate instantaneous activities, returning tangible successors.

    Returns ``[(probability, frozen_state), ...]`` summing to 1.
    """
    if depth > _MAX_VANISHING_DEPTH:
        raise StateSpaceError(
            "vanishing-marking chain exceeded depth bound; instantaneous "
            "activities appear to loop"
        )
    enabled = [
        a for a in model.instantaneous_activities if a.enabled(marking)
    ]
    if not enabled:
        return [(1.0, marking.freeze(order))]
    # Deterministic policy matching the simulator: highest priority first,
    # insertion order breaking ties.
    chosen = max(enabled, key=lambda a: a.priority)
    # Among equal priorities, take the first in insertion order.
    top = [a for a in enabled if a.priority == chosen.priority]
    chosen = min(top, key=model.instantaneous_activities.index)

    outcomes: list[tuple[float, tuple]] = []
    probs = chosen.case_probabilities(marking)
    for case_index, prob in enumerate(probs):
        if prob <= 0.0:
            continue
        branch = marking.copy()
        chosen.fire(branch, case_index)
        for sub_prob, frozen in _resolve_vanishing(model, branch, order, depth + 1):
            outcomes.append((prob * sub_prob, frozen))
    return outcomes


def generate_state_space(
    model: SANModel,
    absorbing: Optional[Callable[[Marking], bool]] = None,
    truncate: Optional[Callable[[Marking], bool]] = None,
    max_states: int = 1_000_000,
) -> StateSpace:
    """Explore the tangible reachability graph of ``model``.

    Parameters
    ----------
    model:
        An all-exponential SAN (checked).
    absorbing:
        Tangible markings satisfying this keep no outgoing transitions.
    truncate:
        Tangible markings satisfying this are merged into the TRUNCATED
        absorbing pseudo-state (error-bounded truncation).  The *initial*
        state must not be truncated.
    max_states:
        Hard cap; exceeding it raises :class:`StateSpaceError`.
    """
    if not model.is_markovian:
        bad = [a.name for a in model.timed_activities if not a.is_markovian]
        raise TypeError(
            f"state-space generation needs exponential activities; "
            f"non-exponential: {bad[:5]}"
        )
    order = list(model.places)

    states: list[tuple] = []
    index: dict[tuple, int] = {}
    absorbing_flags: list[bool] = []
    frontier: list[int] = []
    truncated_id: Optional[int] = None

    def intern(frozen: tuple, marking: Marking) -> int:
        nonlocal truncated_id
        existing = index.get(frozen)
        if existing is not None:
            return existing
        if truncate is not None and truncate(marking):
            if truncated_id is None:
                truncated_id = len(states)
                states.append(_TRUNCATED)
                index[_TRUNCATED] = truncated_id
                absorbing_flags.append(True)
            return truncated_id
        state_id = len(states)
        if state_id >= max_states:
            raise StateSpaceError(
                f"state space exceeded max_states={max_states}; tighten the "
                f"truncation predicate or raise the cap"
            )
        states.append(frozen)
        index[frozen] = state_id
        is_absorbing = absorbing is not None and absorbing(marking)
        absorbing_flags.append(is_absorbing)
        if not is_absorbing:
            frontier.append(state_id)
        return state_id

    # --- initial distribution (the initial marking may be vanishing) -----
    init_marking = model.initial_marking()
    rows: list[int] = []
    cols: list[int] = []
    rates: list[float] = []

    initial_entries: list[tuple[int, float]] = []
    for prob, frozen in _resolve_vanishing(model, init_marking, order):
        marking = Marking.thaw(frozen, order)
        state_id = intern(frozen, marking)
        if state_id == truncated_id:
            raise StateSpaceError("initial state falls inside the truncation set")
        initial_entries.append((state_id, prob))

    # --- BFS over tangible states ----------------------------------------
    cursor = 0
    while cursor < len(frontier):
        state_id = frontier[cursor]
        cursor += 1
        marking = Marking.thaw(states[state_id], order)
        for activity in model.timed_activities:
            if not activity.enabled(marking):
                continue
            rate = activity.rate_in(marking)
            if rate <= 0.0:
                continue
            for case_index, prob in enumerate(
                activity.case_probabilities(marking)
            ):
                if prob <= 0.0:
                    continue
                successor = marking.copy()
                activity.fire(successor, case_index)
                for sub_prob, frozen in _resolve_vanishing(
                    model, successor, order
                ):
                    target = intern(frozen, Marking.thaw(frozen, order))
                    if target == state_id:
                        continue  # self-loops do not alter the CTMC law
                    rows.append(state_id)
                    cols.append(target)
                    rates.append(rate * prob * sub_prob)

    n = len(states)
    matrix = sparse.coo_matrix(
        (rates, (rows, cols)), shape=(n, n), dtype=float
    ).tocsr()
    matrix.sum_duplicates()
    # add the diagonal: -row sums
    out_rates = np.asarray(matrix.sum(axis=1)).ravel()
    generator = (matrix - sparse.diags(out_rates)).tocsr()

    initial = np.zeros(n)
    for state_id, prob in initial_entries:
        initial[state_id] += prob
    total = initial.sum()
    if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
        raise StateSpaceError(f"initial distribution sums to {total}, expected 1")

    return StateSpace(
        model=model,
        order=order,
        states=states,
        index=index,
        generator=generator,
        initial=initial,
        truncated_index=truncated_id,
        absorbing_mask=np.asarray(absorbing_flags, dtype=bool),
    )
