"""The single-vehicle state machine of the paper's Figure 2.

Figure 2 summarises how one vehicle moves between its operational state,
the six failure-mode/maneuver states, the safe exit ``v_OK`` and the
terminal ``v_KO``.  Here the machine is *derived* from the domain rules
(Table 1's failure→maneuver mapping and the escalation ladder) rather
than transcribed, so the figure printed by ``repro-cli figure 2`` is a
proof that the implementation encodes the same machine — and the tests
assert its structural properties (every path of maneuver failures ends in
``v_KO``, every success edge reaches ``v_OK``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.failure_modes import FAILURE_MODES
from repro.core.maneuvers import (
    ESCALATION_LADDER,
    Maneuver,
    maneuver_for_failure_mode,
    next_on_failure,
)

__all__ = ["FsmEdge", "vehicle_state_machine", "V_OK", "V_KO", "OPERATIONAL"]

#: state labels matching the paper's Figure 2
OPERATIONAL = "v_op"
V_OK = "v_OK"
V_KO = "v_KO"


@dataclass(frozen=True)
class FsmEdge:
    """One transition of the Figure-2 machine."""

    source: str
    target: str
    #: "failure-mode" (an L_i firing), "success", or "KO" (maneuver failed)
    kind: str
    label: str


def vehicle_state_machine() -> list[FsmEdge]:
    """All transitions of the single-vehicle machine, derived from code.

    States: the operational state, one state per maneuver (named by the
    maneuver, standing for "failure active, maneuver in progress"), plus
    ``v_OK`` and ``v_KO``.
    """
    edges: list[FsmEdge] = []
    # failure-mode occurrences: operational -> Table-1 maneuver
    for fm in FAILURE_MODES:
        maneuver = maneuver_for_failure_mode(fm)
        edges.append(
            FsmEdge(
                source=OPERATIONAL,
                target=maneuver.value,
                kind="failure-mode",
                label=f"{fm.fm_id} ({fm.severity.value})",
            )
        )
    # maneuver completions: success -> v_OK; failure -> next rung / v_KO
    for maneuver in ESCALATION_LADDER:
        edges.append(
            FsmEdge(
                source=maneuver.value,
                target=V_OK,
                kind="success",
                label=f"{maneuver.value} succeeds",
            )
        )
        follow_up = next_on_failure(maneuver)
        if follow_up is None:
            edges.append(
                FsmEdge(
                    source=maneuver.value,
                    target=V_KO,
                    kind="KO",
                    label=f"{maneuver.value} fails (last resort)",
                )
            )
        else:
            edges.append(
                FsmEdge(
                    source=maneuver.value,
                    target=follow_up.value,
                    kind="KO",
                    label=f"{maneuver.value} fails",
                )
            )
    return edges


def figure2(fast: bool = False) -> list[dict]:
    """The Figure-2 machine as printable rows (registry experiment)."""
    return [
        {
            "from": edge.source,
            "to": edge.target,
            "kind": edge.kind,
            "label": edge.label,
        }
        for edge in vehicle_state_machine()
    ]
