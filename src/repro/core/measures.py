"""The unified unsafety-evaluation API.

``unsafety(params, times, method=...)`` evaluates the paper's measure
S(t) — the probability that the AHS has reached a catastrophic situation
by time t — with any of the library's engines:

========== ===========================================================
method     engine
========== ===========================================================
analytical lumped-CTMC uniformization (fast, reaches 1e-13; default)
simulation crude Monte-Carlo on the composed SAN (jump simulator)
importance failure-biased importance sampling (rare events, unbiased)
splitting  fixed-effort multilevel splitting
approx     closed-form first-order ST1 estimate
========== ===========================================================
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.core.analytical import AnalyticalEngine
from repro.core.approximation import OverlapApproximation
from repro.core.composed import build_composed_model
from repro.core.parameters import AHSParameters
from repro.rare import (
    FailureBiasing,
    FixedEffortSplitting,
    ImportanceSamplingEstimator,
)
from repro.san.compiled import ENGINES, make_jump_engine
from repro.san.rewards import TransientEstimate
from repro.stats import ReplicationEstimator, SequentialStoppingRule
from repro.stochastic import StreamFactory

__all__ = [
    "unsafety",
    "UNSAFETY_METHODS",
    "mean_time_to_unsafety",
    "unsafety_hazard",
    "expected_degraded_vehicle_hours",
]

UNSAFETY_METHODS = ("analytical", "simulation", "importance", "splitting", "approx")


def unsafety(
    params: AHSParameters,
    times: Sequence[float],
    method: str = "analytical",
    n_replications: int = 10_000,
    seed: Optional[int] = None,
    boost: float = 30.0,
    splitting_levels: Optional[Sequence[float]] = None,
    trials_per_stage: int = 300,
    repetitions: int = 10,
    stopping_rule: Optional[SequentialStoppingRule] = None,
    runner=None,
    engine: str = "compiled",
    observer=None,
    batch_size: int = 256,
    events=None,
) -> TransientEstimate:
    """Evaluate S(t) at the requested times.

    Parameters
    ----------
    params:
        The model parameterisation.
    times:
        Trip durations at which S(t) is reported.
    method:
        One of :data:`UNSAFETY_METHODS`.
    n_replications:
        Replication budget for ``simulation`` and ``importance`` (the
        paper used "at least 10000 simulation batches").
    seed:
        Randomness seed for the simulation methods.
    boost:
        Failure-rate multiplier for ``importance``.
    splitting_levels:
        Importance-function thresholds for ``splitting``; defaults to
        one level per active failure (1, 2, 3) plus the KO top level.
    trials_per_stage / repetitions:
        Effort knobs for ``splitting``.
    stopping_rule:
        For ``simulation``: run replications sequentially until the
        paper's convergence criterion holds (95 % CI within 0.1 relative
        width by default) instead of a fixed ``n_replications``.
    runner:
        Optional :class:`repro.runtime.ParallelRunner`.  For
        ``simulation`` the replications are then sharded across worker
        processes (and served from the runner's result cache when
        enabled); for a fixed seed the estimate is bit-identical for any
        worker count.  Other methods ignore it.
    engine:
        Jump-engine for the simulation-based methods, one of
        :data:`~repro.san.compiled.ENGINES` (``"compiled"`` by default —
        same results per seed, several times faster; ``"interpreted"`` is
        the reference executor, useful when debugging gate code;
        ``"batched"`` advances a lockstep batch of replications through a
        NumPy structure-of-arrays kernel, bit-identical per seed at any
        batch size).  ``analytical`` and ``approx`` ignore it.
    batch_size:
        Lockstep width for ``engine="batched"`` (ignored by the other
        engines).  Purely a throughput knob — estimates, draw counts and
        IS weights are identical at every width.
    observer:
        Optional observability hook (typically
        :class:`repro.obs.Observation`) for the simulation-based methods.
        Serial runs attach it to the engine directly (traces, metrics and
        profiling all work); with a ``runner`` the metric summaries are
        collected worker-side, merged in chunk order, and absorbed back
        into ``observer.metrics`` — trace recorders cannot cross process
        boundaries and are ignored on the parallel path.  Instrumentation
        never changes estimates, draw counts, or IS weights.
    events:
        Optional :class:`repro.obs.EventBus`; the simulation-based
        methods announce run lifecycle and (for crude Monte-Carlo)
        per-batch progress as ``repro-events/1`` envelopes.  With a
        ``runner`` the bus is lent to it for the run so chunk-level
        events flow into the same ledger.  Emission is driver-side
        bookkeeping only — estimates are byte-identical with the bus
        attached or not.

    Returns
    -------
    TransientEstimate
        Point estimates with half-widths (zero half-widths and a
        truncation-error bound for ``analytical``; ``approx`` carries no
        error information).
    """
    times_list = [float(t) for t in times]
    if not times_list:
        raise ValueError("need at least one time point")
    if min(times_list) < 0:
        raise ValueError("times must be non-negative")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose one of {ENGINES}")

    if method == "analytical":
        result = AnalyticalEngine(params).unsafety(times_list)
        return TransientEstimate(
            times=result.times,
            values=result.unsafety,
            half_widths=np.zeros_like(result.unsafety),
            n_samples=0,
            method="analytical",
            truncation_error=float(result.truncation_error.max(initial=0.0)),
        )

    if method == "approx":
        values = OverlapApproximation(params).unsafety(times_list)
        return TransientEstimate(
            times=np.asarray(times_list),
            values=values,
            half_widths=np.zeros_like(values),
            n_samples=0,
            method="approx",
        )

    metrics_recorder = getattr(observer, "metrics", None)
    profiler = getattr(observer, "profiler", None)

    if method == "simulation" and runner is not None:
        from repro.core.partasks import UnsafetySimulationTask

        task = UnsafetySimulationTask(
            params=params,
            times=tuple(times_list),
            engine=engine,
            metrics=metrics_recorder is not None,
            metrics_level=(
                metrics_recorder.level if metrics_recorder is not None else "full"
            ),
            batch_size=batch_size,
        )
        # lend the bus to the runner for this run so its chunk events
        # land in the caller's ledger
        lent_bus = events is not None and runner.events is None
        if lent_bus:
            runner.events = events
        try:
            result = runner.run(
                task,
                seed=seed,
                n_replications=(
                    None if stopping_rule is not None else n_replications
                ),
                rule=stopping_rule,
            )
        finally:
            if lent_bus:
                runner.events = None
        if (
            metrics_recorder is not None
            and result.telemetry.activity_metrics is not None
        ):
            metrics_recorder.absorb(result.telemetry.activity_metrics)
        method_name = "simulation-parallel"
        if stopping_rule is not None and not result.converged:
            method_name += "-unconverged"
        return TransientEstimate(
            times=np.asarray(times_list),
            values=result.values,
            half_widths=result.half_widths,
            n_samples=result.n_replications,
            method=method_name,
        )

    from repro.obs.profile import profile_span

    def emit(event) -> None:
        if events is not None:
            events.emit(event)

    if events is not None:
        from repro.obs.events import ChunkCompleted, RunFinished, RunStarted

    factory = StreamFactory(seed)
    with profile_span(profiler, "compile"):
        ahs = build_composed_model(params)
    horizon = max(times_list)

    if method == "simulation":
        with profile_span(profiler, "compile"):
            simulator = make_jump_engine(
                ahs.model, engine=engine, observer=observer,
                batch_size=batch_size,
            )
        predicate = ahs.unsafe_predicate()
        if stopping_rule is not None:
            # the paper's protocol: add batches until each (non-zero)
            # coordinate's CI is within the relative-width target
            times_arr = np.asarray(times_list)

            def sample(index: int) -> np.ndarray:
                run = simulator.run(
                    factory.stream(f"mc-{index}"), horizon, predicate
                )
                return np.where(times_arr >= run.stop_time, run.weight, 0.0)

            estimator = ReplicationEstimator(
                sample, rule=stopping_rule, round_size=stopping_rule.min_replications
            )
            emit_started = events is not None
            if emit_started:
                emit(
                    RunStarted(
                        kind="serial",
                        workers=1,
                        unit="replications",
                        engine=engine,
                        max_total=stopping_rule.max_replications,
                    )
                )
            with profile_span(profiler, "simulate"):
                means, halves, n_done, converged = estimator.estimate()
            if emit_started:
                emit(
                    RunFinished(
                        outcome="ok", units=n_done, converged=converged
                    )
                )
            return TransientEstimate(
                times=times_arr,
                values=means,
                half_widths=halves,
                n_samples=n_done,
                method="simulation-sequential"
                + ("" if converged else "-unconverged"),
            )
        if events is not None:
            emit(
                RunStarted(
                    kind="serial",
                    workers=1,
                    unit="replications",
                    engine=engine,
                    total=n_replications,
                )
            )
        with profile_span(profiler, "simulate"):
            streams = factory.stream_batch("mc", n_replications)
            run_batch = getattr(simulator, "run_batch", None)
            # sliced either way so per-batch progress can be announced;
            # slicing changes neither stream assignment nor run order, so
            # estimates are identical to the unsliced loop
            runs = []
            for chunk_index, start in enumerate(
                range(0, len(streams), batch_size)
            ):
                window = streams[start:start + batch_size]
                batch_started = time.perf_counter()
                if callable(run_batch):
                    runs.extend(run_batch(window, horizon, predicate))
                else:
                    runs.extend(
                        simulator.run(stream, horizon, predicate)
                        for stream in window
                    )
                if events is not None:
                    emit(
                        ChunkCompleted(
                            chunk_id=f"chunk-{chunk_index}",
                            n=len(window),
                            worker="serial",
                            elapsed_seconds=(
                                time.perf_counter() - batch_started
                            ),
                        )
                    )
        if events is not None:
            emit(RunFinished(outcome="ok", units=n_replications))
        return TransientEstimate.from_indicator_runs(
            times_list, runs, method="simulation"
        )

    if method == "importance":
        biasing = FailureBiasing(
            boost=boost, name_predicate=lambda name: name.startswith("L_FM")
        )
        with profile_span(profiler, "compile"):
            estimator = ImportanceSamplingEstimator(
                ahs.model,
                ahs.unsafe_predicate(),
                biasing,
                engine=engine,
                observer=observer,
                batch_size=batch_size,
            )
        if events is not None:
            emit(
                RunStarted(
                    kind="serial",
                    workers=1,
                    unit="replications",
                    engine=engine,
                    total=n_replications,
                    detail={"method": "importance", "boost": boost},
                )
            )
        with profile_span(profiler, "simulate"):
            estimate = estimator.estimate(times_list, n_replications, factory)
        if events is not None:
            emit(RunFinished(outcome="ok", units=n_replications))
        return estimate

    if method == "splitting":
        levels = (
            list(splitting_levels)
            if splitting_levels is not None
            else [1.0, 2.0, 3.0, 1000.0]
        )
        with profile_span(profiler, "compile"):
            splitter = FixedEffortSplitting(
                ahs.model,
                ahs.severity_level(),
                levels,
                trials_per_stage=trials_per_stage,
                engine=engine,
                observer=observer,
            )
        if events is not None:
            emit(
                RunStarted(
                    kind="serial",
                    workers=1,
                    unit="replications",
                    engine=engine,
                    total=repetitions * trials_per_stage,
                    detail={"method": "splitting"},
                )
            )
        # splitting estimates P(hit by horizon); evaluate per time point
        values = []
        halves = []
        with profile_span(profiler, "simulate"):
            for t in times_list:
                outcome = splitter.estimate(t, factory, repetitions=repetitions)
                values.append(outcome.probability)
                halves.append(outcome.interval.half_width)
        if events is not None:
            emit(RunFinished(outcome="ok", units=repetitions * trials_per_stage))
        return TransientEstimate(
            times=np.asarray(times_list),
            values=np.asarray(values),
            half_widths=np.asarray(halves),
            n_samples=repetitions * trials_per_stage,
            method="splitting",
        )

    raise ValueError(
        f"unknown method {method!r}; choose one of {UNSAFETY_METHODS}"
    )


def expected_degraded_vehicle_hours(
    params: AHSParameters, time: float
) -> float:
    """Expected vehicle-hours spent executing recovery maneuvers in [0, t].

    An interval-of-time reward (Möbius terminology) over the lumped
    failure chain: the reward of a state is its number of concurrently
    active maneuvers.  Post-KO states contribute zero (the model freezes
    at the absorbing unsafe state).  A fleet-operations quantity: how much
    degraded-mode driving a trip schedule should expect.
    """
    import numpy as np

    from repro.core.analytical import _active_total
    from repro.ctmc import accumulated_reward

    if time < 0:
        raise ValueError(f"time must be >= 0, got {time}")
    engine = AnalyticalEngine(params)
    chain = engine.failure_chain.chain
    reward = np.zeros(chain.n_states)
    for state_id, state in enumerate(engine.failure_chain.states):
        if state in ("KO", "TRUNC"):
            continue
        reward[state_id] = _active_total(state)
    return float(accumulated_reward(chain, [time], reward)[0])


def mean_time_to_unsafety(params: AHSParameters) -> float:
    """Expected time (hours) until the AHS reaches a catastrophic state.

    The reciprocal view of S(t): solved exactly on the lumped failure
    chain (``Q_TT τ = −1``).  At the paper's defaults this is on the
    order of millions of hours — the per-trip unsafety is tiny but the
    fleet-level exposure is what a deployment study would divide by.
    """
    from repro.ctmc import mean_time_to_absorption

    engine = AnalyticalEngine(params)
    return mean_time_to_absorption(engine.failure_chain.chain)


def unsafety_hazard(
    params: AHSParameters, time: float, dt: float = 0.5
) -> float:
    """Instantaneous hazard rate h(t) = S'(t) / (1 − S(t)) (1/hr).

    Estimated by a central difference of the numerical engine's S(t).
    For the paper's parameters the hazard is essentially flat after the
    first half hour (the occupancy process mixes quickly), which is why
    the figures look near-linear in trip duration.
    """
    if time <= dt:
        raise ValueError(f"time must exceed dt={dt}, got {time}")
    engine = AnalyticalEngine(params)
    result = engine.unsafety([time - dt, time, time + dt])
    derivative = (result.unsafety[2] - result.unsafety[0]) / (2.0 * dt)
    survival = 1.0 - result.unsafety[1]
    return float(derivative / survival)
