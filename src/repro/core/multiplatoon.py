"""Extension: highways with more than two platoons (paper §5 future work).

The paper's case study is a two-lane highway with one platoon per lane and
closes with: *"The models presented in this paper can be easily extended
to analyze highways composed of a larger number of platoons, considering
more complex scenarios."*  This module is that extension for the lumped
analytical engine: ``m`` platoons arranged in a line (platoon *k* is the
escort/assist neighbour of platoon *k+1*; exits transit through platoon
1, which runs in the exit-side lane).

Modelling choices (mirroring the 2-platoon engine, DESIGN.md):

* **occupancy**: a closed population of ``m·n`` vehicles; the occupancy
  process is solved by a mean-field fixed point — each platoon sees the
  single-platoon birth-death dynamics with the join inflow
  ``join_rate · out / m``, and ``out`` is determined self-consistently.
  (The 2-platoon engine solves the joint chain exactly; the fixed point
  reproduces its expectations within a few percent — asserted in tests.)
* **failures**: the failure-level CTMC tracks multisets of active
  maneuvers per platoon, truncated at 4 concurrent (exact for Table 2).
  Request escalation defers to the own platoon (decentralized inter) or
  to every platoon (centralized inter: one SAP per highway segment).
* **TIE-E** uses the left neighbour platoon (platoon *k−1*; platoon 1
  uses platoon 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import sparse

from repro.core.coordination import scope_is_global
from repro.core.failure_modes import FAILURE_MODES
from repro.core.maneuvers import (
    ESCALATION_LADDER,
    Maneuver,
    escalate_request,
    maneuver_for_failure_mode,
    next_on_failure,
)
from repro.core.parameters import AHSParameters
from repro.core.severity import SeverityCounts, catastrophic_situation
from repro.ctmc import CTMC, transient_distribution

__all__ = ["MultiPlatoonEngine", "MultiPlatoonResult", "mean_field_occupancy"]

_KO = "KO"
_TRUNC = "TRUNC"


def mean_field_occupancy(
    params: AHSParameters, n_platoons: int, tolerance: float = 1e-10
) -> tuple[float, float]:
    """Self-consistent per-platoon occupancy for an m-platoon highway.

    Returns ``(expected_occupancy_per_platoon, expected_out_pool)``.

    Fixed point: given an out-pool size ``out``, each platoon runs a
    birth-death chain with birth ``join_rate·out/m`` (capacity n) and
    death ``leave_rate``; the stationary mean occupancy then implies
    ``out = m·n − m·E[occ]``, iterated to convergence.
    """
    if n_platoons < 1:
        raise ValueError(f"need at least one platoon, got {n_platoons}")
    n = params.max_platoon_size
    total = n_platoons * n
    out = 1.0
    for _ in range(10_000):
        birth = params.join_rate * out / n_platoons
        occupancy = _birth_death_mean(n, birth, params.leave_rate)
        new_out = max(total - n_platoons * occupancy, 0.0)
        if abs(new_out - out) < tolerance:
            out = new_out
            break
        # damped update for stability at extreme rate ratios
        out = 0.5 * out + 0.5 * new_out
    # population conservation fixes the occupancy once `out` is known
    # (robust to degenerate rates, e.g. leave_rate = 0 where the birth-
    # death device is ill-posed at out = 0)
    return (total - out) / n_platoons, out


def _birth_death_mean(n: int, birth: float, death: float) -> float:
    """Stationary mean of a birth-death chain on {0..n}.

    Constant birth rate while below capacity, constant death rate while
    non-empty (the paper's per-platoon leave activity).
    """
    if birth <= 0.0:
        return 0.0
    if death <= 0.0:
        return float(n)
    ratio = birth / death
    weights = [ratio**k for k in range(n + 1)]
    total = sum(weights)
    return sum(k * w for k, w in zip(range(n + 1), weights)) / total


def _severity_of_platoons(state: tuple, platoons: Sequence[int]) -> SeverityCounts:
    a = b = c = 0
    for p in platoons:
        platoon_vec = state[p]
        for m_index, maneuver in enumerate(ESCALATION_LADDER):
            count = platoon_vec[m_index]
            letter = maneuver.severity.letter
            if letter == "A":
                a += count
            elif letter == "B":
                b += count
            else:
                c += count
    return SeverityCounts(a, b, c)


def _catastrophic_window(state: tuple) -> bool:
    """Table-2 check over every adjacent-platoon neighbourhood.

    The paper requires the combining failures to hit "multiple adjacent
    vehicles in a small neighborhood in space and in time" (§2.1.3): on a
    long multi-platoon highway only failures in the same or adjacent
    platoons can interact.  For 2 platoons this reduces to the global
    check of the base engine.
    """
    m = len(state)
    if m == 1:
        return (
            catastrophic_situation(_severity_of_platoons(state, [0]))
            is not None
        )
    for left in range(m - 1):
        counts = _severity_of_platoons(state, (left, left + 1))
        if catastrophic_situation(counts) is not None:
            return True
    return False


def _active_total(state: tuple) -> int:
    return sum(sum(vec) for vec in state)


@dataclass
class MultiPlatoonResult:
    """Unsafety curve for an m-platoon highway."""

    times: np.ndarray
    unsafety: np.ndarray
    truncation_error: np.ndarray
    n_platoons: int
    occupancy_per_platoon: float
    n_states: int


class MultiPlatoonEngine:
    """Lumped-CTMC unsafety evaluation for ``m`` platoons.

    For ``n_platoons=2`` this reduces (up to the mean-field occupancy
    approximation) to :class:`~repro.core.analytical.AnalyticalEngine`;
    the equivalence is asserted by the tests.
    """

    def __init__(
        self,
        params: AHSParameters,
        n_platoons: int,
        max_concurrent: int = 4,
    ) -> None:
        if n_platoons < 2:
            raise ValueError(
                f"a platooned highway needs >= 2 platoons, got {n_platoons}"
            )
        if max_concurrent < 2:
            raise ValueError("max_concurrent must be >= 2")
        self.params = params
        self.n_platoons = n_platoons
        self.max_concurrent = max_concurrent
        occupancy, out = mean_field_occupancy(params, n_platoons)
        self.occupancy_per_platoon = occupancy
        self.out_pool = out
        self.states: list = []
        self.index: dict = {}
        self.ko_index: Optional[int] = None
        self.trunc_index: Optional[int] = None
        self._build()

    # ------------------------------------------------------------------
    def _neighbor(self, platoon: int) -> int:
        """The escort platoon for TIE-E (left neighbour; platoon 0 uses 1)."""
        return platoon - 1 if platoon > 0 else 1

    def _scope(self, state: tuple, platoon: int) -> list[Maneuver]:
        platoons = (
            range(self.n_platoons)
            if scope_is_global(self.params.strategy)
            else (platoon,)
        )
        active: list[Maneuver] = []
        for p in platoons:
            for m_index, maneuver in enumerate(ESCALATION_LADDER):
                active.extend([maneuver] * state[p][m_index])
        return active

    def _busy_fraction(self, state: tuple) -> float:
        total_occ = self.occupancy_per_platoon * self.n_platoons
        active = _active_total(state)
        if total_occ <= 1.0:
            return 1.0 if active > 0 else 0.0
        return min(max(active / (total_occ - 1.0), 0.0), 1.0)

    def _with_delta(self, state: tuple, platoon: int, m_index: int, delta: int):
        vec = list(state[platoon])
        vec[m_index] += delta
        return tuple(
            tuple(vec) if p == platoon else state[p]
            for p in range(self.n_platoons)
        )

    def _after_activation(self, state: tuple, platoon: int, maneuver: Maneuver):
        m_index = ESCALATION_LADDER.index(maneuver)
        successor = self._with_delta(state, platoon, m_index, +1)
        if _catastrophic_window(successor):
            return _KO
        if _active_total(successor) > self.max_concurrent:
            return _TRUNC
        return successor

    def _transitions(self, state: tuple):
        params = self.params
        occ = self.occupancy_per_platoon
        busy = self._busy_fraction(state)
        moves = []
        for platoon in range(self.n_platoons):
            active_here = sum(state[platoon])
            exposed = max(occ - active_here, 0.0)
            if exposed > 0.0:
                scope = self._scope(state, platoon)
                for fm in FAILURE_MODES:
                    rate = params.failure_mode_rate(fm) * exposed
                    granted = escalate_request(
                        maneuver_for_failure_mode(fm), scope
                    )
                    moves.append(
                        (self._after_activation(state, platoon, granted), rate)
                    )
            occ_nb = self.occupancy_per_platoon  # symmetric neighbours
            for m_index, maneuver in enumerate(ESCALATION_LADDER):
                count = state[platoon][m_index]
                if count == 0:
                    continue
                rate = count * params.maneuver_rate(maneuver, max(occ, 1.0))
                p_success = params.success_probability(
                    maneuver, max(occ, 1.0), occ_nb, busy
                )
                cleared = self._with_delta(state, platoon, m_index, -1)
                moves.append((cleared, rate * p_success))
                follow_up = next_on_failure(maneuver)
                if follow_up is None:
                    moves.append((cleared, rate * (1.0 - p_success)))
                else:
                    granted = escalate_request(
                        follow_up, self._scope(cleared, platoon)
                    )
                    moves.append(
                        (
                            self._after_activation(cleared, platoon, granted),
                            rate * (1.0 - p_success),
                        )
                    )
        return moves

    def _build(self) -> None:
        empty = tuple(
            (0,) * len(ESCALATION_LADDER) for _ in range(self.n_platoons)
        )
        self.states = [empty]
        self.index = {empty: 0}
        frontier = [empty]
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []

        def intern(label) -> int:
            existing = self.index.get(label)
            if existing is not None:
                return existing
            new_id = len(self.states)
            self.states.append(label)
            self.index[label] = new_id
            if label == _KO:
                self.ko_index = new_id
            elif label == _TRUNC:
                self.trunc_index = new_id
            else:
                frontier.append(label)
            return new_id

        while frontier:
            state = frontier.pop()
            source = self.index[state]
            for successor, rate in self._transitions(state):
                if rate <= 0.0:
                    continue
                target = intern(successor)
                if target == source:
                    continue
                rows.append(source)
                cols.append(target)
                vals.append(rate)

        size = len(self.states)
        matrix = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(size, size)
        ).tocsr()
        matrix.sum_duplicates()
        out_rates = np.asarray(matrix.sum(axis=1)).ravel()
        generator = (matrix - sparse.diags(out_rates)).tocsr()
        p0 = np.zeros(size)
        p0[0] = 1.0
        self.chain = CTMC(generator, p0)

    # ------------------------------------------------------------------
    def unsafety(self, times: Sequence[float]) -> MultiPlatoonResult:
        """S(t) = P(KO by t) for the m-platoon highway."""
        times_arr = np.asarray(list(times), dtype=float)
        dist = transient_distribution(self.chain, times_arr)
        ko = self.ko_index
        trunc = self.trunc_index
        return MultiPlatoonResult(
            times=times_arr,
            unsafety=(
                dist[:, ko] if ko is not None else np.zeros(times_arr.size)
            ),
            truncation_error=(
                dist[:, trunc] if trunc is not None else np.zeros(times_arr.size)
            ),
            n_platoons=self.n_platoons,
            occupancy_per_platoon=self.occupancy_per_platoon,
            n_states=self.chain.n_states,
        )
