"""The Severity submodel (paper §3.2.2, Fig. 6).

Watches the shared severity-class places (``class_A``, ``class_B``,
``class_C``) maintained by the One_vehicle replicas and fires the
instantaneous activity ``to_KO`` — marking ``KO_total`` — as soon as the
active failure combination matches one of the catastrophic situations of
Table 2 (the paper's ``KO_allocation`` input-gate predicate and ``OG_KO``
output gate).
"""

from __future__ import annotations

from repro.core.configuration_model import SharedPlaces
from repro.core.severity import catastrophic_situation_counts
from repro.san import Case, InputGate, InstantaneousActivity, OutputGate, SANModel

__all__ = ["build_severity_model"]


def build_severity_model(shared: SharedPlaces) -> SANModel:
    """The Severity submodel: ``to_KO`` guarded by ``KO_allocation``."""
    binding = {
        **shared.class_binding(),
        "KO_total": shared.ko_total,
    }

    def ko_allocation(g) -> bool:
        if g["KO_total"] != 0:
            return False
        # Table-2 matching on the raw class counts: the counts variant
        # skips the SeverityCounts validator so this predicate stays
        # traceable by the batch engines' gate-lowering pass.
        situation = catastrophic_situation_counts(
            g["class_A"], g["class_B"], g["class_C"]
        )
        return situation is not None

    def og_ko(g) -> None:
        g["KO_total"] = 1

    model = SANModel("Severity")
    model.add_activity(
        InstantaneousActivity(
            "to_KO",
            input_gates=[InputGate("KO_allocation", binding, ko_allocation)],
            cases=[Case(1.0, [OutputGate("OG_KO", binding, og_ko)])],
            priority=1000,
        )
    )
    return model
