"""The Dynamicity submodel (paper §3.2.3, Fig. 7).

Models vehicle movement in the absence of failures: highway entry
(``Join``/``JP`` — an off-highway vehicle re-enters at the join rate and
picks a platoon 50/50), voluntary leaves (``leave1``/``leave2`` — one
activity per platoon at the leave rate; a platoon-2 leaver transits
through platoon 1 for 3–4 minutes per §4.1), and platoon changes
(``ch1``/``ch2`` at 6/hr per platoon).

Deviation from the paper's presentation (documented in DESIGN.md): the
paper implements these as central activities operating on platoon arrays;
here they are replicated per vehicle with marking-dependent rates divided
by the number of eligible candidates, which yields exactly the same
aggregate CTMC (the per-platoon activity picking a uniformly random
eligible vehicle).
"""

from __future__ import annotations

from repro.core.configuration_model import SharedPlaces, VehiclePlaces
from repro.core.parameters import AHSParameters
from repro.san import Case, InputGate, MarkingFunction, OutputGate, TimedActivity

__all__ = ["build_movement_activities"]


def _binding(shared: SharedPlaces, vehicle: VehiclePlaces) -> dict:
    return {
        **vehicle.binding(),
        **shared.act_binding(),
        "occ1": shared.occ1,
        "occ2": shared.occ2,
        "tr": shared.transit,
        "KO": shared.ko_total,
    }


class _OkMembers:
    """Callable counting operational members; avoids view internals."""

    def __init__(self, act_names: list[str], platoon: int) -> None:
        self.act_names = [n for n in act_names if n.endswith(f"_{platoon}")]
        self.platoon = platoon

    def __call__(self, g) -> int:
        active = sum(g[name] for name in self.act_names)
        return max(g[f"occ{self.platoon}"] - active, 0)


def build_movement_activities(
    shared: SharedPlaces, vehicle: VehiclePlaces, params: AHSParameters
) -> list[TimedActivity]:
    """Join, leave1, leave2, transit-exit, ch1, ch2 for one vehicle."""
    binding = _binding(shared, vehicle)
    n = params.max_platoon_size
    act_names = list(shared.act_binding())
    ok1 = _OkMembers(act_names, 1)
    ok2 = _OkMembers(act_names, 2)
    activities: list[TimedActivity] = []

    # --- Join: off-highway vehicle re-enters ---------------------------
    def join_enabled(g) -> bool:
        return (
            g["out"] == 1
            and g["unconfigured"] == 0
            and g["KO"] == 0
            and (g["occ1"] + g["tr"] < n or g["occ2"] < n)
        )

    def p1_weight(g) -> float:
        return params.platoon1_join_probability if g["occ1"] + g["tr"] < n else 0.0

    def p2_weight(g) -> float:
        return (1.0 - params.platoon1_join_probability) if g["occ2"] < n else 0.0

    def join_p1_prob(g) -> float:
        w1, w2 = p1_weight(g), p2_weight(g)
        return w1 / (w1 + w2) if w1 + w2 > 0 else 0.0

    def join_p2_prob(g) -> float:
        return 1.0 - join_p1_prob(g)

    def enter(platoon: int):
        def fire(g) -> None:
            g["out"] = 0
            g["ok"] = 1
            g[f"p{platoon}"] = 1
            g.inc(f"occ{platoon}")

        return fire

    activities.append(
        TimedActivity(
            "Join",
            rate=params.join_rate,
            input_gates=[InputGate("IG_join", binding, join_enabled)],
            cases=[
                Case(
                    MarkingFunction(binding, join_p1_prob),
                    [OutputGate("JP_p1", binding, enter(1))],
                    label="platoon1",
                ),
                Case(
                    MarkingFunction(binding, join_p2_prob),
                    [OutputGate("JP_p2", binding, enter(2))],
                    label="platoon2",
                ),
            ],
        )
    )

    # --- leave1: voluntary exit straight from platoon 1 -----------------
    def leave1_enabled(g) -> bool:
        return g["ok"] == 1 and g["p1"] == 1 and g["KO"] == 0

    def leave1_rate(g) -> float:
        candidates = ok1(g)
        return params.leave_rate / candidates if candidates > 0 else 0.0

    def leave1_fire(g) -> None:
        g["p1"] = 0
        g.dec("occ1")
        g["ok"] = 0
        g["out"] = 1

    activities.append(
        TimedActivity(
            "leave1",
            rate=MarkingFunction(binding, leave1_rate),
            input_gates=[InputGate("IG_leave1", binding, leave1_enabled)],
            cases=[Case(1.0, [OutputGate("OG_leave1", binding, leave1_fire)])],
        )
    )

    # --- leave2: platoon-2 exit via a transit through platoon 1 ---------
    def leave2_enabled(g) -> bool:
        return (
            g["ok"] == 1
            and g["p2"] == 1
            and g["KO"] == 0
            and g["occ1"] + g["tr"] < n
        )

    def leave2_rate(g) -> float:
        candidates = ok2(g)
        return params.leave_rate / candidates if candidates > 0 else 0.0

    def leave2_fire(g) -> None:
        g["p2"] = 0
        g.dec("occ2")
        g["in_transit"] = 1
        g.inc("tr")

    activities.append(
        TimedActivity(
            "leave2",
            rate=MarkingFunction(binding, leave2_rate),
            input_gates=[InputGate("IG_leave2", binding, leave2_enabled)],
            cases=[Case(1.0, [OutputGate("OG_leave2", binding, leave2_fire)])],
        )
    )

    # --- transit completion: the vehicle finally exits the highway ------
    def transit_enabled(g) -> bool:
        return g["in_transit"] == 1 and g["KO"] == 0

    def transit_fire(g) -> None:
        g["in_transit"] = 0
        g.dec("tr")
        g["ok"] = 0
        g["out"] = 1

    activities.append(
        TimedActivity(
            "exit_transit",
            rate=params.transit_rate,
            input_gates=[InputGate("IG_transit", binding, transit_enabled)],
            cases=[Case(1.0, [OutputGate("OG_transit", binding, transit_fire)])],
        )
    )

    # --- platoon changes ch1 / ch2 ---------------------------------------
    def ch1_enabled(g) -> bool:
        return (
            g["ok"] == 1 and g["p1"] == 1 and g["KO"] == 0 and g["occ2"] < n
        )

    def ch1_rate(g) -> float:
        candidates = ok1(g)
        return params.change_rate / candidates if candidates > 0 else 0.0

    def ch1_fire(g) -> None:
        g["p1"] = 0
        g.dec("occ1")
        g["p2"] = 1
        g.inc("occ2")

    def ch2_enabled(g) -> bool:
        return (
            g["ok"] == 1
            and g["p2"] == 1
            and g["KO"] == 0
            and g["occ1"] + g["tr"] < n
        )

    def ch2_rate(g) -> float:
        candidates = ok2(g)
        return params.change_rate / candidates if candidates > 0 else 0.0

    def ch2_fire(g) -> None:
        g["p2"] = 0
        g.dec("occ2")
        g["p1"] = 1
        g.inc("occ1")

    activities.append(
        TimedActivity(
            "ch1",
            rate=MarkingFunction(binding, ch1_rate),
            input_gates=[InputGate("IG_ch1", binding, ch1_enabled)],
            cases=[Case(1.0, [OutputGate("OG_ch1", binding, ch1_fire)])],
        )
    )
    activities.append(
        TimedActivity(
            "ch2",
            rate=MarkingFunction(binding, ch2_rate),
            input_gates=[InputGate("IG_ch2", binding, ch2_enabled)],
            cases=[Case(1.0, [OutputGate("OG_ch2", binding, ch2_fire)])],
        )
    )
    return activities
