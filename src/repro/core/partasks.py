"""Picklable workload tasks for the parallel runtime.

These are the bridge between the AHS models and
:class:`repro.runtime.ParallelRunner`: small frozen dataclasses that ship
cheaply to worker processes, rebuild the heavy objects (composed SAN,
simulator, analytical engine) worker-side, and expose stable
``cache_token`` structures for the content-addressed result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.core.parameters import AHSParameters

__all__ = ["UnsafetySimulationTask", "AnalyticalCurveTask"]


class _SimContext(NamedTuple):
    """Per-chunk worker context for :class:`UnsafetySimulationTask`."""

    simulator: object
    predicate: object
    times: np.ndarray
    horizon: float
    recorder: object = None


@dataclass(frozen=True)
class UnsafetySimulationTask:
    """Crude Monte-Carlo estimation of S(t) on the composed SAN.

    One replication simulates the jump chain to the trip horizon and
    returns the per-time unsafe indicator (weighted, so the same task
    works for importance-sampled variants built on top).

    ``engine`` selects the jump executor (see
    :data:`repro.san.compiled.ENGINES`).  Both engines are seed-identical,
    so results — and the content-addressed cache entries, which include the
    engine name — stay reproducible across the switch; the cache token
    still distinguishes engines so a suspected discrepancy can be bisected
    without cache pollution.

    ``metrics`` attaches a per-chunk
    :class:`~repro.obs.metrics.MetricsRecorder` worker-side; the runtime
    ships each chunk's summary home and merges them in chunk-index order,
    so the pooled metrics are identical for any worker count.  The flag
    joins the cache token only when enabled, keeping existing metric-less
    cache entries valid.
    """

    params: AHSParameters
    times: tuple[float, ...]
    engine: str = "compiled"
    metrics: bool = False
    metrics_level: str = "full"

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("need at least one evaluation time")
        if min(self.times) < 0:
            raise ValueError("times must be non-negative")
        from repro.san.compiled import ENGINES

        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose one of {ENGINES}"
            )

    def build(self) -> _SimContext:
        """Worker-side construction of the composed model and simulator."""
        from repro.core.composed import build_composed_model
        from repro.san.compiled import make_jump_engine

        ahs = build_composed_model(self.params)
        recorder = None
        observer = None
        if self.metrics:
            from repro.obs import MetricsRecorder, Observation

            recorder = MetricsRecorder(level=self.metrics_level)
            observer = Observation(metrics=recorder)
        return _SimContext(
            simulator=make_jump_engine(
                ahs.model, engine=self.engine, observer=observer
            ),
            predicate=ahs.unsafe_predicate(),
            times=np.asarray(self.times, dtype=float),
            horizon=float(max(self.times)),
            recorder=recorder,
        )

    def sample(self, context: _SimContext, stream) -> np.ndarray:
        """One replication: weighted unsafe indicator at each time point."""
        run = context.simulator.run(stream, context.horizon, context.predicate)
        return np.where(run.stop_time <= context.times, run.weight, 0.0)

    def events_of(self, context: _SimContext) -> int:
        """Timed firings executed so far by this context's simulator
        (worker telemetry: events/sec per engine)."""
        return int(context.simulator.fired_events)

    def metrics_of(self, context: _SimContext):
        """This chunk's serialised metric summary (None when disabled)."""
        if context.recorder is None:
            return None
        return context.recorder.summary().to_dict()

    def cache_token(self) -> dict:
        token = {
            "measure": "unsafety",
            "engine": "simulation",
            "simulator": self.engine,
            "params": self.params,
            "times": self.times,
        }
        if self.metrics:
            token["metrics"] = self.metrics_level
        return token


@dataclass(frozen=True)
class AnalyticalCurveTask:
    """One sweep point of a figure: S(t) over ``times`` for one parameterisation.

    The lumped-CTMC engine is deterministic, so these points are ideal
    cache citizens — a re-run of ``repro-cli all`` with caching enabled
    skips every already-computed sweep point.
    """

    params: AHSParameters
    times: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("need at least one evaluation time")

    def __call__(self) -> list[float]:
        from repro.core.analytical import AnalyticalEngine

        curve = AnalyticalEngine(self.params).unsafety(list(self.times))
        return [float(v) for v in curve.unsafety]

    def cache_token(self) -> dict:
        return {
            "measure": "unsafety",
            "engine": "analytical",
            "params": self.params,
            "times": self.times,
        }
