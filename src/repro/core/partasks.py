"""Picklable workload tasks for the parallel runtime.

These are the bridge between the AHS models and
:class:`repro.runtime.ParallelRunner`: small frozen dataclasses that ship
cheaply to worker processes, rebuild the heavy objects (composed SAN,
simulator, analytical engine) worker-side, and expose stable
``cache_token`` structures for the content-addressed result cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.core.parameters import AHSParameters
from repro.runtime import workerctx

__all__ = [
    "UnsafetySimulationTask",
    "ImportanceSimulationTask",
    "SplittingReplicationTask",
    "AnalyticalCurveTask",
]


class _SimContext(NamedTuple):
    """Per-chunk worker context for :class:`UnsafetySimulationTask`."""

    simulator: object
    predicate: object
    times: np.ndarray
    horizon: float
    recorder: object = None
    #: wall time spent building the model + engine (0.0 on cache hits,
    #: so the driver's compile span counts each worker's compile once)
    compile_seconds: float = 0.0
    #: chunk-lifetime scratch for the per-replication indicator mask
    scratch_mask: object = None


#: worker-process memo of built contexts, keyed by the task cache token.
#: Sequential-stopping runs dispatch many chunks of the *same* task to
#: each worker; without this memo every chunk re-runs
#: ``build_composed_model`` + ``make_jump_engine``.  Bounded (FIFO) so a
#: long-lived worker sweeping many parameter points cannot hoard models.
#: Storage and size policy live in :mod:`repro.runtime.workerctx` so the
#: driver can size the FIFO (``ParallelRunner(context_cache_size=...)``)
#: and observe evictions as ``CacheMiss`` ledger events; this alias (and
#: the default-capacity constant) remain for direct inspection.
_CONTEXT_CACHE: dict[str, _SimContext] = workerctx.cache()
_CONTEXT_CACHE_MAX = workerctx.DEFAULT_MAX_ENTRIES


@dataclass(frozen=True)
class UnsafetySimulationTask:
    """Crude Monte-Carlo estimation of S(t) on the composed SAN.

    One replication simulates the jump chain to the trip horizon and
    returns the per-time unsafe indicator (weighted, so the same task
    works for importance-sampled variants built on top).

    ``engine`` selects the jump executor (see
    :data:`repro.san.compiled.ENGINES`).  Both engines are seed-identical,
    so results — and the content-addressed cache entries, which include the
    engine name — stay reproducible across the switch; the cache token
    still distinguishes engines so a suspected discrepancy can be bisected
    without cache pollution.

    ``metrics`` attaches a per-chunk
    :class:`~repro.obs.metrics.MetricsRecorder` worker-side; the runtime
    ships each chunk's summary home and merges them in chunk-index order,
    so the pooled metrics are identical for any worker count.  The flag
    joins the cache token only when enabled, keeping existing metric-less
    cache entries valid.
    """

    params: AHSParameters
    times: tuple[float, ...]
    engine: str = "compiled"
    metrics: bool = False
    metrics_level: str = "full"
    batch_size: int = 256

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("need at least one evaluation time")
        if min(self.times) < 0:
            raise ValueError("times must be non-negative")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        from repro.san.compiled import ENGINES

        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose one of {ENGINES}"
            )

    def build(self) -> _SimContext:
        """Worker-side construction of the composed model and simulator."""
        from repro.core.composed import build_composed_model
        from repro.san.compiled import make_jump_engine

        started = time.perf_counter()
        ahs = build_composed_model(self.params)
        recorder = None
        observer = None
        if self.metrics:
            from repro.obs import MetricsRecorder, Observation

            recorder = MetricsRecorder(level=self.metrics_level)
            observer = Observation(metrics=recorder)
        simulator = make_jump_engine(
            ahs.model,
            engine=self.engine,
            observer=observer,
            batch_size=self.batch_size,
        )
        return _SimContext(
            simulator=simulator,
            predicate=ahs.unsafe_predicate(),
            times=np.asarray(self.times, dtype=float),
            horizon=float(max(self.times)),
            recorder=recorder,
            compile_seconds=time.perf_counter() - started,
            scratch_mask=np.empty(len(self.times), dtype=bool),
        )

    def build_cached(self) -> _SimContext:
        """Worker-side context, memoised per process by cache token.

        Metric-collecting tasks bypass the memo: their recorder
        accumulates across runs, so each chunk needs a fresh one.  Cache
        hits report ``compile_seconds == 0.0`` — over a multi-round run
        the profiler's compile span then totals one compile per worker.
        """
        if self.metrics:
            return self.build()
        from repro.runtime.cache import cache_key

        key = cache_key({"kind": "worker-context", "task": self.cache_token()})
        context = workerctx.get(key)
        if context is not None:
            return context._replace(compile_seconds=0.0)
        context = self.build()
        workerctx.put(key, context)
        return context

    def sample(self, context: _SimContext, stream) -> np.ndarray:
        """One replication: weighted unsafe indicator at each time point."""
        out = np.empty(len(context.times), dtype=float)
        return self.sample_into(context, stream, out)

    def sample_into(self, context: _SimContext, stream, out: np.ndarray) -> np.ndarray:
        """:meth:`sample`, writing into a caller-owned row buffer.

        The chunk loop reuses one samples matrix and the context's scratch
        mask, eliding the per-replication ``np.where`` allocations that
        profiles showed on the hot path for dense time grids.
        """
        run = context.simulator.run(stream, context.horizon, context.predicate)
        mask = context.scratch_mask
        if mask is None or len(mask) != len(context.times):
            mask = np.empty(len(context.times), dtype=bool)
        np.less_equal(run.stop_time, context.times, out=mask)
        out[:] = 0.0
        np.copyto(out, run.weight, where=mask)
        return out

    def supports_batch(self, context: _SimContext) -> bool:
        """Whether this context's simulator advances replications in batch."""
        return callable(getattr(context.simulator, "run_batch", None))

    def sample_batch(self, context: _SimContext, streams) -> np.ndarray:
        """All replications of a chunk through the batched kernel.

        Slices the chunk's streams into lockstep batches of
        ``batch_size``; row ``i`` of the result is bit-identical to
        ``sample(context, streams[i])`` (the batched engine preserves
        per-stream draw order at any width).
        """
        out = np.zeros((len(streams), len(context.times)), dtype=float)
        mask = context.scratch_mask
        if mask is None or len(mask) != len(context.times):
            mask = np.empty(len(context.times), dtype=bool)
        simulator = context.simulator
        row = 0
        for start in range(0, len(streams), self.batch_size):
            chunk = streams[start:start + self.batch_size]
            for run in simulator.run_batch(
                chunk, context.horizon, context.predicate
            ):
                np.less_equal(run.stop_time, context.times, out=mask)
                np.copyto(out[row], run.weight, where=mask)
                row += 1
        return out

    def tensorizable(self) -> bool:
        """Cheap pre-build eligibility for cross-point tensor runs.

        Checked *before* ``build_cached`` so ineligible chunks never pay
        a context build in the probe (which would also hide the build's
        ``compile_seconds`` from the first real chunk's summary).
        :meth:`tensor_spec` re-validates on the built context.
        """
        return self.engine == "stepped" and not self.metrics

    def tensor_spec(self, context: _SimContext):
        """This context's cross-point tensor job triple, or ``None``.

        A chunk of this task can ride in a shared
        :class:`~repro.san.multipoint.MultiPointContext` tensor run
        exactly when its simulator is the stepped engine with no
        observer attached (metrics recorders force per-row delegation,
        which a tensor cannot replay).  Returns
        ``(engine, horizon, stop_predicate)`` when eligible.
        """
        simulator = context.simulator
        if getattr(simulator, "engine_name", "") != "stepped":
            return None
        if getattr(simulator, "observer", None) is not None:
            return None
        if context.recorder is not None:
            return None
        return simulator, context.horizon, context.predicate

    def samples_from_runs(self, context: _SimContext, runs) -> np.ndarray:
        """Per-replication sample rows from already-executed runs.

        The demux half of :meth:`sample_batch`: a tensorized group run
        hands back this chunk's :class:`~repro.san.simulator.
        SimulationRun` slice and this method reduces it with the exact
        arithmetic ``sample_batch`` applies, so the resulting rows are
        bit-identical to per-point execution (the stepped engine is
        width-invariant, which is also why ``batch_size`` is absent from
        the cache token).
        """
        out = np.zeros((len(runs), len(context.times)), dtype=float)
        mask = context.scratch_mask
        if mask is None or len(mask) != len(context.times):
            mask = np.empty(len(context.times), dtype=bool)
        for row, run in enumerate(runs):
            np.less_equal(run.stop_time, context.times, out=mask)
            np.copyto(out[row], run.weight, where=mask)
        return out

    def events_of(self, context: _SimContext) -> int:
        """Timed firings executed so far by this context's simulator
        (worker telemetry: events/sec per engine)."""
        return int(context.simulator.fired_events)

    def metrics_of(self, context: _SimContext):
        """This chunk's serialised metric summary (None when disabled)."""
        if context.recorder is None:
            return None
        return context.recorder.summary().to_dict()

    def cache_token(self) -> dict:
        # batch_size is deliberately absent: the batched engine is
        # bit-identical at every width, so results (and worker contexts)
        # are shareable across batch sizes
        token = {
            "measure": "unsafety",
            "engine": "simulation",
            "simulator": self.engine,
            "params": self.params,
            "times": self.times,
        }
        if self.metrics:
            token["metrics"] = self.metrics_level
        return token


@dataclass(frozen=True)
class ImportanceSimulationTask(UnsafetySimulationTask):
    """Failure-biased importance sampling as a chunked replication task.

    Identical sampling shape to :class:`UnsafetySimulationTask` — one
    replication yields the per-time *weighted* unsafe indicator — but the
    jump engine runs under failure biasing (every ``L_FM*`` timed activity
    boosted by ``boost``), and ``run.weight`` carries the exact likelihood
    ratio.  The pooled mean is therefore an unbiased estimate of S(t)
    whose CI shrinks orders of magnitude faster on rare-event points.
    """

    boost: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (self.boost > 0):
            raise ValueError(f"boost must be > 0, got {self.boost}")

    def build(self) -> _SimContext:
        from repro.core.composed import build_composed_model
        from repro.rare.importance import FailureBiasing
        from repro.san.compiled import make_jump_engine

        started = time.perf_counter()
        ahs = build_composed_model(self.params)
        biasing = FailureBiasing(
            boost=self.boost,
            name_predicate=lambda name: name.startswith("L_FM"),
        )
        recorder = None
        observer = None
        if self.metrics:
            from repro.obs import MetricsRecorder, Observation

            recorder = MetricsRecorder(level=self.metrics_level)
            observer = Observation(metrics=recorder)
        simulator = make_jump_engine(
            ahs.model,
            bias=biasing.plan_for(ahs.model),
            engine=self.engine,
            observer=observer,
            batch_size=self.batch_size,
        )
        return _SimContext(
            simulator=simulator,
            predicate=ahs.unsafe_predicate(),
            times=np.asarray(self.times, dtype=float),
            horizon=float(max(self.times)),
            recorder=recorder,
            compile_seconds=time.perf_counter() - started,
            scratch_mask=np.empty(len(self.times), dtype=bool),
        )

    def cache_token(self) -> dict:
        token = super().cache_token()
        token["engine"] = "importance"
        token["boost"] = self.boost
        return token


class _SplitContext(NamedTuple):
    """Per-chunk worker context for :class:`SplittingReplicationTask`."""

    splitter: object
    times: np.ndarray
    compile_seconds: float = 0.0


@dataclass(frozen=True)
class SplittingReplicationTask:
    """Fixed-effort multilevel splitting as a chunked replication task.

    One replication is one *complete splitting pass* per evaluation time
    (:meth:`repro.rare.splitting.FixedEffortSplitting.repetition`), so a
    single replication costs roughly ``levels × trials_per_stage``
    trajectories per time point — the orchestrator schedules these in
    much smaller chunks than crude Monte-Carlo.  Per-repetition product
    estimates are i.i.d., so the chunk-summary pooling applies unchanged.
    """

    params: AHSParameters
    times: tuple[float, ...]
    levels: tuple[float, ...] = (1.0, 2.0, 3.0, 1000.0)
    trials_per_stage: int = 100
    engine: str = "compiled"

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("need at least one evaluation time")
        if min(self.times) <= 0:
            raise ValueError("splitting needs strictly positive times")
        if self.trials_per_stage < 2:
            raise ValueError("trials_per_stage must be >= 2")

    #: rough trajectory cost of one replication relative to one crude
    #: Monte-Carlo replication (used by cost-aware allocation policies)
    @property
    def cost_weight(self) -> float:
        return float(len(self.levels) * self.trials_per_stage * len(self.times))

    def build(self) -> _SplitContext:
        from repro.core.composed import build_composed_model
        from repro.rare.splitting import FixedEffortSplitting

        started = time.perf_counter()
        ahs = build_composed_model(self.params)
        splitter = FixedEffortSplitting(
            ahs.model,
            ahs.severity_level(),
            list(self.levels),
            trials_per_stage=self.trials_per_stage,
            engine=self.engine,
        )
        return _SplitContext(
            splitter=splitter,
            times=np.asarray(self.times, dtype=float),
            compile_seconds=time.perf_counter() - started,
        )

    def build_cached(self) -> _SplitContext:
        from repro.runtime.cache import cache_key

        key = cache_key({"kind": "worker-context", "task": self.cache_token()})
        context = workerctx.get(key)
        if context is not None:
            return context._replace(compile_seconds=0.0)
        context = self.build()
        workerctx.put(key, context)
        return context

    def sample(self, context: _SplitContext, stream) -> np.ndarray:
        """One splitting repetition per time point, on a single stream."""
        return np.asarray(
            [
                context.splitter.repetition(float(t), stream)
                for t in context.times
            ],
            dtype=float,
        )

    def events_of(self, context: _SplitContext) -> int:
        """Timed firings executed so far (worker telemetry)."""
        return int(context.splitter.simulator.fired_events)

    def cache_token(self) -> dict:
        return {
            "measure": "unsafety",
            "engine": "splitting",
            "simulator": self.engine,
            "params": self.params,
            "times": self.times,
            "levels": self.levels,
            "trials_per_stage": self.trials_per_stage,
        }


@dataclass(frozen=True)
class AnalyticalCurveTask:
    """One sweep point of a figure: S(t) over ``times`` for one parameterisation.

    The lumped-CTMC engine is deterministic, so these points are ideal
    cache citizens — a re-run of ``repro-cli all`` with caching enabled
    skips every already-computed sweep point.
    """

    params: AHSParameters
    times: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError("need at least one evaluation time")

    def __call__(self) -> list[float]:
        from repro.core.analytical import AnalyticalEngine

        curve = AnalyticalEngine(self.params).unsafety(list(self.times))
        return [float(v) for v in curve.unsafety]

    def cache_token(self) -> dict:
        return {
            "measure": "unsafety",
            "engine": "analytical",
            "params": self.params,
            "times": self.times,
        }
