"""The composed AHS model (paper §3.2.5, Fig. 9).

``join(Severity, Rep(One_vehicle, 2n))`` — the One_vehicle submodel
(failure modes + maneuvers + per-vehicle dynamicity + configuration seat
claim) is replicated 2n times with the shared places of
:class:`~repro.core.configuration_model.SharedPlaces` common to all
replicas, then joined with the Severity watcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.configuration_model import (
    SharedPlaces,
    VehiclePlaces,
    build_configure_activity,
)
from repro.core.dynamicity_model import build_movement_activities
from repro.core.parameters import AHSParameters
from repro.core.severity_model import build_severity_model
from repro.core.vehicle_model import (
    build_failure_activities,
    build_maneuver_activities,
)
from repro.san import SANModel, join, replicate, validate_model
from repro.san.marking import Marking

__all__ = ["ComposedAHS", "build_one_vehicle_model", "build_composed_model"]


def build_one_vehicle_model(
    shared: SharedPlaces, params: AHSParameters
) -> SANModel:
    """One_vehicle: behaviour of a single (as yet anonymous) vehicle."""
    vehicle = VehiclePlaces()
    model = SANModel("One_vehicle")
    model.add_places(shared.all_places())
    model.add_places(vehicle.all_places())
    model.add_activity(build_configure_activity(shared, vehicle))
    for activity in build_failure_activities(shared, vehicle, params):
        model.add_activity(activity)
    for activity in build_maneuver_activities(shared, vehicle, params):
        model.add_activity(activity)
    for activity in build_movement_activities(shared, vehicle, params):
        model.add_activity(activity)
    return model


@dataclass
class ComposedAHS:
    """The flattened composed model plus the handles experiments need."""

    model: SANModel
    shared: SharedPlaces
    params: AHSParameters

    def unsafe_predicate(self) -> Callable[[Marking], bool]:
        """Stop/measure predicate: ``KO_total`` marked."""
        ko = self.shared.ko_total
        return lambda marking: marking.get(ko) >= 1

    def severity_level(self) -> Callable[[Marking], float]:
        """Importance function for multilevel splitting.

        Counts concurrently active failures, weighting Class A twice (it
        is the gateway to ST1/ST2), and tops out on ``KO_total`` so the
        top splitting level coincides with the rare event.
        """
        shared = self.shared

        def level(marking: Marking) -> float:
            if marking.get(shared.ko_total) >= 1:
                return 1000.0
            return (
                2.0 * marking.get(shared.class_a)
                + marking.get(shared.class_b)
                + marking.get(shared.class_c)
            )

        return level

    def failure_activity_names(self) -> list[str]:
        """Names of all L_i replicas (the importance-sampling bias set)."""
        return [
            activity.name
            for activity in self.model.timed_activities
            if activity.name.startswith("L_FM")
        ]


def build_composed_model(
    params: AHSParameters, validate: bool = True
) -> ComposedAHS:
    """Build and (optionally) validate the full 2n-vehicle composed SAN."""
    shared = SharedPlaces(params)
    one_vehicle = build_one_vehicle_model(shared, params)
    replicas = replicate(
        one_vehicle, params.total_vehicles, shared=shared.all_places()
    )
    severity = build_severity_model(shared)
    composed = join("AHS", [severity, *replicas])
    if validate:
        validate_model(composed)
    return ComposedAHS(model=composed, shared=shared, params=params)
