"""Failure modes of a platooned vehicle (paper Table 1).

Six failure modes FM1–FM6, each with an example cause, a severity class
(A3 > A2 > A1 > B2 = B1 > C) and an associated recovery maneuver.  The
failure rates are expressed relative to the smallest rate λ exactly as in
§4.1: λ₆ = 4λ, λ₅ = 3λ, λ₄ = λ₃ = λ₂ = 2λ, λ₁ = λ.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "SeverityClass",
    "FailureMode",
    "FAILURE_MODES",
    "RATE_MULTIPLIERS",
    "total_rate_multiplier",
]


class SeverityClass(enum.Enum):
    """Severity of a failure mode; classes rank A3 > A2 > A1 > B2 = B1 > C."""

    A3 = "A3"
    A2 = "A2"
    A1 = "A1"
    B2 = "B2"
    B1 = "B1"
    C = "C"

    @property
    def letter(self) -> str:
        """The class letter (A, B or C) used by the catastrophic predicates."""
        return self.value[0]

    @property
    def rank(self) -> int:
        """Priority rank, larger = more critical (B1 and B2 tie)."""
        return {"A3": 6, "A2": 5, "A1": 4, "B2": 3, "B1": 3, "C": 1}[self.value]

    def __lt__(self, other: "SeverityClass") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "SeverityClass") -> bool:
        return self.rank <= other.rank


@dataclass(frozen=True)
class FailureMode:
    """One row of the paper's Table 1."""

    #: identifier FM1..FM6
    fm_id: str
    #: example cause from the paper
    example_cause: str
    #: severity class
    severity: SeverityClass
    #: name of the associated maneuver (resolved in repro.core.maneuvers)
    maneuver_name: str
    #: failure rate as a multiple of the base rate λ
    rate_multiplier: int

    @property
    def index(self) -> int:
        """Zero-based index (FM1 → 0)."""
        return int(self.fm_id[2:]) - 1

    def rate(self, base_failure_rate: float) -> float:
        """Absolute occurrence rate λᵢ for a given base rate λ."""
        if base_failure_rate <= 0:
            raise ValueError(
                f"base failure rate must be > 0, got {base_failure_rate}"
            )
        return self.rate_multiplier * base_failure_rate


#: Table 1 of the paper, in FM order.
FAILURE_MODES: tuple[FailureMode, ...] = (
    FailureMode("FM1", "No brakes", SeverityClass.A3, "AS", 1),
    FailureMode(
        "FM2",
        "Inability to detect vehicles in adjacent lanes",
        SeverityClass.A2,
        "CS",
        2,
    ),
    FailureMode(
        "FM3", "Inter-vehicle communication failure", SeverityClass.A1, "GS", 2
    ),
    FailureMode("FM4", "Transmission failure", SeverityClass.B2, "TIE-E", 2),
    FailureMode("FM5", "Reduced steering capability", SeverityClass.B1, "TIE", 3),
    FailureMode(
        "FM6", "Single failure in a redundant sensor set", SeverityClass.C, "TIE-N", 4
    ),
)

#: λᵢ/λ multipliers in FM1..FM6 order (paper §4.1).
RATE_MULTIPLIERS: tuple[int, ...] = tuple(fm.rate_multiplier for fm in FAILURE_MODES)


def total_rate_multiplier() -> int:
    """Σᵢ λᵢ/λ — the per-vehicle failure intensity in units of λ (= 14)."""
    return sum(RATE_MULTIPLIERS)
