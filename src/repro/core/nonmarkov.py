"""Extension: testing the paper's exponential-duration assumption.

§4.1 assumes "all the processes represented by timed activities have
exponential distributions".  Real maneuver durations are far less
variable — the kinematic substrate (:mod:`repro.agents`) produces
coefficient-of-variation ≈ 0.2–0.5, not the exponential's 1.0.  This
module builds *non-Markovian* variants of the composed SAN (Erlang-3,
deterministic, or log-normal maneuver durations with matched means) and
estimates the error the Markov assumption introduces, using the
general event-driven simulator (the CTMC engines cannot solve these).

Durations of the non-exponential variants are fixed at the expected
occupancy (general distributions cannot be marking-dependent in the
simulator), a documented approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.analytical import OccupancyChain
from repro.core.composed import ComposedAHS, build_composed_model
from repro.core.maneuvers import ESCALATION_LADDER, Maneuver
from repro.core.parameters import AHSParameters
from repro.san import SANSimulator
from repro.san.rewards import TransientEstimate
from repro.stochastic import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    LogNormal,
    StreamFactory,
)

__all__ = [
    "DURATION_FAMILIES",
    "duration_distribution",
    "build_nonmarkov_model",
    "markov_assumption_gap",
    "MarkovGapResult",
]

#: supported maneuver-duration families (all matched on the mean)
DURATION_FAMILIES = ("exponential", "erlang3", "deterministic", "lognormal")


def duration_distribution(
    family: str, mean_duration: float
) -> Distribution:
    """A duration distribution of the given family with the given mean.

    ``lognormal`` uses a coefficient of variation of 0.4, the midpoint of
    the band observed in the kinematic substrate.
    """
    if mean_duration <= 0.0:
        raise ValueError(f"mean duration must be > 0, got {mean_duration}")
    if family == "exponential":
        return Exponential(1.0 / mean_duration)
    if family == "erlang3":
        return Erlang(3, 3.0 / mean_duration)
    if family == "deterministic":
        return Deterministic(mean_duration)
    if family == "lognormal":
        cv = 0.4
        sigma2 = np.log(1.0 + cv * cv)
        mu = np.log(mean_duration) - 0.5 * sigma2
        return LogNormal(float(mu), float(np.sqrt(sigma2)))
    raise ValueError(f"unknown family {family!r}; choose from {DURATION_FAMILIES}")


def build_nonmarkov_model(
    params: AHSParameters, family: str
) -> ComposedAHS:
    """The composed AHS with maneuver durations from ``family``.

    The failure/dynamicity activities stay exponential (they genuinely
    are: rare shocks and Poisson-like traffic events); only the six
    maneuver activities change family.  Means are evaluated at the
    stationary expected occupancy.
    """
    if family not in DURATION_FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; choose from {DURATION_FAMILIES}"
        )
    ahs = build_composed_model(params)
    if family == "exponential":
        return ahs

    occ1, occ2, transit = OccupancyChain(params).expected_occupancies()
    mean_occupancy = (occ1 + transit + occ2) / 2.0
    for activity in ahs.model.timed_activities:
        name = activity.name
        if not name.startswith("maneuver_"):
            continue
        maneuver = Maneuver[name.split("_", 1)[1].split("[", 1)[0]]
        mean_duration = 1.0 / params.maneuver_rate(
            maneuver, max(mean_occupancy, 1.0)
        )
        activity.rate = None
        activity.distribution = duration_distribution(family, mean_duration)
    return ahs


@dataclass
class MarkovGapResult:
    """Simulation comparison of duration families."""

    horizon: float
    n_replications: int
    estimates: dict[str, TransientEstimate]

    def value(self, family: str) -> float:
        """Point estimate of S(horizon) for one family."""
        return float(self.estimates[family].values[-1])

    def relative_gap(self, family: str) -> float:
        """(S_family − S_exponential) / S_exponential."""
        reference = self.value("exponential")
        if reference == 0.0:
            return float("nan")
        return (self.value(family) - reference) / reference


def markov_assumption_gap(
    params: AHSParameters,
    horizon: float,
    n_replications: int = 2000,
    seed: Optional[int] = None,
    families: Sequence[str] = DURATION_FAMILIES,
) -> MarkovGapResult:
    """Estimate S(horizon) under each duration family by simulation.

    Use a small, failure-dense configuration (the event-driven simulator
    needs enough hits); the integration tests run n=2–3 vehicles/platoon
    with λ around 1e-2.
    """
    factory = StreamFactory(seed)
    estimates: dict[str, TransientEstimate] = {}
    for family in families:
        ahs = build_nonmarkov_model(params, family)
        simulator = SANSimulator(ahs.model)
        predicate = ahs.unsafe_predicate()
        runs = [
            simulator.run(stream, horizon, predicate)
            for stream in factory.stream_batch(f"{family}-rep", n_replications)
        ]
        estimates[family] = TransientEstimate.from_indicator_runs(
            [horizon], runs, method=f"simulation-{family}"
        )
    return MarkovGapResult(
        horizon=horizon, n_replications=n_replications, estimates=estimates
    )
