"""Catastrophic situations (paper Table 2).

The AHS reaches an unsafe state when near-simultaneous failures of several
adjacent vehicles combine into one of three situations:

* **ST1** — at least two Class-A failures;
* **ST2** — at least one Class-A failure AND (two Class-B, or one Class-B
  and one Class-C, or three Class-C failures);
* **ST3** — at least four failures of Class B or C.

A vehicle contributes one *active* failure of the class of its currently
granted maneuver, from the failure occurrence until the maneuver succeeds
(or the vehicle is expelled at ``v_KO``).  See DESIGN.md §2 for this
accounting choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.maneuvers import Maneuver

__all__ = [
    "SeverityCounts",
    "catastrophic_situation",
    "catastrophic_situation_counts",
    "CATASTROPHIC_SITUATIONS",
]

#: Situation identifiers with the paper's descriptions, for reports.
CATASTROPHIC_SITUATIONS: dict[str, str] = {
    "ST1": "At least two Class A failures",
    "ST2": (
        "At least one Class A failure AND {two Class B failures, OR one "
        "Class B and one Class C failure, OR three Class C failures}"
    ),
    "ST3": "At least four failures whose severities are Class B or Class C",
}


@dataclass(frozen=True)
class SeverityCounts:
    """Counts of concurrently active failures per severity class letter."""

    a: int = 0
    b: int = 0
    c: int = 0

    def __post_init__(self) -> None:
        if min(self.a, self.b, self.c) < 0:
            raise ValueError(f"severity counts must be >= 0, got {self}")

    @classmethod
    def from_active_maneuvers(
        cls, maneuvers: Iterable[Maneuver]
    ) -> "SeverityCounts":
        """Counts induced by a multiset of active maneuvers."""
        a = b = c = 0
        for maneuver in maneuvers:
            letter = maneuver.severity.letter
            if letter == "A":
                a += 1
            elif letter == "B":
                b += 1
            else:
                c += 1
        return cls(a, b, c)

    @property
    def total(self) -> int:
        """Total number of active failures."""
        return self.a + self.b + self.c

    def plus(self, maneuver: Maneuver) -> "SeverityCounts":
        """Counts after one more active maneuver of the given kind."""
        letter = maneuver.severity.letter
        return SeverityCounts(
            self.a + (letter == "A"),
            self.b + (letter == "B"),
            self.c + (letter == "C"),
        )


def catastrophic_situation_counts(a: int, b: int, c: int) -> Optional[str]:
    """Which catastrophic situation (if any) raw per-class counts satisfy.

    Returns the first matching identifier in the order ST1, ST2, ST3, or
    ``None`` when the combination is survivable.  Operates on the bare
    counts — no :class:`SeverityCounts` construction — so marking
    predicates built on it stay branch-traceable by the batch-lowering
    pass (the dataclass validator's raising branch would otherwise abort
    the trace; markings are non-negative by the place invariant, so the
    validation is redundant there anyway).
    """
    if a >= 2:
        return "ST1"
    if a >= 1 and (b >= 2 or (b >= 1 and c >= 1) or c >= 3):
        return "ST2"
    if b + c >= 4:
        return "ST3"
    return None


def catastrophic_situation(counts: SeverityCounts) -> Optional[str]:
    """Which catastrophic situation (if any) the counts satisfy.

    Returns the first matching identifier in the order ST1, ST2, ST3, or
    ``None`` when the combination is survivable.
    """
    return catastrophic_situation_counts(counts.a, counts.b, counts.c)
