"""Closed-form first-order approximation of the unsafety.

At realistic failure rates the unsafety is dominated by the **ST1 path**:
one Class-A maneuver is active, and a second failure arrives in its
coordination scope before it completes — the request-escalation rule then
activates a second Class-A maneuver and Table 2's ST1 fires.  Treating the
class-A activations as a Poisson stream and ignoring higher-order terms:

``S(t) ≈ Λ_A · E[overlap] · t``

with ``Λ_A`` the system-wide class-A activation rate and ``E[overlap]``
the probability that another (escalating) failure lands in scope during
the maneuver's mean duration.  This is a sanity oracle for the numerical
engine — the integration tests require agreement within a small factor —
and an instant estimate for interactive exploration.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.analytical import OccupancyChain
from repro.core.coordination import scope_is_global
from repro.core.failure_modes import FAILURE_MODES
from repro.core.maneuvers import Maneuver, maneuver_for_failure_mode
from repro.core.parameters import AHSParameters

__all__ = ["OverlapApproximation"]


class OverlapApproximation:
    """First-order (ST1-only) unsafety estimate."""

    def __init__(self, params: AHSParameters) -> None:
        self.params = params
        occ1, occ2, transit = OccupancyChain(params).expected_occupancies()
        self.occ1 = occ1 + transit
        self.occ2 = occ2

    # ------------------------------------------------------------------
    def _class_a_rate_per_vehicle(self) -> float:
        """Direct class-A failure intensity of one vehicle (FM1–FM3)."""
        return sum(
            self.params.failure_mode_rate(fm)
            for fm in FAILURE_MODES
            if fm.severity.letter == "A"
        )

    def _any_rate_per_vehicle(self) -> float:
        """Total failure intensity of one vehicle."""
        return self.params.total_failure_rate()

    def _mean_class_a_duration(self, occupancy: float) -> float:
        """Mean duration of a class-A maneuver, weighted by FM rates."""
        weights = []
        durations = []
        for fm in FAILURE_MODES:
            maneuver = maneuver_for_failure_mode(fm)
            if maneuver.severity.letter != "A":
                continue
            weights.append(self.params.failure_mode_rate(fm))
            durations.append(1.0 / self.params.maneuver_rate(maneuver, occupancy))
        return float(np.average(durations, weights=weights))

    def unsafety(self, times: Sequence[float]) -> np.ndarray:
        """Approximate S(t) at the requested times."""
        times_arr = np.asarray(list(times), dtype=float)
        if (times_arr < 0).any():
            raise ValueError("times must be non-negative")
        params = self.params
        occ = (self.occ1, self.occ2)
        lam_a = self._class_a_rate_per_vehicle()
        lam_any = self._any_rate_per_vehicle()

        rate_to_ko = 0.0
        for platoon in (0, 1):
            # class-A activations in this platoon
            activations = lam_a * occ[platoon]
            duration = self._mean_class_a_duration(max(occ[platoon], 1.0))
            if scope_is_global(params.strategy):
                # any failure anywhere escalates to class A while the SAP
                # is handling a class-A maneuver
                escalating = lam_any * (occ[0] + occ[1])
            else:
                # failures in the same platoon escalate; direct class-A
                # failures elsewhere also complete the pair
                escalating = lam_any * occ[platoon] + lam_a * occ[1 - platoon]
            rate_to_ko += activations * escalating * duration
        return 1.0 - np.exp(-rate_to_ko * times_arr)
