"""Shared state variables and the Configuration submodel (paper Fig. 8).

The Configuration submodel initialises the replicated ``One_vehicle``
submodels: the paper assigns each replica a vehicle id through the shared
places ``start_id``/``int_id``/``ext_id`` and marks ``IN`` so the
Dynamicity submodel seats the vehicle in a platoon.  Here the same effect
is achieved with two shared seat-budget places (``init_p1``, ``init_p2``,
each starting with n tokens) and a per-vehicle instantaneous ``configure``
activity that claims a seat at time zero — so the model starts, as in the
paper, with n vehicles in each platoon, and the whole composition still
uses the plain Rep operator on one identical submodel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.maneuvers import Maneuver
from repro.core.parameters import AHSParameters
from repro.san import Case, InputGate, InstantaneousActivity, OutputGate, Place

__all__ = ["SharedPlaces", "build_configure_activity"]


@dataclass
class SharedPlaces:
    """Places shared by every submodel of the composed AHS model.

    Mirrors the shared state of the paper's composed model (Fig. 4/9):
    platoon occupancies (the paper's ``platoon1``/``platoon2`` arrays,
    reduced to counts — see DESIGN.md), the severity-class places of the
    Severity submodel, the ``KO_total`` unsafe flag, and the per-maneuver
    activity counters that implement maneuver-priority coordination.
    """

    params: AHSParameters
    #: members of platoon 1 / 2 (vehicles mid-maneuver included)
    occ1: Place = field(init=False)
    occ2: Place = field(init=False)
    #: platoon-2 leavers transiting through platoon 1
    transit: Place = field(init=False)
    #: unsafe absorbing flag (paper: KO_total)
    ko_total: Place = field(init=False)
    #: severity-class counters (paper: class_A, class_B, class_C)
    class_a: Place = field(init=False)
    class_b: Place = field(init=False)
    class_c: Place = field(init=False)
    #: active-maneuver counters per (maneuver, platoon)
    act: dict[tuple[Maneuver, int], Place] = field(init=False)
    #: initial seat budgets consumed by the configure activities
    init_p1: Place = field(init=False)
    init_p2: Place = field(init=False)

    def __post_init__(self) -> None:
        n = self.params.max_platoon_size
        self.occ1 = Place("occ1", 0)
        self.occ2 = Place("occ2", 0)
        self.transit = Place("transit", 0)
        self.ko_total = Place("KO_total", 0)
        self.class_a = Place("class_A", 0)
        self.class_b = Place("class_B", 0)
        self.class_c = Place("class_C", 0)
        self.act = {
            (maneuver, platoon): Place(f"act_{maneuver.name}_{platoon}", 0)
            for maneuver in Maneuver
            for platoon in (1, 2)
        }
        self.init_p1 = Place("init_p1", n)
        self.init_p2 = Place("init_p2", n)

    # ------------------------------------------------------------------
    def all_places(self) -> list[Place]:
        """Every shared place (for the Rep operator's shared set)."""
        return [
            self.occ1,
            self.occ2,
            self.transit,
            self.ko_total,
            self.class_a,
            self.class_b,
            self.class_c,
            *self.act.values(),
            self.init_p1,
            self.init_p2,
        ]

    def act_binding(self) -> dict[str, Place]:
        """Gate-binding entries for the 12 activity counters."""
        return {
            f"act_{maneuver.name}_{platoon}": place
            for (maneuver, platoon), place in self.act.items()
        }

    def class_place_name(self, maneuver: Maneuver) -> str:
        """Local binding name of the class counter for a maneuver."""
        return f"class_{maneuver.severity.letter}"

    def class_binding(self) -> dict[str, Place]:
        """Gate-binding entries for the three severity-class counters."""
        return {
            "class_A": self.class_a,
            "class_B": self.class_b,
            "class_C": self.class_c,
        }


@dataclass
class VehiclePlaces:
    """Per-vehicle (replicated, non-shared) places of One_vehicle."""

    #: operational flag (1 while the vehicle can fail / move voluntarily)
    ok: Place = field(default_factory=lambda: Place("ok", 0))
    #: platoon-membership flags
    p1: Place = field(default_factory=lambda: Place("p1", 0))
    p2: Place = field(default_factory=lambda: Place("p2", 0))
    #: transiting through platoon 1 on the way out
    in_transit: Place = field(default_factory=lambda: Place("in_transit", 0))
    #: off the highway (paper: OUT is marked; here per-vehicle)
    out: Place = field(default_factory=lambda: Place("out", 1))
    #: waiting for the Configuration submodel (time-zero seat assignment)
    unconfigured: Place = field(default_factory=lambda: Place("unconfigured", 1))
    #: maneuver-in-progress flags (paper: SM_i)
    sm: dict[Maneuver, Place] = field(
        default_factory=lambda: {
            maneuver: Place(f"sm_{maneuver.name}", 0) for maneuver in Maneuver
        }
    )

    def binding(self) -> dict[str, Place]:
        """Gate-binding entries for all per-vehicle places."""
        entries: dict[str, Place] = {
            "ok": self.ok,
            "p1": self.p1,
            "p2": self.p2,
            "in_transit": self.in_transit,
            "out": self.out,
            "unconfigured": self.unconfigured,
        }
        for maneuver, place in self.sm.items():
            entries[f"sm_{maneuver.name}"] = place
        return entries

    def all_places(self) -> list[Place]:
        """Every per-vehicle place."""
        return [
            self.ok,
            self.p1,
            self.p2,
            self.in_transit,
            self.out,
            self.unconfigured,
            *self.sm.values(),
        ]


def build_configure_activity(
    shared: SharedPlaces, vehicle: VehiclePlaces
) -> InstantaneousActivity:
    """The per-vehicle Configuration activity (paper's ``id_trigger``).

    Fires once at time zero: claims a seat from ``init_p1`` (then
    ``init_p2``) and seats the vehicle as an operational platoon member.
    """
    binding = {
        **vehicle.binding(),
        "init_p1": shared.init_p1,
        "init_p2": shared.init_p2,
        "occ1": shared.occ1,
        "occ2": shared.occ2,
    }

    def predicate(g) -> bool:
        return (
            g["unconfigured"] == 1
            and g["out"] == 1
            and (g["init_p1"] > 0 or g["init_p2"] > 0)
        )

    def seat(g) -> None:
        if g["init_p1"] > 0:
            g.dec("init_p1")
            g["p1"] = 1
            g.inc("occ1")
        else:
            g.dec("init_p2")
            g["p2"] = 1
            g.inc("occ2")
        g["out"] = 0
        g["ok"] = 1
        g["unconfigured"] = 0

    gate = InputGate("configure_seat", binding, predicate)
    return InstantaneousActivity(
        "configure",
        input_gates=[gate],
        cases=[Case(1.0, [OutputGate("take_seat", binding, seat)])],
        priority=100,
    )
