"""The paper's primary contribution: compositional AHS safety models.

Domain layer (paper §2): failure modes, maneuvers with priority /
escalation, catastrophic situations, coordination strategies.

Model layer (paper §3): the One_vehicle / Severity / Dynamicity /
Configuration SAN submodels and their Rep/Join composition, plus a lumped
analytical engine and a closed-form approximation.

Measure (paper §4): ``unsafety(params, times, method=...)``.
"""

from repro.core.failure_modes import (
    FAILURE_MODES,
    FailureMode,
    SeverityClass,
    RATE_MULTIPLIERS,
    total_rate_multiplier,
)
from repro.core.maneuvers import (
    DEFAULT_MANEUVER_RATES,
    ESCALATION_LADDER,
    Maneuver,
    escalate_request,
    maneuver_for_failure_mode,
    next_on_failure,
)
from repro.core.severity import (
    CATASTROPHIC_SITUATIONS,
    SeverityCounts,
    catastrophic_situation,
)
from repro.core.coordination import (
    CoordinationModel,
    Strategy,
    assistants,
    scope_is_global,
)
from repro.core.parameters import AHSParameters
from repro.core.composed import ComposedAHS, build_composed_model, build_one_vehicle_model
from repro.core.analytical import (
    AnalyticalEngine,
    AnalyticalResult,
    FailureLevelChain,
    OccupancyChain,
)
from repro.core.approximation import OverlapApproximation
from repro.core.measures import (
    UNSAFETY_METHODS,
    expected_degraded_vehicle_hours,
    mean_time_to_unsafety,
    unsafety,
    unsafety_hazard,
)
from repro.core.multiplatoon import (
    MultiPlatoonEngine,
    MultiPlatoonResult,
    mean_field_occupancy,
)
from repro.core.design import (
    DesignPoint,
    best_strategy,
    design_frontier,
    max_platoon_size_for,
    max_trip_duration,
)
from repro.core.nonmarkov import (
    DURATION_FAMILIES,
    build_nonmarkov_model,
    duration_distribution,
    markov_assumption_gap,
)
from repro.core.partasks import AnalyticalCurveTask, UnsafetySimulationTask

__all__ = [
    "FAILURE_MODES",
    "FailureMode",
    "SeverityClass",
    "RATE_MULTIPLIERS",
    "total_rate_multiplier",
    "DEFAULT_MANEUVER_RATES",
    "ESCALATION_LADDER",
    "Maneuver",
    "escalate_request",
    "maneuver_for_failure_mode",
    "next_on_failure",
    "CATASTROPHIC_SITUATIONS",
    "SeverityCounts",
    "catastrophic_situation",
    "CoordinationModel",
    "Strategy",
    "assistants",
    "scope_is_global",
    "AHSParameters",
    "ComposedAHS",
    "build_composed_model",
    "build_one_vehicle_model",
    "AnalyticalEngine",
    "AnalyticalResult",
    "FailureLevelChain",
    "OccupancyChain",
    "OverlapApproximation",
    "UNSAFETY_METHODS",
    "unsafety",
    "mean_time_to_unsafety",
    "unsafety_hazard",
    "expected_degraded_vehicle_hours",
    "MultiPlatoonEngine",
    "MultiPlatoonResult",
    "mean_field_occupancy",
    "DURATION_FAMILIES",
    "build_nonmarkov_model",
    "duration_distribution",
    "markov_assumption_gap",
    "AnalyticalCurveTask",
    "UnsafetySimulationTask",
    "DesignPoint",
    "best_strategy",
    "design_frontier",
    "max_platoon_size_for",
    "max_trip_duration",
]
