"""Coordination strategies (paper §2.2, Table 3) and their maneuver cost.

Four strategies combine the inter-platoon and intra-platoon coordination
models (C = centralized, D = decentralized): DD, DC, CD, CC.  The strategy
shapes safety through two mechanisms, both taken from §2.2.1:

1. **involvement** — how many vehicles must cooperate in each maneuver.
   Centralized coordination involves more vehicles (e.g. for TIE-E, "all
   the vehicles in front of the faulty vehicle (including the leader) and
   the vehicle just behind it, and the leader of the neighboring platoon",
   plus the road-side SAP; decentralized needs "only the leaders of the
   two platoons and the vehicles just in front and behind").  More
   involved vehicles ⇒ lower success probability ⇒ deeper escalation.
2. **scope** — which active maneuvers a new request must defer to.  The
   SAP of the centralized inter-platoon model serializes maneuvers across
   both platoons; a decentralized leader serializes only its own platoon.
"""

from __future__ import annotations

import enum

from repro.core.maneuvers import Maneuver

__all__ = ["CoordinationModel", "Strategy", "assistants", "scope_is_global"]


class CoordinationModel(enum.Enum):
    """Centralized vs. decentralized coordination."""

    CENTRALIZED = "C"
    DECENTRALIZED = "D"


class Strategy(enum.Enum):
    """The four strategies of Table 3, named inter-then-intra."""

    DD = "DD"
    DC = "DC"
    CD = "CD"
    CC = "CC"

    @property
    def inter(self) -> CoordinationModel:
        """Inter-platoon coordination model."""
        return (
            CoordinationModel.DECENTRALIZED
            if self.value[0] == "D"
            else CoordinationModel.CENTRALIZED
        )

    @property
    def intra(self) -> CoordinationModel:
        """Intra-platoon coordination model."""
        return (
            CoordinationModel.DECENTRALIZED
            if self.value[1] == "D"
            else CoordinationModel.CENTRALIZED
        )

    def __repr__(self) -> str:
        return f"Strategy.{self.name}"


#: Intra-platoon assistants per maneuver: (decentralized, centralized).
#: Decentralized: members react by direct communication (front/back
#: neighbours); centralized adds the leader, who computes and orders the
#: gap/speed changes (§2.2.2).
_INTRA_ASSISTANTS: dict[Maneuver, tuple[int, int]] = {
    Maneuver.TIE_N: (0, 1),
    Maneuver.TIE: (2, 3),
    Maneuver.TIE_E: (2, 2),  # own-platoon front + behind; leaders counted inter
    Maneuver.GS: (1, 2),
    Maneuver.CS: (2, 3),
    Maneuver.AS: (2, 3),
}

#: Inter-platoon assistants for maneuvers that do not depend on platoon
#: size: (decentralized, centralized).  Class-A stops under centralized
#: inter-platoon coordination involve the SAP (traffic diversion, §2.1.1);
#: TIE-E is handled separately because its centralized cost grows with the
#: platoon length.
_INTER_ASSISTANTS_FIXED: dict[Maneuver, tuple[int, int]] = {
    Maneuver.TIE_N: (0, 0),
    Maneuver.TIE: (0, 0),
    Maneuver.GS: (0, 1),
    Maneuver.CS: (0, 1),
    Maneuver.AS: (0, 1),
}


#: maneuvers that open a gap in the platoon, propagating spacing
#: adjustments to the vehicles behind the faulty one
GAP_OPENING_MANEUVERS = frozenset(
    {Maneuver.TIE, Maneuver.TIE_E, Maneuver.AS}
)


def assistants(
    maneuver: Maneuver,
    strategy: Strategy,
    occupancy_own: float,
    occupancy_neighbor: float,
    rear_propagation: float = 0.0,
) -> float:
    """Expected number of assisting vehicles for one maneuver execution.

    Returns a real number: under centralized inter-platoon coordination the
    TIE-E maneuver involves every vehicle ahead of the faulty one, whose
    *expected* count is ``(occupancy_own − 1) / 2`` for a uniformly placed
    fault.

    Parameters
    ----------
    maneuver:
        The maneuver being executed.
    strategy:
        The coordination strategy in force.
    occupancy_own:
        Number of vehicles in the faulty vehicle's platoon (≥ 1: at least
        the faulty vehicle itself).
    occupancy_neighbor:
        Number of vehicles in the neighbouring platoon (used for sanity
        checks and future refinements; the leader is involved whenever the
        platoon is non-empty).
    rear_propagation:
        Fraction of the platoon behind the faulty vehicle that must adjust
        its spacing when a gap-opening maneuver (split, escorted exit,
        aided stop) executes — the kinematic substrate shows gap openings
        propagate rearward.  0 disables the effect.
    """
    if not 0.0 <= rear_propagation <= 1.0:
        raise ValueError(f"rear_propagation must be in [0,1], got {rear_propagation}")
    if occupancy_own < 1:
        raise ValueError(
            f"occupancy_own must be >= 1 (the faulty vehicle), got {occupancy_own}"
        )
    if occupancy_neighbor < 0:
        raise ValueError(f"occupancy_neighbor must be >= 0, got {occupancy_neighbor}")

    intra_d, intra_c = _INTRA_ASSISTANTS[maneuver]
    intra = intra_d if strategy.intra is CoordinationModel.DECENTRALIZED else intra_c
    # Assistants cannot exceed the other members of the own platoon for the
    # intra part.
    intra = min(intra, max(occupancy_own - 1, 0))

    if maneuver is Maneuver.TIE_E:
        if strategy.inter is CoordinationModel.DECENTRALIZED:
            # the two platoon leaders (each only if that platoon has one
            # beyond / besides the faulty vehicle)
            inter = (1.0 if occupancy_own >= 2 else 0.0) + (
                1.0 if occupancy_neighbor >= 1 else 0.0
            )
        else:
            # all vehicles ahead (expected (occ-1)/2, leader included),
            # the neighbour's leader, and the road-side SAP
            ahead = (occupancy_own - 1) / 2.0
            inter = ahead + (1.0 if occupancy_neighbor >= 1 else 0.0) + 1.0
    else:
        inter_d, inter_c = _INTER_ASSISTANTS_FIXED[maneuver]
        inter = float(
            inter_d
            if strategy.inter is CoordinationModel.DECENTRALIZED
            else inter_c
        )

    rear = 0.0
    if maneuver in GAP_OPENING_MANEUVERS and rear_propagation > 0.0:
        rear = rear_propagation * max(occupancy_own - 1.0, 0.0)
    return intra + inter + rear


def scope_is_global(strategy: Strategy) -> bool:
    """True when request escalation defers to maneuvers in *both* platoons.

    Centralized inter-platoon coordination funnels every maneuver decision
    through the SAP, so requests conflict system-wide; decentralized
    leaders only serialize their own platoon.
    """
    return strategy.inter is CoordinationModel.CENTRALIZED
