"""Recovery maneuvers and the priority / escalation discipline (paper §2.1).

Six maneuvers recover the six failure modes of Table 1:

======== ===== ==========================================================
maneuver class meaning
======== ===== ==========================================================
AS       A3    Aided Stop — stopped by the vehicle immediately ahead
CS       A2    Crash Stop — maximum emergency braking
GS       A1    Gentle Stop — smooth braking to a stop on the highway
TIE-E    B2    Take Immediate Exit, Escorted by a neighbouring platoon
TIE      B1    Take Immediate Exit (cooperating adjacent vehicles)
TIE-N    C     Take Immediate Exit, Normal (no assistance)
======== ===== ==========================================================

Priorities follow the severity classes: A3 > A2 > A1 > B2 = B1 > C.

Two escalation rules from the paper are implemented here:

* **failure escalation** (§2.1.1): "the maneuver failure leads the vehicle
  to start the next higher priority maneuver"; when AS — the last resort —
  fails, the vehicle reaches ``v_KO``.  The paper leaves the B-class order
  open (B1 and B2 have equal priority); we use the ladder
  TIE-N → TIE → TIE-E → GS → CS → AS, putting TIE before TIE-E because
  TIE-E consumes strictly more resources (an escort).
* **request escalation** (§2.1.2): "if another vehicle is already
  performing a maneuver with a higher priority, the maneuver requested by
  v1 will be refused.  Hence, v1 will ask for another maneuver of a higher
  priority until the requested maneuver is accepted" — a new request is
  granted at the first ladder rung whose priority matches or exceeds every
  maneuver currently active in the coordination scope.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

from repro.core.failure_modes import FAILURE_MODES, FailureMode, SeverityClass

__all__ = [
    "Maneuver",
    "ESCALATION_LADDER",
    "DEFAULT_MANEUVER_RATES",
    "maneuver_for_failure_mode",
    "next_on_failure",
    "escalate_request",
]


class Maneuver(enum.Enum):
    """The six recovery maneuvers."""

    AS = "AS"
    CS = "CS"
    GS = "GS"
    TIE_E = "TIE-E"
    TIE = "TIE"
    TIE_N = "TIE-N"

    @property
    def severity(self) -> SeverityClass:
        """Severity class of the failure modes this maneuver recovers."""
        return _MANEUVER_SEVERITY[self]

    @property
    def priority(self) -> int:
        """Priority rank (higher = more critical), from the severity class."""
        return self.severity.rank

    @property
    def is_stop(self) -> bool:
        """True for Class-A maneuvers that stop the vehicle on the highway."""
        return self.severity.letter == "A"

    @property
    def needs_neighbor_platoon(self) -> bool:
        """True when the maneuver requires inter-platoon coordination."""
        return self is Maneuver.TIE_E

    def __repr__(self) -> str:
        return f"Maneuver.{self.name}"


_MANEUVER_SEVERITY = {
    Maneuver.AS: SeverityClass.A3,
    Maneuver.CS: SeverityClass.A2,
    Maneuver.GS: SeverityClass.A1,
    Maneuver.TIE_E: SeverityClass.B2,
    Maneuver.TIE: SeverityClass.B1,
    Maneuver.TIE_N: SeverityClass.C,
}

#: Failure-escalation order, least to most drastic (see module docstring).
ESCALATION_LADDER: tuple[Maneuver, ...] = (
    Maneuver.TIE_N,
    Maneuver.TIE,
    Maneuver.TIE_E,
    Maneuver.GS,
    Maneuver.CS,
    Maneuver.AS,
)

#: Default execution rates (1/hr).  The paper gives the band 15–30/hr
#: (durations 2–4 minutes); within it we make drastic maneuvers slower —
#: a ranking confirmed by the kinematic substrate (repro.agents), where
#: aided stops and escorted exits take the longest.
DEFAULT_MANEUVER_RATES: dict[Maneuver, float] = {
    Maneuver.TIE_N: 30.0,
    Maneuver.TIE: 26.0,
    Maneuver.TIE_E: 22.0,
    Maneuver.GS: 20.0,
    Maneuver.CS: 17.0,
    Maneuver.AS: 15.0,
}

_BY_NAME = {m.value: m for m in Maneuver}


def maneuver_for_failure_mode(failure_mode: FailureMode) -> Maneuver:
    """The Table-1 maneuver associated with a failure mode."""
    return _BY_NAME[failure_mode.maneuver_name]


def next_on_failure(maneuver: Maneuver) -> Optional[Maneuver]:
    """Ladder successor after a failed maneuver (None after AS → v_KO)."""
    index = ESCALATION_LADDER.index(maneuver)
    if index + 1 >= len(ESCALATION_LADDER):
        return None
    return ESCALATION_LADDER[index + 1]


def escalate_request(
    requested: Maneuver, active_in_scope: Iterable[Maneuver]
) -> Maneuver:
    """Resolve a maneuver request against currently active maneuvers.

    The granted maneuver is the first ladder rung at or above the requested
    one whose priority is ≥ the highest active priority in the coordination
    scope (paper §2.1.2).  With an empty scope the request is granted as is.
    """
    ceiling = 0
    for active in active_in_scope:
        if active.priority > ceiling:
            ceiling = active.priority
    start = ESCALATION_LADDER.index(requested)
    for candidate in ESCALATION_LADDER[start:]:
        if candidate.priority >= ceiling:
            return candidate
    # AS has the maximum priority, so the loop always returns by its last
    # iteration; this is unreachable but keeps the function total.
    return Maneuver.AS


# Consistency guard: Table 1's maneuver names must all resolve.
for _fm in FAILURE_MODES:
    if _fm.maneuver_name not in _BY_NAME:
        raise RuntimeError(
            f"failure mode {_fm.fm_id} references unknown maneuver "
            f"{_fm.maneuver_name!r}"
        )
