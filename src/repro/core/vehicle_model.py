"""The One_vehicle submodel (paper §3.2.1, Fig. 5).

Per vehicle: six failure-mode activities ``L_i`` (rates λᵢ) and six
maneuver activities.  A failure marks the granted maneuver's ``SM`` place
(the request-escalation rule of §2.1.2 resolves which maneuver is granted
against the maneuvers active in the coordination scope); the maneuver's
completion either succeeds — the vehicle leaves the highway safely
(``v_OK``; here: the ``out`` flag, feeding the paper's ``back_to``/``OUT``
re-entry loop) — or fails and escalates to the next ladder rung, with
``v_KO`` (expulsion as a free agent) after a failed Aided Stop.

Severity-class counters and per-(maneuver, platoon) activity counters are
maintained in the shared places so the Severity submodel can detect the
catastrophic situations of Table 2.
"""

from __future__ import annotations

from typing import Callable

from repro.core.configuration_model import SharedPlaces, VehiclePlaces
from repro.core.coordination import scope_is_global
from repro.core.failure_modes import FAILURE_MODES
from repro.core.maneuvers import (
    ESCALATION_LADDER,
    Maneuver,
    escalate_request,
    maneuver_for_failure_mode,
    next_on_failure,
)
from repro.core.parameters import AHSParameters
from repro.san import Case, InputGate, MarkingFunction, OutputGate, TimedActivity

__all__ = ["build_failure_activities", "build_maneuver_activities"]


def _full_binding(shared: SharedPlaces, vehicle: VehiclePlaces) -> dict:
    """Binding exposing everything the failure/maneuver gates touch."""
    return {
        **vehicle.binding(),
        **shared.act_binding(),
        **shared.class_binding(),
        "occ1": shared.occ1,
        "occ2": shared.occ2,
        "tr": shared.transit,
        "KO": shared.ko_total,
    }


def _own_platoon(g) -> int:
    """Platoon of this vehicle (transit vehicles ride in platoon 1)."""
    if g["p1"] == 1 or g["in_transit"] == 1:
        return 1
    return 2


def _grant(g, params: AHSParameters, requested: Maneuver, own: int) -> Maneuver:
    """Request escalation against the active maneuvers in scope."""
    platoons = (1, 2) if scope_is_global(params.strategy) else (own,)
    active = [
        maneuver
        for maneuver in ESCALATION_LADDER
        for platoon in platoons
        if g[f"act_{maneuver.name}_{platoon}"] > 0
    ]
    return escalate_request(requested, active)


def _activate(g, shared: SharedPlaces, maneuver: Maneuver, own: int) -> None:
    """Mark a maneuver active for this vehicle and bump the counters."""
    g[f"sm_{maneuver.name}"] = 1
    g.inc(f"act_{maneuver.name}_{own}")
    g.inc(shared.class_place_name(maneuver))


def _deactivate(g, shared: SharedPlaces, maneuver: Maneuver, own: int) -> None:
    """Clear a vehicle's active maneuver and the shared counters."""
    g[f"sm_{maneuver.name}"] = 0
    g.dec(f"act_{maneuver.name}_{own}")
    g.dec(shared.class_place_name(maneuver))


def _occupancies(g) -> tuple[int, int]:
    """(platoon-1 incl. transit, platoon-2) occupancies from the marking.

    Returned as the raw marking integers: downstream arithmetic promotes
    them exactly, and avoiding ``float()`` keeps the expressions traceable
    by the batch-lowering pass.
    """
    return g["occ1"] + g["tr"], g["occ2"]


def _busy_fraction(g) -> float:
    """Fraction of potential assistants currently mid-maneuver."""
    active = g["class_A"] + g["class_B"] + g["class_C"]
    total = g["occ1"] + g["tr"] + g["occ2"]
    if total <= 1:
        return 1.0 if active > 0 else 0.0
    return min(max(active / (total - 1.0), 0.0), 1.0)


# ----------------------------------------------------------------------
# failure-mode activities (paper: L_1 .. L_6)
# ----------------------------------------------------------------------
def build_failure_activities(
    shared: SharedPlaces, vehicle: VehiclePlaces, params: AHSParameters
) -> list[TimedActivity]:
    """The six ``L_i`` activities of One_vehicle."""
    binding = _full_binding(shared, vehicle)
    activities: list[TimedActivity] = []
    for failure_mode in FAILURE_MODES:
        requested = maneuver_for_failure_mode(failure_mode)

        def predicate(g) -> bool:
            return g["ok"] == 1 and g["KO"] == 0

        def on_failure(g, requested=requested) -> None:
            # A transiting vehicle that fails re-materialises as a
            # platoon-1 member so its maneuver is coordinated there.
            if g["in_transit"] == 1:
                g["in_transit"] = 0
                g.dec("tr")
                g["p1"] = 1
                g.inc("occ1")
            own = _own_platoon(g)
            g["ok"] = 0
            granted = _grant(g, params, requested, own)
            _activate(g, shared, granted, own)

        gate_in = InputGate(f"fi_{failure_mode.fm_id}", binding, predicate)
        gate_out = OutputGate(f"fmi_{failure_mode.fm_id}", binding, on_failure)
        activities.append(
            TimedActivity(
                f"L_{failure_mode.fm_id}",
                rate=params.failure_mode_rate(failure_mode),
                input_gates=[gate_in],
                cases=[Case(1.0, [gate_out], label="failure-occurs")],
            )
        )
    return activities


# ----------------------------------------------------------------------
# maneuver activities
# ----------------------------------------------------------------------
def build_maneuver_activities(
    shared: SharedPlaces, vehicle: VehiclePlaces, params: AHSParameters
) -> list[TimedActivity]:
    """The six maneuver activities of One_vehicle (TIE-N ... AS)."""
    binding = _full_binding(shared, vehicle)
    activities: list[TimedActivity] = []
    for maneuver in ESCALATION_LADDER:

        def predicate(g, maneuver=maneuver) -> bool:
            return g[f"sm_{maneuver.name}"] == 1 and g["KO"] == 0

        def rate_fn(g, maneuver=maneuver) -> float:
            occ1, occ2 = _occupancies(g)
            own = occ1 if _own_platoon(g) == 1 else occ2
            return params.maneuver_rate(maneuver, max(own, 1.0))

        def success_prob(g, maneuver=maneuver) -> float:
            occ1, occ2 = _occupancies(g)
            if _own_platoon(g) == 1:
                occ_own, occ_nb = occ1, occ2
            else:
                occ_own, occ_nb = occ2, occ1
            return params.success_probability(
                maneuver, max(occ_own, 1.0), occ_nb, _busy_fraction(g)
            )

        def failure_prob(g, maneuver=maneuver) -> float:
            return 1.0 - success_prob(g, maneuver=maneuver)

        def exit_highway(g, maneuver=maneuver) -> None:
            # v_OK (safe exit) — and also v_KO after a failed AS: either
            # way the vehicle leaves the platoons; the paper recycles it
            # through back_to / OUT so a new vehicle may enter.
            own = _own_platoon(g)
            _deactivate(g, shared, maneuver, own)
            g[f"p{own}"] = 0
            g.dec(f"occ{own}")
            g["out"] = 1

        def escalate(g, maneuver=maneuver) -> None:
            own = _own_platoon(g)
            _deactivate(g, shared, maneuver, own)
            follow_up = next_on_failure(maneuver)
            granted = _grant(g, params, follow_up, own)
            _activate(g, shared, granted, own)

        gate_in = InputGate(f"IG_{maneuver.name}", binding, predicate)
        success_gate = OutputGate(f"OG_{maneuver.name}_ok", binding, exit_highway)
        if next_on_failure(maneuver) is None:
            # AS: failure expels the vehicle (v_KO) — same marking effect
            failure_gate = OutputGate(
                f"OG_{maneuver.name}_ko", binding, exit_highway
            )
        else:
            failure_gate = OutputGate(
                f"OG_{maneuver.name}_esc", binding, escalate
            )
        activities.append(
            TimedActivity(
                f"maneuver_{maneuver.name}",
                rate=MarkingFunction(binding, rate_fn),
                input_gates=[gate_in],
                cases=[
                    Case(
                        MarkingFunction(binding, success_prob),
                        [success_gate],
                        label="success",
                    ),
                    Case(
                        MarkingFunction(binding, failure_prob),
                        [failure_gate],
                        label="failure",
                    ),
                ],
            )
        )
    return activities
