"""Model parameters (paper §4.1) and the derived rate/probability laws.

The dataclass :class:`AHSParameters` gathers every knob of the study, with
defaults matching the paper's numerical section:

* base failure rate λ = 1e-5/hr, mode rates λ·(1,2,2,2,3,4);
* maneuver execution rates within 15–30/hr (2–4 min durations);
* join rate 12/hr, leave rate 4/hr (per platoon), platoon-change rate
  6/hr (per platoon), platoon-2 exit transit of mean 3.5 min through
  platoon 1;
* up to ``n`` vehicles per platoon, two platoons, closed population 2n;
* coordination strategy DD.

Quantities the paper does not publish (maneuver success probabilities and
cooperation reliabilities) are explicit parameters with documented
defaults; DESIGN.md explains how they were fixed and the ablation bench
sweeps them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.coordination import Strategy, assistants
from repro.core.failure_modes import FAILURE_MODES, FailureMode
from repro.core.maneuvers import DEFAULT_MANEUVER_RATES, Maneuver

__all__ = ["AHSParameters"]


def _default_maneuver_rates() -> dict[Maneuver, float]:
    return dict(DEFAULT_MANEUVER_RATES)


def _default_success_probabilities() -> dict[Maneuver, float]:
    # Nominal (no-assistant, idle-traffic) success probabilities.  More
    # drastic maneuvers are less likely to succeed; AS failing means v_KO.
    return {
        Maneuver.TIE_N: 0.99,
        Maneuver.TIE: 0.98,
        Maneuver.TIE_E: 0.97,
        Maneuver.GS: 0.985,
        Maneuver.CS: 0.96,
        Maneuver.AS: 0.94,
    }


@dataclass(frozen=True)
class AHSParameters:
    """Full parameterisation of the two-lane AHS safety model."""

    #: maximum number of vehicles per platoon (the paper's n)
    max_platoon_size: int = 10
    #: smallest failure-mode rate λ (1/hr)
    base_failure_rate: float = 1e-5
    #: λᵢ/λ multipliers in FM1..FM6 order (paper §4.1)
    rate_multipliers: tuple[int, ...] = (1, 2, 2, 2, 3, 4)
    #: maneuver execution rates μ (1/hr), paper band [15, 30]
    maneuver_rates: dict[Maneuver, float] = field(
        default_factory=_default_maneuver_rates
    )
    #: highway entry rate (1/hr); entrants pick a platoon 50/50
    join_rate: float = 12.0
    #: voluntary leave rate per platoon (1/hr)
    leave_rate: float = 4.0
    #: platoon-change rate per platoon (1/hr), paper: 6/hr
    change_rate: float = 6.0
    #: rate of the platoon-2 → exit transit through platoon 1 (1/hr);
    #: the paper prescribes 3–4 minutes, so mean 3.5 min → 60/3.5
    transit_rate: float = 60.0 / 3.5
    #: coordination strategy (Table 3)
    strategy: Strategy = Strategy.DD
    #: nominal success probability q_m of each maneuver
    success_probabilities: dict[Maneuver, float] = field(
        default_factory=_default_success_probabilities
    )
    #: per-assistant cooperation reliability α (each involved vehicle
    #: cooperates correctly with this probability)
    assistant_reliability: float = 0.95
    #: residual cooperation γ of an assistant that is itself mid-maneuver
    busy_assistant_factor: float = 0.5
    #: relative slow-down of maneuvers per extra platoon member beyond 2
    #: (splits/merges take longer in long platoons; calibrated against the
    #: kinematic substrate in repro.agents)
    duration_scaling: float = 0.1
    #: fraction of the platoon behind the faulty vehicle dragged into
    #: gap-opening maneuvers (see repro.core.coordination.assistants)
    rear_propagation: float = 0.25
    #: probability an entering vehicle joins platoon 1 (paper: 50 %)
    platoon1_join_probability: float = 0.5
    #: cap on simultaneously tracked transit vehicles in the lumped models
    max_transit: int = 2

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.max_platoon_size < 1:
            raise ValueError(f"max_platoon_size must be >= 1, got {self.max_platoon_size}")
        if self.base_failure_rate <= 0:
            raise ValueError(f"base_failure_rate must be > 0, got {self.base_failure_rate}")
        if len(self.rate_multipliers) != len(FAILURE_MODES):
            raise ValueError(
                f"need {len(FAILURE_MODES)} rate multipliers, got "
                f"{len(self.rate_multipliers)}"
            )
        if any(m <= 0 for m in self.rate_multipliers):
            raise ValueError(f"rate multipliers must be > 0, got {self.rate_multipliers}")
        for maneuver in Maneuver:
            rate = self.maneuver_rates.get(maneuver)
            if rate is None or rate <= 0:
                raise ValueError(f"missing or non-positive rate for {maneuver}")
            q = self.success_probabilities.get(maneuver)
            if q is None or not 0.0 < q <= 1.0:
                raise ValueError(f"success probability for {maneuver} must be in (0,1]")
        for rate_name in ("join_rate", "leave_rate", "change_rate", "transit_rate"):
            if getattr(self, rate_name) < 0:
                raise ValueError(f"{rate_name} must be >= 0")
        if not 0.0 < self.assistant_reliability <= 1.0:
            raise ValueError("assistant_reliability must be in (0,1]")
        if not 0.0 <= self.busy_assistant_factor <= 1.0:
            raise ValueError("busy_assistant_factor must be in [0,1]")
        if self.duration_scaling < 0.0:
            raise ValueError("duration_scaling must be >= 0")
        if not 0.0 <= self.rear_propagation <= 1.0:
            raise ValueError("rear_propagation must be in [0,1]")
        if not 0.0 <= self.platoon1_join_probability <= 1.0:
            raise ValueError("platoon1_join_probability must be in [0,1]")
        if self.max_transit < 0:
            raise ValueError("max_transit must be >= 0")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def total_vehicles(self) -> int:
        """Closed vehicle population: 2n (the paper's 2n replicas)."""
        return 2 * self.max_platoon_size

    @property
    def load(self) -> float:
        """System load ρ = join_rate / leave_rate (paper §4.3)."""
        if self.leave_rate == 0:
            return math.inf
        return self.join_rate / self.leave_rate

    def failure_mode_rate(self, failure_mode: FailureMode) -> float:
        """Absolute rate λᵢ of one failure mode (1/hr)."""
        return self.rate_multipliers[failure_mode.index] * self.base_failure_rate

    def failure_mode_rates(self) -> dict[str, float]:
        """All six λᵢ keyed by FM id."""
        return {fm.fm_id: self.failure_mode_rate(fm) for fm in FAILURE_MODES}

    def total_failure_rate(self) -> float:
        """Per-vehicle total failure intensity Σλᵢ."""
        return self.base_failure_rate * sum(self.rate_multipliers)

    def maneuver_rate(self, maneuver: Maneuver, occupancy_own: float) -> float:
        """Execution rate μ_m adjusted for the platoon length.

        Longer platoons take longer to open gaps for splits and escorted
        exits: ``μ_eff = μ / (1 + duration_scaling · max(occ − 2, 0))``.
        """
        base = self.maneuver_rates[maneuver]
        crowd = max(occupancy_own - 2.0, 0.0)
        return base / (1.0 + self.duration_scaling * crowd)

    def success_probability(
        self,
        maneuver: Maneuver,
        occupancy_own: float,
        occupancy_neighbor: float,
        busy_fraction: float,
    ) -> float:
        """Probability that a maneuver execution succeeds.

        ``q_m · (α · (1 − (1−γ)·busy))^k`` with *k* the number of assisting
        vehicles under the current strategy (DESIGN.md §2): each assistant
        must cooperate (reliability α), and an assistant that is itself
        running a maneuver only helps with residual effectiveness γ.

        Parameters
        ----------
        maneuver:
            The executing maneuver.
        occupancy_own / occupancy_neighbor:
            Platoon occupancies seen by the faulty vehicle.
        busy_fraction:
            Fraction of potential assistants currently mid-maneuver, in
            [0, 1].
        """
        if not 0.0 <= busy_fraction <= 1.0:
            raise ValueError(f"busy_fraction must be in [0,1], got {busy_fraction}")
        k = assistants(
            maneuver,
            self.strategy,
            max(occupancy_own, 1.0),
            occupancy_neighbor,
            rear_propagation=self.rear_propagation,
        )
        per_assistant = self.assistant_reliability * (
            1.0 - (1.0 - self.busy_assistant_factor) * busy_fraction
        )
        q = self.success_probabilities[maneuver]
        return q * per_assistant**k

    # ------------------------------------------------------------------
    def with_changes(self, **changes) -> "AHSParameters":
        """A copy with the given fields replaced (dataclasses.replace)."""
        return replace(self, **changes)

    def summary(self) -> dict[str, object]:
        """Flat description for experiment reports."""
        return {
            "n": self.max_platoon_size,
            "lambda": self.base_failure_rate,
            "join_rate": self.join_rate,
            "leave_rate": self.leave_rate,
            "change_rate": self.change_rate,
            "strategy": self.strategy.value,
            "load": self.load,
        }
