"""Fast numerical evaluation of the AHS unsafety S(t).

The full composed SAN (2n vehicle replicas × dynamicity × severity) has a
state space far too large for exact generation, and plain Monte-Carlo
cannot see probabilities of 1e-13 (the paper's λ=1e-7 case).  This module
exploits the model's *near-complete decomposability* (Courtois): vehicle
movement (join/leave/change/transit, rates of order 1–30/hr) is many orders
of magnitude faster than failures (order 1e-5/hr), and is unaffected by
them except for O(λ) perturbations.  Therefore:

1. The **occupancy process** — states ``(occ1, occ2, transit)`` — is solved
   exactly for its stationary law (a few hundred states).
2. The **failure process** — states = multisets of active maneuvers per
   platoon, truncated at ``max_concurrent`` — is built as a CTMC whose
   rates use the expected occupancies, with request escalation, failure
   escalation, severity accounting, and catastrophic detection exactly as
   specified in DESIGN.md.  Catastrophic successors collapse into the
   absorbing ``KO`` state; states beyond the truncation collapse into
   ``TRUNCATED``, whose transient probability bounds the truncation error.
3. ``S(t) = P(KO at t)`` by uniformization.

The same per-vehicle semantics drive the full SAN simulation model
(:mod:`repro.core.composed`); agreement between the two engines at high λ is
checked by the integration tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import sparse

from repro.core.coordination import scope_is_global
from repro.core.failure_modes import FAILURE_MODES
from repro.core.maneuvers import (
    ESCALATION_LADDER,
    Maneuver,
    escalate_request,
    maneuver_for_failure_mode,
    next_on_failure,
)
from repro.core.parameters import AHSParameters
from repro.core.severity import SeverityCounts, catastrophic_situation
from repro.ctmc import CTMC, stationary_distribution, transient_distribution

__all__ = ["OccupancyChain", "FailureLevelChain", "AnalyticalEngine", "AnalyticalResult"]

#: canonical maneuver order used in failure-level state vectors
MANEUVER_ORDER: tuple[Maneuver, ...] = ESCALATION_LADDER


# ----------------------------------------------------------------------
# occupancy layer
# ----------------------------------------------------------------------
class OccupancyChain:
    """Exact CTMC of the vehicle-movement (Dynamicity) process.

    States are ``(occ1, occ2, transit)``: members of each platoon and
    vehicles from platoon 2 transiting through platoon 1 on their way out
    (paper §4.1: 3–4 minutes in platoon 1 before exiting).  The population
    is closed at 2n; vehicles outside the highway re-enter individually at
    the join rate (see DESIGN.md on the Join reading).
    """

    def __init__(self, params: AHSParameters) -> None:
        self.params = params
        self.states: list[tuple[int, int, int]] = []
        self.index: dict[tuple[int, int, int], int] = {}
        self._build()

    # ------------------------------------------------------------------
    def _transitions(
        self, state: tuple[int, int, int]
    ) -> list[tuple[tuple[int, int, int], float]]:
        occ1, occ2, tr = state
        p = self.params
        n = p.max_platoon_size
        out = p.total_vehicles - occ1 - occ2 - tr
        moves: list[tuple[tuple[int, int, int], float]] = []

        # joins: each of the `out` vehicles re-enters at join_rate and
        # picks a platoon (50/50 by default); a full platoon refuses.
        if out > 0 and p.join_rate > 0:
            inflow = p.join_rate * out
            if occ1 + tr < n and p.platoon1_join_probability > 0:
                moves.append(
                    ((occ1 + 1, occ2, tr), inflow * p.platoon1_join_probability)
                )
            if occ2 < n and p.platoon1_join_probability < 1:
                moves.append(
                    ((occ1, occ2 + 1, tr), inflow * (1 - p.platoon1_join_probability))
                )
        # voluntary leaves (one per-platoon activity each, paper Fig. 7)
        if occ1 > 0 and p.leave_rate > 0:
            moves.append(((occ1 - 1, occ2, tr), p.leave_rate))
        # platoon-2 exits transit through platoon 1 (needs a slot there)
        if (
            occ2 > 0
            and p.leave_rate > 0
            and tr < p.max_transit
            and occ1 + tr < n
        ):
            moves.append(((occ1, occ2 - 1, tr + 1), p.leave_rate))
        # transit completion: each transiting vehicle exits independently
        if tr > 0 and p.transit_rate > 0:
            moves.append(((occ1, occ2, tr - 1), p.transit_rate * tr))
        # platoon changes (per-platoon activities ch1 / ch2)
        if occ1 > 0 and occ2 < n and p.change_rate > 0:
            moves.append(((occ1 - 1, occ2 + 1, tr), p.change_rate))
        if occ2 > 0 and occ1 + tr < n and p.change_rate > 0:
            moves.append(((occ1 + 1, occ2 - 1, tr), p.change_rate))
        return moves

    def _build(self) -> None:
        n = self.params.max_platoon_size
        initial = (n, n, 0)
        self.states = [initial]
        self.index = {initial: 0}
        frontier = [initial]
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        while frontier:
            state = frontier.pop()
            source = self.index[state]
            for successor, rate in self._transitions(state):
                target = self.index.get(successor)
                if target is None:
                    target = len(self.states)
                    self.states.append(successor)
                    self.index[successor] = target
                    frontier.append(successor)
                rows.append(source)
                cols.append(target)
                vals.append(rate)
        size = len(self.states)
        matrix = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(size, size)
        ).tocsr()
        matrix.sum_duplicates()
        out_rates = np.asarray(matrix.sum(axis=1)).ravel()
        generator = (matrix - sparse.diags(out_rates)).tocsr()
        p0 = np.zeros(size)
        p0[0] = 1.0
        self.chain = CTMC(generator, p0)

    # ------------------------------------------------------------------
    def stationary(self) -> np.ndarray:
        """Stationary law of the occupancy process."""
        if self.chain.n_states == 1:
            return np.ones(1)
        return stationary_distribution(self.chain)

    def expected_occupancies(self) -> tuple[float, float, float]:
        """Stationary expectations ``(E[occ1], E[occ2], E[transit])``."""
        pi = self.stationary()
        occ1 = sum(p * s[0] for p, s in zip(pi, self.states))
        occ2 = sum(p * s[1] for p, s in zip(pi, self.states))
        tr = sum(p * s[2] for p, s in zip(pi, self.states))
        return float(occ1), float(occ2), float(tr)


# ----------------------------------------------------------------------
# failure layer
# ----------------------------------------------------------------------
#: frozen failure-level state: counts of active maneuvers, indexed
#: [maneuver][platoon]; plus the two sink ids below.
_KO = "KO"
_TRUNC = "TRUNC"


def _severity_of(state: tuple[tuple[int, ...], tuple[int, ...]]) -> SeverityCounts:
    a = b = c = 0
    for m_index, maneuver in enumerate(MANEUVER_ORDER):
        count = state[0][m_index] + state[1][m_index]
        letter = maneuver.severity.letter
        if letter == "A":
            a += count
        elif letter == "B":
            b += count
        else:
            c += count
    return SeverityCounts(a, b, c)


def _active_total(state) -> int:
    return sum(state[0]) + sum(state[1])


def _with_delta(state, platoon: int, m_index: int, delta: int):
    vec = list(state[platoon])
    vec[m_index] += delta
    if vec[m_index] < 0:
        raise ValueError("negative maneuver count")
    if platoon == 0:
        return (tuple(vec), state[1])
    return (state[0], tuple(vec))


class FailureLevelChain:
    """CTMC of active recovery maneuvers, conditioned on mean occupancies.

    Parameters
    ----------
    params:
        Model parameters.
    occupancies:
        ``(E[occ1], E[occ2])`` from the occupancy layer.
    max_concurrent:
        Truncation level K: states track at most K simultaneously active
        maneuvers.  K = 4 makes every catastrophic situation of Table 2
        exactly representable (ST3 needs four failures); overflow routes
        to the TRUNCATED sink whose probability bounds the error.
    """

    def __init__(
        self,
        params: AHSParameters,
        occupancies: tuple[float, float],
        max_concurrent: int = 4,
    ) -> None:
        if max_concurrent < 2:
            raise ValueError("max_concurrent must be >= 2 (ST1 needs two failures)")
        self.params = params
        self.occupancies = occupancies
        self.max_concurrent = max_concurrent
        self.states: list = []
        self.index: dict = {}
        self.ko_index: Optional[int] = None
        self.trunc_index: Optional[int] = None
        self._build()

    # ------------------------------------------------------------------
    def _scope_maneuvers(self, state, platoon: int) -> list[Maneuver]:
        """Active maneuvers a new request in ``platoon`` must defer to."""
        platoons = (0, 1) if scope_is_global(self.params.strategy) else (platoon,)
        active: list[Maneuver] = []
        for p in platoons:
            for m_index, maneuver in enumerate(MANEUVER_ORDER):
                active.extend([maneuver] * state[p][m_index])
        return active

    def _busy_fraction(self, state) -> float:
        occ_total = self.occupancies[0] + self.occupancies[1]
        active = _active_total(state)
        if occ_total <= 1.0:
            return 1.0 if active > 0 else 0.0
        return min(max((active) / (occ_total - 1.0), 0.0), 1.0)

    def _transitions(self, state) -> list[tuple[object, float]]:
        params = self.params
        occ = self.occupancies
        moves: list[tuple[object, float]] = []

        # --- new failure-mode occurrences --------------------------------
        for platoon in (0, 1):
            active_here = sum(state[platoon])
            exposed = max(occ[platoon] - active_here, 0.0)
            if exposed <= 0.0:
                continue
            scope = self._scope_maneuvers(state, platoon)
            for fm in FAILURE_MODES:
                rate = params.failure_mode_rate(fm) * exposed
                requested = maneuver_for_failure_mode(fm)
                granted = escalate_request(requested, scope)
                successor = self._after_activation(state, platoon, granted)
                moves.append((successor, rate))

        # --- maneuver completions ----------------------------------------
        busy = self._busy_fraction(state)
        for platoon in (0, 1):
            occ_own = max(occ[platoon], 1.0)
            occ_nb = occ[1 - platoon]
            for m_index, maneuver in enumerate(MANEUVER_ORDER):
                count = state[platoon][m_index]
                if count == 0:
                    continue
                rate = count * params.maneuver_rate(maneuver, occ_own)
                p_success = params.success_probability(
                    maneuver, occ_own, occ_nb, busy
                )
                # success: the vehicle exits; its active failure clears
                cleared = _with_delta(state, platoon, m_index, -1)
                moves.append((cleared, rate * p_success))
                # failure: escalate along the ladder (or expel at v_KO)
                follow_up = next_on_failure(maneuver)
                if follow_up is None:
                    # AS failed: vehicle becomes a free agent (expelled);
                    # its failure no longer threatens the platoons
                    moves.append((cleared, rate * (1.0 - p_success)))
                else:
                    scope = [
                        m
                        for m in self._scope_maneuvers(cleared, platoon)
                    ]
                    granted = escalate_request(follow_up, scope)
                    escalated = self._after_activation(cleared, platoon, granted)
                    moves.append((escalated, rate * (1.0 - p_success)))
        return moves

    def _after_activation(self, state, platoon: int, maneuver: Maneuver):
        """Successor after a maneuver becomes active (KO/TRUNC aware)."""
        m_index = MANEUVER_ORDER.index(maneuver)
        successor = _with_delta(state, platoon, m_index, +1)
        if catastrophic_situation(_severity_of(successor)) is not None:
            return _KO
        if _active_total(successor) > self.max_concurrent:
            return _TRUNC
        return successor

    def _build(self) -> None:
        empty = ((0,) * len(MANEUVER_ORDER), (0,) * len(MANEUVER_ORDER))
        self.states = [empty]
        self.index = {empty: 0}
        frontier = [empty]
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []

        def intern(label) -> int:
            existing = self.index.get(label)
            if existing is not None:
                return existing
            new_id = len(self.states)
            self.states.append(label)
            self.index[label] = new_id
            if label == _KO:
                self.ko_index = new_id
            elif label == _TRUNC:
                self.trunc_index = new_id
            else:
                frontier.append(label)
            return new_id

        while frontier:
            state = frontier.pop()
            source = self.index[state]
            for successor, rate in self._transitions(state):
                if rate <= 0.0:
                    continue
                target = intern(successor)
                if target == source:
                    continue
                rows.append(source)
                cols.append(target)
                vals.append(rate)

        size = len(self.states)
        matrix = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(size, size)
        ).tocsr()
        matrix.sum_duplicates()
        out_rates = np.asarray(matrix.sum(axis=1)).ravel()
        generator = (matrix - sparse.diags(out_rates)).tocsr()
        p0 = np.zeros(size)
        p0[0] = 1.0
        self.chain = CTMC(generator, p0)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
@dataclass
class AnalyticalResult:
    """Unsafety curve with its truncation-error bound."""

    times: np.ndarray
    unsafety: np.ndarray
    truncation_error: np.ndarray
    occupancies: tuple[float, float, float]
    n_states: int

    def value_at(self, time: float) -> float:
        """S(t) at an exact requested time point."""
        matches = np.flatnonzero(np.isclose(self.times, time))
        if matches.size == 0:
            raise KeyError(f"time {time} not computed; have {self.times}")
        return float(self.unsafety[matches[0]])


class AnalyticalEngine:
    """End-to-end numerical evaluation of S(t) for a parameter set."""

    def __init__(
        self, params: AHSParameters, max_concurrent: int = 4
    ) -> None:
        self.params = params
        self.occupancy = OccupancyChain(params)
        occ1, occ2, transit = self.occupancy.expected_occupancies()
        self._occupancies = (occ1, occ2, transit)
        # Transiting vehicles ride inside platoon 1 (paper §4.1: 3-4 min
        # there before exiting), so they are exposed to failures and count
        # as platoon-1 members for coordination purposes.
        self.failure_chain = FailureLevelChain(
            params, (occ1 + transit, occ2), max_concurrent
        )

    @property
    def expected_occupancies(self) -> tuple[float, float, float]:
        """Quasi-stationary ``(E[occ1], E[occ2], E[transit])``."""
        return self._occupancies

    def unsafety(self, times: Sequence[float]) -> AnalyticalResult:
        """Compute S(t) = P(KO by t) at the requested times."""
        times_arr = np.asarray(list(times), dtype=float)
        chain = self.failure_chain.chain
        distributions = transient_distribution(chain, times_arr)
        ko = self.failure_chain.ko_index
        trunc = self.failure_chain.trunc_index
        unsafety = (
            distributions[:, ko] if ko is not None else np.zeros(times_arr.size)
        )
        truncation = (
            distributions[:, trunc]
            if trunc is not None
            else np.zeros(times_arr.size)
        )
        return AnalyticalResult(
            times=times_arr,
            unsafety=np.asarray(unsafety, dtype=float),
            truncation_error=np.asarray(truncation, dtype=float),
            occupancies=self._occupancies,
            n_states=chain.n_states,
        )
