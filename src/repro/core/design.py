"""Design-space answers (paper §5, conclusion).

The paper closes by noting its models "provide some preliminary
indication about ... 1) the optimal size of platoons; 2) the maximum trip
duration; 3) the most suitable coordination strategy".  This module turns
those indications into direct queries against the analytical engine:

* :func:`max_platoon_size_for` — largest n meeting an unsafety budget;
* :func:`max_trip_duration` — longest trip meeting the budget;
* :func:`best_strategy` — the safest coordination strategy;
* :func:`design_frontier` — the (n, strategy) grid against a budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.analytical import AnalyticalEngine
from repro.core.coordination import Strategy
from repro.core.parameters import AHSParameters

__all__ = [
    "max_platoon_size_for",
    "max_trip_duration",
    "best_strategy",
    "design_frontier",
    "DesignPoint",
]


def _unsafety(params: AHSParameters, time: float) -> float:
    return AnalyticalEngine(params).unsafety([time]).unsafety[0]


def max_platoon_size_for(
    params: AHSParameters,
    unsafety_budget: float,
    trip_hours: float,
    n_max: int = 24,
) -> Optional[int]:
    """Largest platoon size whose S(trip) stays within the budget.

    Returns ``None`` when even a free-agent highway (n = 1) exceeds the
    budget.  Monotonicity of S in n (asserted by the test suite) makes a
    linear scan exact; the search starts small because the paper's own
    answer lives there ("the size of the platoons should not exceed 10").
    """
    if unsafety_budget <= 0.0:
        raise ValueError(f"budget must be > 0, got {unsafety_budget}")
    if trip_hours <= 0.0:
        raise ValueError(f"trip_hours must be > 0, got {trip_hours}")
    best: Optional[int] = None
    for n in range(1, n_max + 1):
        value = _unsafety(params.with_changes(max_platoon_size=n), trip_hours)
        if value <= unsafety_budget:
            best = n
        else:
            break
    return best


def max_trip_duration(
    params: AHSParameters,
    unsafety_budget: float,
    horizon_hours: float = 48.0,
    tolerance_hours: float = 0.05,
) -> Optional[float]:
    """Longest trip whose unsafety stays within the budget (bisection).

    Returns ``None`` when even an infinitesimal trip exceeds the budget,
    and ``horizon_hours`` when the budget is never exhausted within it.
    """
    if unsafety_budget <= 0.0:
        raise ValueError(f"budget must be > 0, got {unsafety_budget}")
    engine = AnalyticalEngine(params)

    def s(t: float) -> float:
        return engine.unsafety([t]).unsafety[0]

    low = tolerance_hours
    if s(low) > unsafety_budget:
        return None
    high = horizon_hours
    if s(high) <= unsafety_budget:
        return horizon_hours
    while high - low > tolerance_hours:
        mid = 0.5 * (low + high)
        if s(mid) <= unsafety_budget:
            low = mid
        else:
            high = mid
    return low


def best_strategy(
    params: AHSParameters, trip_hours: float
) -> tuple[Strategy, dict[Strategy, float]]:
    """The safest coordination strategy and the full comparison."""
    values = {
        strategy: _unsafety(
            params.with_changes(strategy=strategy), trip_hours
        )
        for strategy in Strategy
    }
    winner = min(values, key=values.get)
    return winner, values


@dataclass(frozen=True)
class DesignPoint:
    """One admissible/inadmissible configuration of the design grid."""

    n: int
    strategy: Strategy
    unsafety: float
    admissible: bool


def design_frontier(
    params: AHSParameters,
    unsafety_budget: float,
    trip_hours: float,
    sizes=range(4, 17, 2),
) -> list[DesignPoint]:
    """Evaluate the (n, strategy) grid against an unsafety budget."""
    if unsafety_budget <= 0.0:
        raise ValueError(f"budget must be > 0, got {unsafety_budget}")
    points = []
    for n in sizes:
        for strategy in Strategy:
            value = _unsafety(
                params.with_changes(max_platoon_size=n, strategy=strategy),
                trip_hours,
            )
            points.append(
                DesignPoint(
                    n=int(n),
                    strategy=strategy,
                    unsafety=value,
                    admissible=value <= unsafety_budget,
                )
            )
    return points
