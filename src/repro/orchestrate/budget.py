"""Budget and cost vocabulary of the adaptive orchestrator.

A :class:`Budget` says when the orchestrator must stop *globally*: a
replication pool shared across every sweep point, a wall-clock allowance,
a uniform target relative-CI, or any combination.  A :class:`BudgetLedger`
tracks spending round by round and names the :data:`StopReason` that ended
the run.

Determinism contract: replication budgets, target CIs, round caps and
per-point caps are all functions of pooled chunk summaries, which are
bit-identical for any worker count — so the allocation sequence (and
therefore every pooled estimate) replays exactly for a fixed
``(seed, budget, policy)``.  The *wall-clock* budget is the one exception:
it is checked only between rounds and documented as best-effort, because
elapsed time is not reproducible across hosts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Budget", "BudgetLedger", "STOP_REASONS"]


#: every value :attr:`BudgetLedger.stop_reason` can take
STOP_REASONS = (
    "converged",
    "replications-exhausted",
    "wall-exhausted",
    "rounds-exhausted",
    "points-capped",
)


@dataclass(frozen=True)
class Budget:
    """Global stopping conditions for one orchestration.

    Attributes
    ----------
    replications:
        Total replication pool across all points (``None`` = uncapped).
    target_relative_ci:
        Uniform relative half-width target; points at or below it stop
        receiving work, and the run converges when every Monte-Carlo
        point is within target (``None`` = spend the whole pool).
    wall_seconds:
        Best-effort wall-clock allowance, checked between rounds only
        (not part of the determinism contract).
    confidence:
        CI level for the target and for the reported intervals.
    max_rounds:
        Hard cap on allocation rounds (a safety net against pathological
        never-converging points).
    max_replications_per_point:
        Per-point spending cap; a capped point is frozen at its current
        estimate and no longer scheduled.
    min_chunks_per_point:
        Warm-up floor: every Monte-Carlo point receives at least this
        many chunks (budget permitting) before adaptive ranking kicks in,
        so each point has a measured variance and cost.
    """

    replications: Optional[int] = None
    target_relative_ci: Optional[float] = None
    wall_seconds: Optional[float] = None
    confidence: float = 0.95
    max_rounds: int = 64
    max_replications_per_point: int = 200_000
    min_chunks_per_point: int = 1

    def __post_init__(self) -> None:
        if (
            self.replications is None
            and self.target_relative_ci is None
            and self.wall_seconds is None
        ):
            raise ValueError(
                "budget needs at least one of replications / "
                "target_relative_ci / wall_seconds"
            )
        if self.replications is not None and self.replications < 1:
            raise ValueError(
                f"replications must be >= 1, got {self.replications}"
            )
        if self.target_relative_ci is not None and not (
            0.0 < self.target_relative_ci
        ):
            raise ValueError(
                f"target_relative_ci must be > 0, got {self.target_relative_ci}"
            )
        if self.wall_seconds is not None and self.wall_seconds <= 0:
            raise ValueError(
                f"wall_seconds must be > 0, got {self.wall_seconds}"
            )
        if not (0.0 < self.confidence < 1.0):
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.max_replications_per_point < 1:
            raise ValueError("max_replications_per_point must be >= 1")
        if self.min_chunks_per_point < 0:
            raise ValueError("min_chunks_per_point must be >= 0")

    def to_dict(self) -> dict:
        """JSON-serialisable rendering for reports and cache tokens."""
        return {
            "replications": self.replications,
            "target_relative_ci": self.target_relative_ci,
            "wall_seconds": self.wall_seconds,
            "confidence": self.confidence,
            "max_rounds": self.max_rounds,
            "max_replications_per_point": self.max_replications_per_point,
            "min_chunks_per_point": self.min_chunks_per_point,
        }


@dataclass
class BudgetLedger:
    """Round-by-round spending record against one :class:`Budget`."""

    budget: Budget
    clock: Callable[[], float] = time.monotonic
    spent: int = 0
    rounds: int = 0
    per_point: dict[str, int] = field(default_factory=dict)
    stop_reason: Optional[str] = None
    _started: Optional[float] = field(default=None, repr=False)

    def start(self) -> None:
        self._started = self.clock()

    @property
    def elapsed_seconds(self) -> float:
        if self._started is None:
            return 0.0
        return max(self.clock() - self._started, 0.0)

    # ------------------------------------------------------------------
    def charge(self, point_id: str, replications: int) -> None:
        """Record ``replications`` spent on one point."""
        if replications < 0:
            raise ValueError(f"cannot charge {replications} replications")
        self.spent += replications
        self.per_point[point_id] = (
            self.per_point.get(point_id, 0) + replications
        )

    def note_round(self) -> None:
        self.rounds += 1

    # ------------------------------------------------------------------
    def remaining_replications(self) -> Optional[int]:
        """Global replications still spendable (``None`` = uncapped)."""
        if self.budget.replications is None:
            return None
        return max(self.budget.replications - self.spent, 0)

    def point_remaining(self, point_id: str) -> int:
        """Replications this point may still receive under its cap."""
        return max(
            self.budget.max_replications_per_point
            - self.per_point.get(point_id, 0),
            0,
        )

    def affordable(self, point_id: str, replications: int) -> bool:
        """Whether charging a point ``replications`` respects every cap."""
        if self.point_remaining(point_id) < replications:
            return False
        remaining = self.remaining_replications()
        return remaining is None or remaining >= replications

    # ------------------------------------------------------------------
    # stop checks (called between rounds)
    # ------------------------------------------------------------------
    def out_of_rounds(self) -> bool:
        return self.rounds >= self.budget.max_rounds

    def out_of_wall(self) -> bool:
        return (
            self.budget.wall_seconds is not None
            and self.elapsed_seconds >= self.budget.wall_seconds
        )

    def out_of_replications(self) -> bool:
        remaining = self.remaining_replications()
        return remaining is not None and remaining <= 0

    def stop(self, reason: str) -> None:
        """Freeze the run's stop reason (first reason wins)."""
        if reason not in STOP_REASONS:
            raise ValueError(
                f"unknown stop reason {reason!r}; expected one of {STOP_REASONS}"
            )
        if self.stop_reason is None:
            self.stop_reason = reason

    def to_dict(self) -> dict:
        return {
            "budget": self.budget.to_dict(),
            "spent": self.spent,
            "rounds": self.rounds,
            "elapsed_seconds": self.elapsed_seconds,
            "per_point": dict(sorted(self.per_point.items())),
            "stop_reason": self.stop_reason,
        }
