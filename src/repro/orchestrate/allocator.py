"""Round allocation policies: who gets the next chunks of replications.

The allocator sees only *pooled* facts about each sweep point —
replications so far, relative CI half-width, a per-replication cost
figure, and the surrogate prior.  Two cost proxies exist upstream
(``Orchestrator(cost_model=...)``): the default ``"events"`` proxy is the
pooled mean simulator-event count per replication — worker-invariant, so
for a fixed ``(seed, budget, policy)`` the chunk schedule and every pooled
estimate replay bit-identically at any worker count; the ``"wall"`` proxy
is measured busy worker-seconds per replication from telemetry, which
tracks real machine cost more faithfully but makes the *schedule* depend
on timing (pooled chunk summaries stay bit-identical either way — only
which point gets the next chunk can shift).  The allocator itself is
agnostic: it just ranks by whatever ``cost_per_replication`` it is handed.

Policies
--------
``greedy``
    Widest-predicted-relative-CI first.  Chunks are handed out one at a
    time; after a hypothetical award of ``q`` replications a point's
    predicted width shrinks by the ``sqrt(n/(n+q))`` law, so a single
    needy point does not monopolise the round.
``proportional``
    Each point's *need* is the replication shortfall implied by the
    ``n·((rel/target)² − 1)`` planning formula; the round's chunks are
    split proportionally to need (largest-remainder rounding).
``cost``
    Greedy on predicted CI shrink per simulated *event* rather than per
    replication — points whose replications are cheap (short trajectories,
    low event counts) win ties against expensive ones.
``flat``
    Equal chunks to every unconverged point, round after round — the
    non-adaptive baseline the benchmark compares against.

Points with no measurable width yet (zero successes, or fewer than two
replications) are served first in input order: they need data before any
score is meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.orchestrate.budget import BudgetLedger

__all__ = ["POLICIES", "PointProgress", "Allocator"]

#: selectable allocation policies
POLICIES = ("greedy", "proportional", "cost", "flat")


@dataclass(frozen=True)
class PointProgress:
    """Worker-invariant snapshot of one point, as the allocator sees it.

    ``relative_ci`` is ``None`` until the point has a finite, positive
    width (at least two replications and a non-zero mean).
    ``cost_per_replication`` is what one more replication of this point
    costs, in whichever unit the orchestrator's ``cost_model`` selected:
    pooled mean simulator events (``"events"``, deterministic) or measured
    busy worker-seconds (``"wall"``).  Units only need to be comparable
    across points, not absolute.
    """

    point_id: str
    order: int
    chunk_size: int
    n: int = 0
    relative_ci: Optional[float] = None
    cost_per_replication: float = 1.0
    prior_replications: Optional[int] = None
    eligible: bool = True

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.n < 0:
            raise ValueError(f"n must be >= 0, got {self.n}")


def _predicted_relative(relative: float, n: int, added: int) -> float:
    """Width after ``added`` more replications, by the 1/sqrt(n) law."""
    if added <= 0 or n <= 0:
        return relative
    return relative * math.sqrt(n / (n + added))


class Allocator:
    """Deterministic round scheduler over :class:`PointProgress` rows."""

    def __init__(self, policy: str = "greedy", round_chunks: int = 8) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose one of {POLICIES}"
            )
        if round_chunks < 1:
            raise ValueError(f"round_chunks must be >= 1, got {round_chunks}")
        self.policy = policy
        self.round_chunks = int(round_chunks)

    # ------------------------------------------------------------------
    def allocate(
        self,
        progress: Sequence[PointProgress],
        ledger: BudgetLedger,
    ) -> dict[str, int]:
        """Replications to award each point this round.

        Returns ``{point_id: replications}`` with every award respecting
        the ledger's global pool and per-point caps; an award is a whole
        number of that point's chunks except when the global pool clamps
        the final quantum.  Points appear in input order in the result.
        """
        active = [p for p in progress if p.eligible]
        if not active:
            return {}
        if self.policy == "flat":
            return self._flat(active, ledger)
        if self.policy == "proportional":
            return self._proportional(active, ledger)
        return self._score_greedy(active, ledger)

    # ------------------------------------------------------------------
    def _quantum(
        self,
        point: PointProgress,
        ledger: BudgetLedger,
        local: dict[str, int],
        local_total: int,
    ) -> int:
        """Largest affordable award for one more chunk of ``point``."""
        quantum = min(
            point.chunk_size,
            ledger.point_remaining(point.point_id) - local.get(point.point_id, 0),
        )
        remaining = ledger.remaining_replications()
        if remaining is not None:
            quantum = min(quantum, remaining - local_total)
        return max(quantum, 0)

    def _award(
        self,
        awards: dict[str, int],
        point: PointProgress,
        quantum: int,
    ) -> None:
        awards[point.point_id] = awards.get(point.point_id, 0) + quantum

    # ------------------------------------------------------------------
    def _flat(
        self, active: Sequence[PointProgress], ledger: BudgetLedger
    ) -> dict[str, int]:
        base, extra = divmod(self.round_chunks, len(active))
        awards: dict[str, int] = {}
        local_total = 0
        for position, point in enumerate(active):
            chunks = base + (1 if position < extra else 0)
            for _ in range(chunks):
                quantum = self._quantum(point, ledger, awards, local_total)
                if quantum <= 0:
                    break
                self._award(awards, point, quantum)
                local_total += quantum
        return {k: v for k, v in awards.items() if v > 0}

    # ------------------------------------------------------------------
    def _need(
        self, point: PointProgress, target: Optional[float]
    ) -> float:
        """Replication shortfall estimate used by ``proportional``."""
        if point.relative_ci is None:
            # no width yet: need at least one full chunk of data
            return float(
                point.prior_replications
                if point.prior_replications is not None
                else point.chunk_size * self.round_chunks
            )
        if target is None or target <= 0.0:
            # no uniform target: rank by width alone
            return point.relative_ci * max(point.n, 1)
        if point.relative_ci <= target:
            return 0.0
        ratio = point.relative_ci / target
        return max(point.n, 1) * (ratio * ratio - 1.0)

    def _proportional(
        self, active: Sequence[PointProgress], ledger: BudgetLedger
    ) -> dict[str, int]:
        target = ledger.budget.target_relative_ci
        needs = [self._need(p, target) for p in active]
        total_need = sum(needs)
        if total_need <= 0.0:
            return {}
        shares = [self.round_chunks * need / total_need for need in needs]
        chunks = [int(math.floor(share)) for share in shares]
        # largest-remainder rounding; ties broken by input order
        leftover = self.round_chunks - sum(chunks)
        remainders = sorted(
            range(len(active)),
            key=lambda i: (-(shares[i] - chunks[i]), active[i].order),
        )
        for i in remainders[: max(leftover, 0)]:
            if needs[i] > 0.0:
                chunks[i] += 1
        awards: dict[str, int] = {}
        local_total = 0
        for point, n_chunks in zip(active, chunks):
            for _ in range(n_chunks):
                quantum = self._quantum(point, ledger, awards, local_total)
                if quantum <= 0:
                    break
                self._award(awards, point, quantum)
                local_total += quantum
        return {k: v for k, v in awards.items() if v > 0}

    # ------------------------------------------------------------------
    def _score_greedy(
        self, active: Sequence[PointProgress], ledger: BudgetLedger
    ) -> dict[str, int]:
        """One-chunk-at-a-time awards for ``greedy`` and ``cost``."""
        awards: dict[str, int] = {}
        local_total = 0
        # working copies of each point's predicted width
        width: dict[str, Optional[float]] = {
            p.point_id: p.relative_ci for p in active
        }
        added: dict[str, int] = {p.point_id: 0 for p in active}
        unknown_cursor = 0

        for _ in range(self.round_chunks):
            # data-starved points first, round-robin in input order
            unknown = [p for p in active if width[p.point_id] is None]
            point = None
            if unknown:
                for offset in range(len(unknown)):
                    candidate = unknown[(unknown_cursor + offset) % len(unknown)]
                    if self._quantum(candidate, ledger, awards, local_total) > 0:
                        point = candidate
                        unknown_cursor = (
                            unknown.index(candidate) + 1
                        ) % len(unknown)
                        break
            if point is None:
                best_score = 0.0
                for candidate in sorted(active, key=lambda p: p.order):
                    rel = width[candidate.point_id]
                    if rel is None or rel <= 0.0:
                        continue
                    quantum = self._quantum(
                        candidate, ledger, awards, local_total
                    )
                    if quantum <= 0:
                        continue
                    n_now = candidate.n + added[candidate.point_id]
                    shrink = rel - _predicted_relative(rel, n_now, quantum)
                    if self.policy == "cost":
                        cost = max(
                            candidate.cost_per_replication * quantum, 1e-12
                        )
                        score = shrink / cost
                    else:
                        score = rel
                    # strict > keeps the earliest point on ties
                    if score > best_score:
                        best_score = score
                        point = candidate
                if point is None:
                    break
            quantum = self._quantum(point, ledger, awards, local_total)
            if quantum <= 0:
                break
            self._award(awards, point, quantum)
            local_total += quantum
            added[point.point_id] += quantum
            rel = width[point.point_id]
            if rel is not None:
                width[point.point_id] = _predicted_relative(
                    rel, point.n + added[point.point_id] - quantum, quantum
                )
        return {k: v for k, v in awards.items() if v > 0}
