"""The adaptive round loop: budgeted replication allocation across sweeps.

:class:`Orchestrator` turns a set of :class:`~repro.orchestrate.surrogate.
SweepPoint` definitions plus one global :class:`~repro.orchestrate.budget.
Budget` into a round-based schedule on an existing
:class:`~repro.runtime.ParallelRunner`:

1. **Warm start** — every point is priced by the cheap engines
   (:func:`~repro.orchestrate.surrogate.warm_start`); rarity picks each
   point's estimator, and points below Monte-Carlo resolution are served
   analytically for zero replications.
2. **Warm-up round** — each Monte-Carlo point receives
   ``budget.min_chunks_per_point`` chunks so it has a measured width and
   cost before any ranking happens.
3. **Adaptive rounds** — the :class:`~repro.orchestrate.allocator.
   Allocator` awards chunks (widest-CI-first, proportional-to-need,
   shrink-per-cost, or flat), the runner executes them through the same
   fault-tolerant chunk machinery as plain runs, summaries merge in chunk
   order, and the ledger decides whether to stop.

Determinism contract (the property the tier-1 suite pins): for a fixed
``(points, seed, budget, policy)`` the pooled per-point estimates are
bit-identical for **any worker count** and across **interrupted-and-
resumed** runs (with a chunk-caching runner).  Everything an allocation
decision reads — pooled widths, replication counts, event-count cost
proxies — is itself worker-invariant, and every point's replication ``i``
draws from a seed derived only from ``(seed, point index, i)``.  The one
escape hatch is ``budget.wall_seconds``, which is checked between rounds
and documented as best-effort.

Each point's replication indices stay contiguous and chunk-aligned: an
award is a whole number of chunks except when a cap clamps it, and a
clamped point never receives another award — so chunk identities (and the
chunk-level cache keys behind resume) never shift.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field as dataclass_field
from typing import Optional, Sequence

import numpy as np

from repro.obs.events import (
    BudgetStopped,
    ChunkCompleted,
    EventBus,
    RoundAllocated,
    RunFinished,
    RunStarted,
    TensorFallback,
)
from repro.orchestrate.allocator import Allocator, PointProgress
from repro.orchestrate.budget import Budget, BudgetLedger
from repro.orchestrate.report import (
    OrchestrationReport,
    PointReport,
    RoundRecord,
)
from repro.orchestrate.surrogate import (
    EstimatorPolicy,
    SurrogatePrior,
    SweepPoint,
    warm_start,
)
from repro.runtime.merge import ChunkSummary, combine, pooled_intervals
from repro.runtime.plan import ReplicationPlan
from repro.runtime.pool import ParallelRunner
from repro.runtime.telemetry import TelemetryRecorder

__all__ = ["Orchestrator", "orchestrate", "point_seed", "DEFAULT_SEED"]

#: default experiment seed (the paper's DSN publication date)
DEFAULT_SEED = 20090608


def point_seed(seed: int, index: int) -> int:
    """Derived root entropy for one sweep point's replication plan.

    ``SeedSequence.generate_state`` *does* mix the spawn key (unlike the
    ``entropy`` attribute), so each point gets an independent 128-bit
    root that depends only on ``(seed, index)`` — never on allocation
    order or worker count.
    """
    root = np.random.SeedSequence(entropy=seed, spawn_key=(index,))
    return int.from_bytes(
        root.generate_state(4, np.uint32).tobytes(), "little"
    )


@dataclass
class _PointState:
    """Driver-internal bookkeeping for one sweep point."""

    point: SweepPoint
    index: int
    prior: SurrogatePrior
    estimator: str
    task: Optional[object]
    plan: Optional[ReplicationPlan]
    completed: dict[int, ChunkSummary] = dataclass_field(default_factory=dict)
    #: replications scheduled so far (always the contiguous prefix)
    done: int = 0
    relative_ci: Optional[float] = None
    converged: bool = False
    capped: bool = False

    @property
    def monte_carlo(self) -> bool:
        return self.task is not None

    def pooled(self) -> Optional[ChunkSummary]:
        if not self.completed:
            return None
        return combine(self.completed.values())

    def cost_per_replication(self) -> float:
        """Deterministic cost proxy: pooled simulator events / replication."""
        pooled = self.pooled()
        if pooled is not None and pooled.events > 0 and pooled.n > 0:
            return pooled.events / pooled.n
        weight = getattr(self.task, "cost_weight", None)
        return float(weight) if weight else 1.0

    def wall_cost_per_replication(
        self, point_seconds: dict
    ) -> Optional[float]:
        """Measured cost proxy: busy worker-seconds / replication.

        Uses the telemetry the runner accumulates per point (summed
        worker-side chunk seconds).  Returns ``None`` until the point
        has both timed chunks and scheduled replications — the caller
        falls back to the events proxy so warm-up rounds rank sanely.
        """
        seconds = point_seconds.get(self.point.point_id, 0.0)
        if seconds > 0.0 and self.done > 0:
            return seconds / self.done
        return None


class Orchestrator:
    """Budgeted, CI-driven replication allocation across sweep points.

    Parameters
    ----------
    points:
        The sweep to estimate; point order is part of the deterministic
        schedule (allocation ties break towards earlier points).
    budget:
        Global stopping conditions (see :class:`Budget`).
    runner:
        Chunk executor.  Give it a cache and ``chunk_cache=True`` to make
        interrupted runs resumable; the orchestrator works with any
        configuration.
    policy:
        Allocation policy name (see
        :data:`~repro.orchestrate.allocator.POLICIES`).
    estimator_policy:
        Rarity thresholds / overrides for per-point estimator selection.
    seed:
        Experiment seed; every point's plan entropy derives from it.
    round_chunks:
        Chunks awarded per adaptive round.  The default depends only on
        the number of points — never on the worker count, which would
        break schedule determinism.
    splitting_chunk_size:
        Chunk size for splitting points (one replication there is a full
        splitting pass, hundreds of trajectories, so chunks are small).
    engine:
        Jump-engine for the simulation-backed estimators.
    sweep_batch:
        When True, each round's chunk jobs are dispatched to the pool in
        point-contiguous groups (one pool task per group; see
        :meth:`~repro.runtime.pool.ParallelRunner.execute_jobs_grouped`)
        instead of one pool task per chunk.  Pure scheduling: every chunk
        still computes the identical summary, so reports and artifacts
        are byte-identical to the per-chunk path (wall-clock telemetry
        aside).  No effect with a single worker.
    tensorize:
        When True, each round's grouped chunk jobs additionally execute
        as **cross-point SoA tensors** — all eligible chunks of a group
        stack into one :class:`~repro.san.multipoint.MultiPointContext`
        step loop instead of one engine run per point.  Requires the
        stepped engine; with any other engine a ``UserWarning`` is
        issued and execution falls back to the ``sweep_batch``
        scheduling (never silently).  Implies grouped dispatch.  Like
        sweep batching, this is result-invariant: estimates, IS weights
        and draw order are bit-identical to per-point execution, so
        ``repro-estimates/1`` artifacts are byte-identical.
    cost_model:
        Cost proxy feeding the ``cost`` allocation policy:
        ``"events"`` (default) ranks points by pooled simulator events
        per replication — fully deterministic and worker-invariant;
        ``"wall"`` ranks by measured busy worker-seconds per replication
        from the runner's per-point telemetry (falling back to the
        events proxy until a point has timed chunks).  Wall cost tracks
        real per-replication expense better (slot layouts and engines
        differ in events/sec) but is **not** worker-invariant: the
        allocation *schedule* may vary run to run, although every
        scheduled chunk still computes the identical summary.
    events:
        Optional :class:`~repro.obs.events.EventBus`; when given, the
        round loop announces run lifecycle, round allocations, budget
        stops and chunk completions as ``repro-events/1`` envelopes, and
        the bus is lent to the runner for the duration of the run so
        chunk scheduling / retry / cache events flow into the same
        ledger.  Emission is pure bookkeeping: schedules, estimates and
        artifacts are byte-identical with the bus on or off.
    """

    def __init__(
        self,
        points: Sequence[SweepPoint],
        budget: Budget,
        runner: ParallelRunner,
        *,
        policy: str = "greedy",
        estimator_policy: Optional[EstimatorPolicy] = None,
        seed: int = DEFAULT_SEED,
        round_chunks: Optional[int] = None,
        splitting_chunk_size: int = 8,
        engine: str = "compiled",
        sweep_batch: bool = False,
        tensorize: bool = False,
        cost_model: str = "events",
        events: Optional[EventBus] = None,
    ) -> None:
        if not points:
            raise ValueError("need at least one sweep point")
        ids = [p.point_id for p in points]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate point ids in sweep: {ids}")
        if splitting_chunk_size < 1:
            raise ValueError("splitting_chunk_size must be >= 1")
        if cost_model not in ("events", "wall"):
            raise ValueError(
                f"unknown cost_model {cost_model!r}; choose 'events' or 'wall'"
            )
        self.points = list(points)
        self.budget = budget
        self.runner = runner
        self.seed = int(seed)
        self.engine = engine
        self.sweep_batch = bool(sweep_batch)
        self.cost_model = cost_model
        self.tensor_fallback: Optional[str] = None
        if tensorize and engine != "stepped":
            from repro.analysis.lowering import TENSOR_FALLBACK_RULE

            self.tensor_fallback = (
                f"--tensorize requires the stepped engine; engine "
                f"{engine!r} cannot lower the cross-point tensor loop — "
                f"falling back to per-point execution"
            )
            warnings.warn(
                f"[{TENSOR_FALLBACK_RULE}] {self.tensor_fallback}",
                UserWarning,
                stacklevel=2,
            )
            tensorize = False
        self.tensorize = bool(tensorize)
        self.estimator_policy = estimator_policy or EstimatorPolicy()
        self.splitting_chunk_size = int(splitting_chunk_size)
        self.events = events
        if round_chunks is None:
            round_chunks = max(8, 2 * len(points))
        self.allocator = Allocator(policy=policy, round_chunks=round_chunks)

    def _emit(self, event) -> None:
        if self.events is not None:
            self.events.emit(event)

    # ------------------------------------------------------------------
    # point setup
    # ------------------------------------------------------------------
    def _make_task(self, point: SweepPoint, estimator: str):
        from repro.core.partasks import (
            ImportanceSimulationTask,
            SplittingReplicationTask,
            UnsafetySimulationTask,
        )

        if estimator == "analytical":
            return None
        if estimator == "simulation":
            return UnsafetySimulationTask(
                params=point.params, times=point.times, engine=self.engine
            )
        if estimator == "importance":
            return ImportanceSimulationTask(
                params=point.params,
                times=point.times,
                engine=self.engine,
                boost=self.estimator_policy.boost,
            )
        if estimator == "splitting":
            return SplittingReplicationTask(
                params=point.params,
                times=point.times,
                engine=self.engine,
                trials_per_stage=self.estimator_policy.splitting_trials,
            )
        raise ValueError(f"unknown estimator {estimator!r}")

    def _build_states(self) -> list[_PointState]:
        priors = warm_start(
            self.points, self.estimator_policy, runner=self.runner
        )
        states: list[_PointState] = []
        for index, point in enumerate(self.points):
            prior = priors[point.point_id]
            task = self._make_task(point, prior.estimator)
            plan = None
            if task is not None:
                chunk_size = (
                    self.splitting_chunk_size
                    if prior.estimator == "splitting"
                    else self.runner.chunk_size
                )
                plan = ReplicationPlan(
                    point_seed(self.seed, index), chunk_size=chunk_size
                )
            states.append(
                _PointState(
                    point=point,
                    index=index,
                    prior=prior,
                    estimator=prior.estimator,
                    task=task,
                    plan=plan,
                    converged=task is None,
                )
            )
        return states

    # ------------------------------------------------------------------
    # round mechanics
    # ------------------------------------------------------------------
    def _execute_awards(
        self,
        states: list[_PointState],
        awards: dict[str, int],
        ledger: BudgetLedger,
        telemetry: TelemetryRecorder,
    ) -> None:
        """Run one round of awards through the runner's chunk machinery."""
        by_id = {state.point.point_id: state for state in states}
        all_jobs: dict = {}
        for state in states:  # deterministic: point order
            award = awards.get(state.point.point_id, 0)
            if award <= 0 or state.plan is None:
                continue
            specs = state.plan.chunks(state.done, award)
            jobs, cached = self.runner.chunk_jobs(
                state.task,
                state.plan,
                specs,
                telemetry,
                key_prefix=state.point.point_id,
            )
            for summary in cached:
                state.completed[summary.chunk_index] = summary
            all_jobs.update(jobs)
            state.done += award
            ledger.charge(state.point.point_id, award)
        # sweep batching changes only how jobs ride to the pool — every
        # chunk computes the identical summary either way.  ``all_jobs``
        # is built in point order above, so grouped dispatch slices it
        # into point-contiguous pool tasks; tensorized dispatch further
        # stacks each group's eligible chunks into one shared tensor.
        if self.tensorize:
            dispatched = self.runner.execute_jobs_grouped(
                all_jobs, telemetry, tensorize=True
            )
        elif self.sweep_batch:
            dispatched = self.runner.execute_jobs_grouped(all_jobs, telemetry)
        else:
            dispatched = self.runner.execute_jobs(all_jobs, telemetry)
        for key in sorted(dispatched, key=lambda k: (k[0], k[1])):
            point_id, chunk_index = key
            summary = dispatched[key]
            telemetry.record_chunk(
                summary.worker,
                summary.n,
                draws=summary.draws,
                busy_seconds=summary.elapsed_seconds,
                events=summary.events,
            )
            telemetry.record_point_seconds(point_id, summary.elapsed_seconds)
            self._emit(
                ChunkCompleted(
                    chunk_id=f"{point_id}/chunk-{chunk_index}",
                    n=summary.n,
                    worker=summary.worker,
                    elapsed_seconds=summary.elapsed_seconds,
                    events=summary.events,
                    draws=summary.draws,
                    point_id=point_id,
                )
            )
            by_id[point_id].completed[summary.chunk_index] = summary

    def _refresh(self, states: list[_PointState], ledger: BudgetLedger) -> None:
        """Recompute widths / convergence from pooled summaries only."""
        target = self.budget.target_relative_ci
        for state in states:
            if not state.monte_carlo:
                continue
            pooled = state.pooled()
            relative: Optional[float] = None
            if pooled is not None and pooled.n >= 2:
                intervals = pooled_intervals(pooled, self.budget.confidence)
                informative = [iv for iv in intervals if iv.mean > 0]
                if informative:
                    relative = max(
                        iv.relative_half_width for iv in informative
                    )
            state.relative_ci = relative
            if target is not None and relative is not None:
                state.converged = relative <= target
            state.capped = ledger.point_remaining(state.point.point_id) <= 0

    def _progress(
        self,
        states: list[_PointState],
        telemetry: Optional[TelemetryRecorder] = None,
    ) -> list[PointProgress]:
        target = self.budget.target_relative_ci
        point_seconds = (
            telemetry.point_seconds
            if self.cost_model == "wall" and telemetry is not None
            else None
        )
        rows: list[PointProgress] = []
        for state in states:
            if not state.monte_carlo:
                continue
            prior_n = (
                None
                if target is None
                else state.prior.predicted_replications(
                    target, self.budget.confidence
                )
            )
            cost = None
            if point_seconds is not None:
                cost = state.wall_cost_per_replication(point_seconds)
            if cost is None:
                cost = state.cost_per_replication()
            rows.append(
                PointProgress(
                    point_id=state.point.point_id,
                    order=state.index,
                    chunk_size=state.plan.chunk_size,
                    n=state.done,
                    relative_ci=state.relative_ci,
                    cost_per_replication=cost,
                    prior_replications=prior_n,
                    eligible=not (state.converged or state.capped),
                )
            )
        return rows

    def _round_record(
        self,
        index: int,
        awards: dict[str, int],
        states: list[_PointState],
        ledger: BudgetLedger,
    ) -> RoundRecord:
        widths = [
            state.relative_ci
            for state in states
            if state.monte_carlo
            and not state.converged
            and state.relative_ci is not None
        ]
        return RoundRecord(
            index=index,
            awards=dict(awards),
            widest_relative_ci=max(widths) if widths else None,
            converged_points=sum(1 for s in states if s.converged),
            spent=ledger.spent,
        )

    def _check_stop(
        self, states: list[_PointState], ledger: BudgetLedger
    ) -> bool:
        """Between-round stop checks, in deterministic priority order."""
        mc = [s for s in states if s.monte_carlo]
        if self.budget.target_relative_ci is not None and all(
            s.converged for s in mc
        ):
            ledger.stop("converged")
            return True
        if not any(not s.converged and not s.capped for s in mc):
            ledger.stop(
                "converged"
                if all(s.converged for s in mc)
                else "points-capped"
            )
            return True
        if ledger.out_of_replications():
            ledger.stop("replications-exhausted")
            return True
        if ledger.out_of_rounds():
            ledger.stop("rounds-exhausted")
            return True
        # wall-clock last: the only non-deterministic check, best-effort
        if ledger.out_of_wall():
            ledger.stop("wall-exhausted")
            return True
        return False

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self) -> OrchestrationReport:
        telemetry = TelemetryRecorder(
            self.runner.workers, unit="replications", engine=self.engine
        )
        telemetry.start()
        ledger = BudgetLedger(self.budget)
        ledger.start()
        states = self._build_states()
        rounds: list[RoundRecord] = []
        self._emit(
            RunStarted(
                kind="orchestrate",
                workers=self.runner.workers,
                unit="replications",
                engine=self.engine,
                max_total=self.budget.replications,
                detail={
                    "seed": self.seed,
                    "policy": self.allocator.policy,
                    "budget": self.budget.to_dict(),
                    "estimators": {
                        s.point.point_id: s.estimator for s in states
                    },
                },
            )
        )
        if self.tensor_fallback is not None:
            # the ledger twin of the construction-time UserWarning
            # (emitted here, not in __init__: a run's first event must
            # be RunStarted per the repro-events/1 sequence contract)
            from repro.analysis.lowering import TENSOR_FALLBACK_RULE

            self._emit(
                TensorFallback(
                    rule=TENSOR_FALLBACK_RULE,
                    reason=self.tensor_fallback,
                    engine=self.engine,
                )
            )
        # lend the bus to the runner for the duration of the run so chunk
        # scheduling / retry / failure / cache events land in this ledger
        lent_bus = self.events is not None and self.runner.events is None
        if lent_bus:
            self.runner.events = self.events

        try:
            # warm-up round: a fixed floor of chunks per Monte-Carlo point
            warmup: dict[str, int] = {}
            if self.budget.min_chunks_per_point > 0:
                planned = 0
                for state in states:
                    if not state.monte_carlo:
                        continue
                    want = (
                        self.budget.min_chunks_per_point
                        * state.plan.chunk_size
                    )
                    want = min(
                        want, ledger.point_remaining(state.point.point_id)
                    )
                    remaining = ledger.remaining_replications()
                    if remaining is not None:
                        want = min(want, remaining - planned)
                    if want > 0:
                        warmup[state.point.point_id] = want
                        planned += want
            if warmup:
                self._execute_awards(states, warmup, ledger, telemetry)
                ledger.note_round()
                self._refresh(states, ledger)
                rounds.append(self._round_record(0, warmup, states, ledger))
                self._emit_round(rounds[-1])

            while not self._check_stop(states, ledger):
                awards = self.allocator.allocate(
                    self._progress(states, telemetry), ledger
                )
                if not awards:
                    remaining = ledger.remaining_replications()
                    ledger.stop(
                        "replications-exhausted"
                        if remaining is not None and remaining <= 0
                        else "converged"
                    )
                    break
                self._execute_awards(states, awards, ledger, telemetry)
                ledger.note_round()
                self._refresh(states, ledger)
                rounds.append(
                    self._round_record(len(rounds), awards, states, ledger)
                )
                self._emit_round(rounds[-1])
        except Exception as exc:
            self._emit(
                RunFinished(
                    outcome="failed",
                    units=ledger.spent,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            raise
        finally:
            if lent_bus:
                self.runner.events = None

        if ledger.stop_reason is not None:
            self._emit(
                BudgetStopped(
                    reason=ledger.stop_reason,
                    spent=ledger.spent,
                    rounds=len(rounds),
                )
            )
        telemetry.finish()
        report = self._report(states, rounds, ledger, telemetry)
        self._emit(
            RunFinished(
                outcome="ok",
                units=ledger.spent,
                converged=report.all_converged,
                telemetry=report.telemetry,
            )
        )
        return report

    def _emit_round(self, record: RoundRecord) -> None:
        self._emit(
            RoundAllocated(
                round=record.index,
                awards=dict(record.awards),
                spent=record.spent,
                widest_relative_ci=record.widest_relative_ci,
                converged_points=record.converged_points,
            )
        )

    # ------------------------------------------------------------------
    def _report(
        self,
        states: list[_PointState],
        rounds: list[RoundRecord],
        ledger: BudgetLedger,
        telemetry: TelemetryRecorder,
    ) -> OrchestrationReport:
        reports: list[PointReport] = []
        for state in states:
            surrogate = state.prior.values()
            if not state.monte_carlo:
                reports.append(
                    PointReport(
                        point_id=state.point.point_id,
                        label=state.point.label,
                        estimator=state.estimator,
                        reason=state.prior.reason,
                        times=state.point.times,
                        values=tuple(float(v) for v in surrogate),
                        half_widths=None,
                        confidence=self.budget.confidence,
                        n_replications=0,
                        converged=True,
                        events=0,
                        surrogate=tuple(surrogate),
                    )
                )
                continue
            pooled = state.pooled()
            if pooled is None:
                # budget died before this point's first chunk: serve the
                # surrogate, clearly marked unconverged
                values = tuple(float(v) for v in surrogate) or tuple(
                    0.0 for _ in state.point.times
                )
                halves = None
                n = 0
                events = 0
            else:
                intervals = pooled_intervals(pooled, self.budget.confidence)
                values = tuple(float(m) for m in np.atleast_1d(pooled.mean))
                halves = tuple(float(iv.half_width) for iv in intervals)
                n = pooled.n
                events = pooled.events
            converged = (
                state.converged
                if self.budget.target_relative_ci is not None
                else True
            )
            reports.append(
                PointReport(
                    point_id=state.point.point_id,
                    label=state.point.label,
                    estimator=state.estimator,
                    reason=state.prior.reason,
                    times=state.point.times,
                    values=values,
                    half_widths=halves,
                    confidence=self.budget.confidence,
                    n_replications=n,
                    converged=converged and pooled is not None,
                    events=events,
                    surrogate=tuple(surrogate),
                )
            )
        snapshot = telemetry.snapshot()
        self.runner.last_telemetry = snapshot
        return OrchestrationReport(
            policy=self.allocator.policy,
            seed=self.seed,
            points=reports,
            rounds=rounds,
            ledger=ledger.to_dict(),
            telemetry=snapshot.to_dict(),
        )


def orchestrate(
    points: Sequence[SweepPoint],
    budget: Budget,
    runner: ParallelRunner,
    **kwargs,
) -> OrchestrationReport:
    """One-call convenience wrapper around :class:`Orchestrator`."""
    return Orchestrator(points, budget, runner, **kwargs).run()
