"""Warm-start surrogates and per-point estimator selection.

Before a single replication is spent, every sweep point is evaluated with
the two cheap engines the library already has:

* the **lumped-CTMC analytical engine** (:mod:`repro.core.analytical`) —
  near-exact S(t) with a truncation-error bound, milliseconds per point;
* the **first-order overlap approximation**
  (:mod:`repro.core.approximation`) — a closed-form ST1 estimate used as
  a fallback oracle when the analytical build fails (e.g. custom models
  outside its decomposability assumptions).

The resulting :class:`SurrogatePrior` serves two jobs: (1) *estimator
auto-selection* — rarity decides between an analytical short-circuit,
plain Monte-Carlo, importance sampling and multilevel splitting; and
(2) *allocation priors* — the predicted replications-to-target for a
Bernoulli(p) indicator seeds the first adaptive round before any sample
variance has been measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from scipy import stats as scipy_stats

from repro.core.parameters import AHSParameters

__all__ = [
    "SweepPoint",
    "SurrogatePrior",
    "EstimatorPolicy",
    "ESTIMATORS",
    "warm_start",
]

#: estimators the orchestrator can assign to a point
ESTIMATORS = ("analytical", "simulation", "importance", "splitting")


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: a parameterisation plus evaluation times."""

    point_id: str
    params: AHSParameters
    times: tuple[float, ...]
    #: display label (defaults to the id)
    label: str = ""

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError(f"point {self.point_id!r} needs evaluation times")
        if min(self.times) < 0:
            raise ValueError(f"point {self.point_id!r} has negative times")
        if not self.label:
            object.__setattr__(self, "label", self.point_id)

    @property
    def horizon(self) -> float:
        return float(max(self.times))


@dataclass(frozen=True)
class EstimatorPolicy:
    """Rarity thresholds steering per-point estimator selection.

    Selection looks at the surrogate's unsafety at the point's horizon
    (its *rarity*):

    ========================  =========================================
    rarity                    estimator
    ========================  =========================================
    < ``analytical_cutoff``   analytical short-circuit (no Monte-Carlo
                              method can resolve the point within any
                              sane budget; the paper itself quotes the
                              λ=1e-7 ≈ 1e-13 case without simulating it)
    < ``splitting_cutoff``    multilevel splitting
    < ``importance_cutoff``   failure-biased importance sampling
    otherwise                 crude Monte-Carlo
    ========================  =========================================

    ``forced`` overrides selection wholesale; ``allowed`` restricts the
    menu (the first allowed estimator at or above the selected one's
    rarity band wins, falling back to plain simulation).
    """

    analytical_cutoff: float = 1e-8
    splitting_cutoff: float = 1e-6
    importance_cutoff: float = 1e-3
    forced: Optional[str] = None
    allowed: tuple[str, ...] = ESTIMATORS
    boost: float = 30.0
    splitting_trials: int = 100

    def __post_init__(self) -> None:
        if not (
            0.0
            < self.analytical_cutoff
            <= self.splitting_cutoff
            <= self.importance_cutoff
        ):
            raise ValueError(
                "cutoffs must satisfy 0 < analytical <= splitting <= importance"
            )
        for name in (self.forced, *self.allowed):
            if name is not None and name not in ESTIMATORS:
                raise ValueError(
                    f"unknown estimator {name!r}; choose from {ESTIMATORS}"
                )
        if not self.allowed:
            raise ValueError("allowed estimator list cannot be empty")

    def select(self, rarity: Optional[float]) -> tuple[str, str]:
        """(estimator, reason) for a point of the given rarity."""
        if self.forced is not None:
            return self.forced, "forced by configuration"
        if rarity is None:
            choice = "simulation"
            reason = "no surrogate estimate; defaulting to crude Monte-Carlo"
        elif rarity < self.analytical_cutoff:
            choice = "analytical"
            reason = (
                f"rarity {rarity:.2e} < {self.analytical_cutoff:g}: below "
                "any Monte-Carlo resolution; serving the analytical value"
            )
        elif rarity < self.splitting_cutoff:
            choice = "splitting"
            reason = (
                f"rarity {rarity:.2e} < {self.splitting_cutoff:g}: "
                "multilevel splitting"
            )
        elif rarity < self.importance_cutoff:
            choice = "importance"
            reason = (
                f"rarity {rarity:.2e} < {self.importance_cutoff:g}: "
                "failure-biased importance sampling"
            )
        else:
            choice = "simulation"
            reason = f"rarity {rarity:.2e}: crude Monte-Carlo"
        if choice not in self.allowed:
            fallback = (
                "simulation" if "simulation" in self.allowed else self.allowed[0]
            )
            reason += f" (not allowed; using {fallback})"
            choice = fallback
        return choice, reason


@dataclass(frozen=True)
class SurrogatePrior:
    """Cheap-engine knowledge about one point, pre-replication."""

    point_id: str
    #: analytical S(t) per evaluation time (None when the build failed)
    analytical: Optional[tuple[float, ...]]
    #: truncation-error bound of the analytical values (0.0 when exact)
    truncation_error: float
    #: first-order approximation S(t) per time (always computable)
    approximation: tuple[float, ...] = ()
    #: surrogate unsafety at the horizon — the selection signal
    rarity: Optional[float] = None
    estimator: str = "simulation"
    reason: str = ""

    def values(self) -> tuple[float, ...]:
        """The best surrogate curve available (analytical, else approx)."""
        if self.analytical is not None:
            return self.analytical
        return self.approximation

    def predicted_replications(
        self, target_relative_ci: float, confidence: float = 0.95
    ) -> Optional[int]:
        """Replications for a Bernoulli(p) mean to reach the target rel-CI.

        ``n ≈ z² (1−p) / (p · target²)`` — the standard planning formula;
        None when the surrogate saw nothing (rarity 0 or unknown).  For
        importance/splitting points this grossly overestimates (that is
        why they were selected), so it is only a *ranking* prior.
        """
        if self.rarity is None or self.rarity <= 0.0:
            return None
        p = min(self.rarity, 1.0 - 1e-12)
        z = float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))
        n = z * z * (1.0 - p) / (p * target_relative_ci * target_relative_ci)
        return max(int(math.ceil(n)), 1)

    def to_dict(self) -> dict:
        return {
            "point_id": self.point_id,
            "analytical": None
            if self.analytical is None
            else [float(v) for v in self.analytical],
            "truncation_error": self.truncation_error,
            "approximation": [float(v) for v in self.approximation],
            "rarity": self.rarity,
            "estimator": self.estimator,
            "reason": self.reason,
        }


# ----------------------------------------------------------------------
def _analytical_curve(point: SweepPoint) -> tuple[tuple[float, ...], float]:
    from repro.core.analytical import AnalyticalEngine

    result = AnalyticalEngine(point.params).unsafety(list(point.times))
    return (
        tuple(float(v) for v in result.unsafety),
        float(result.truncation_error.max(initial=0.0)),
    )


def _approximation_curve(point: SweepPoint) -> tuple[float, ...]:
    from repro.core.approximation import OverlapApproximation

    values = OverlapApproximation(point.params).unsafety(list(point.times))
    return tuple(float(v) for v in values)


def warm_start(
    points: Sequence[SweepPoint],
    policy: EstimatorPolicy = EstimatorPolicy(),
    runner=None,
) -> dict[str, SurrogatePrior]:
    """Surrogate priors (and estimator choices) for every point.

    With a :class:`~repro.runtime.ParallelRunner`, the analytical curves
    evaluate through :meth:`ParallelRunner.map` — each one is an
    :class:`~repro.core.partasks.AnalyticalCurveTask`, so sweep points
    already cached by plain figure runs are warm-start hits for free.
    """
    from repro.core.partasks import AnalyticalCurveTask

    analytical: list[Optional[tuple[tuple[float, ...], float]]] = []
    if runner is not None:
        tasks = [
            AnalyticalCurveTask(params=p.params, times=tuple(p.times))
            for p in points
        ]
        try:
            curves = runner.map(tasks)
        except Exception:
            curves = [None] * len(points)
        for point, curve in zip(points, curves):
            if curve is None:
                analytical.append(None)
                continue
            # map() has no truncation channel; recover the bound cheaply
            # only when the value will actually be served analytically
            analytical.append((tuple(float(v) for v in curve), 0.0))
    else:
        for point in points:
            try:
                analytical.append(_analytical_curve(point))
            except Exception:
                analytical.append(None)

    priors: dict[str, SurrogatePrior] = {}
    for point, curve in zip(points, analytical):
        try:
            approx = _approximation_curve(point)
        except Exception:
            approx = ()
        if curve is not None:
            values, truncation = curve
            horizon_index = max(
                range(len(point.times)), key=lambda i: point.times[i]
            )
            rarity = values[horizon_index]
        elif approx:
            values, truncation = None, 0.0
            horizon_index = max(
                range(len(point.times)), key=lambda i: point.times[i]
            )
            rarity = approx[horizon_index]
        else:
            values, truncation, rarity = None, 0.0, None
        estimator, reason = policy.select(rarity)
        priors[point.point_id] = SurrogatePrior(
            point_id=point.point_id,
            analytical=None if curve is None else curve[0],
            truncation_error=truncation,
            approximation=approx,
            rarity=None if rarity is None else float(rarity),
            estimator=estimator,
            reason=reason,
        )
    return priors
