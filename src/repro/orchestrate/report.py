"""Allocation traces and the shared machine-readable estimate schema.

:func:`estimate_record` is the **one** JSON shape every estimate in the
project serialises to — orchestrator point results, ``repro-cli unsafety
--json`` output and figure artifacts all emit it, so downstream tooling
parses a single schema:

.. code-block:: json

    {"point_id": "...", "estimator": "simulation",
     "times": [7200.0], "values": [3.1e-5],
     "half_widths": [2.9e-6], "relative_ci": 0.094,
     "confidence": 0.95, "n_replications": 4096,
     "converged": true, "source": "orchestrate"}

The report classes record *why* each point holds its estimate: the
surrogate prior that selected its estimator, every round's award, and the
budget ledger that ended the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "estimate_record",
    "RoundRecord",
    "PointReport",
    "OrchestrationReport",
]


def estimate_record(
    *,
    point_id: str,
    estimator: str,
    times: Sequence[float],
    values: Sequence[float],
    half_widths: Optional[Sequence[float]] = None,
    confidence: Optional[float] = None,
    n_replications: int = 0,
    converged: bool = True,
    source: str = "",
    label: str = "",
) -> dict:
    """The project-wide machine-readable estimate schema (one point).

    ``relative_ci`` is derived from the *last* time point (the horizon,
    where the CI is widest for monotone unsafety) and is ``None`` for
    deterministic estimators and unobserved (zero-mean) estimates.
    """
    times = [float(t) for t in times]
    values = [float(v) for v in values]
    if len(times) != len(values):
        raise ValueError(
            f"times ({len(times)}) and values ({len(values)}) disagree"
        )
    halves = (
        None
        if half_widths is None
        else [float(h) for h in half_widths]
    )
    if halves is not None and len(halves) != len(values):
        raise ValueError(
            f"half_widths ({len(halves)}) and values ({len(values)}) disagree"
        )
    relative: Optional[float] = None
    if halves is not None and values and values[-1] != 0.0:
        candidate = abs(halves[-1] / values[-1])
        if math.isfinite(candidate):
            relative = candidate
    return {
        "point_id": point_id,
        "label": label or point_id,
        "estimator": estimator,
        "times": times,
        "values": values,
        "half_widths": halves,
        "relative_ci": relative,
        "confidence": confidence,
        "n_replications": int(n_replications),
        "converged": bool(converged),
        "source": source,
    }


@dataclass(frozen=True)
class RoundRecord:
    """One allocation round: what was awarded and what it achieved."""

    index: int
    #: replications awarded this round, per point id
    awards: dict[str, int]
    #: widest relative CI across unconverged points *after* the round
    #: (None when every point is converged or unobserved)
    widest_relative_ci: Optional[float]
    #: points converged by the end of this round
    converged_points: int
    #: cumulative replications spent after this round
    spent: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "awards": dict(sorted(self.awards.items())),
            "widest_relative_ci": self.widest_relative_ci,
            "converged_points": self.converged_points,
            "spent": self.spent,
        }


@dataclass
class PointReport:
    """Final state of one sweep point after orchestration."""

    point_id: str
    label: str
    estimator: str
    reason: str
    times: tuple[float, ...]
    values: tuple[float, ...]
    half_widths: Optional[tuple[float, ...]]
    confidence: float
    n_replications: int
    converged: bool
    #: pooled simulator events charged to this point (0 for analytical)
    events: int = 0
    #: surrogate curve used for warm-starting (may be empty)
    surrogate: tuple[float, ...] = ()

    @property
    def relative_ci(self) -> Optional[float]:
        if self.half_widths is None or not self.values:
            return None
        if self.values[-1] == 0.0:
            return None
        candidate = abs(self.half_widths[-1] / self.values[-1])
        return candidate if math.isfinite(candidate) else None

    def to_dict(self) -> dict:
        record = estimate_record(
            point_id=self.point_id,
            label=self.label,
            estimator=self.estimator,
            times=self.times,
            values=self.values,
            half_widths=self.half_widths,
            confidence=self.confidence,
            n_replications=self.n_replications,
            converged=self.converged,
            source="orchestrate",
        )
        record["reason"] = self.reason
        record["events"] = self.events
        if self.surrogate:
            record["surrogate"] = [float(v) for v in self.surrogate]
        return record


@dataclass
class OrchestrationReport:
    """Everything one orchestration run decided and measured."""

    policy: str
    seed: int
    points: list[PointReport] = field(default_factory=list)
    rounds: list[RoundRecord] = field(default_factory=list)
    ledger: Optional[dict] = None
    telemetry: Optional[dict] = None

    @property
    def total_replications(self) -> int:
        return sum(p.n_replications for p in self.points)

    @property
    def all_converged(self) -> bool:
        return all(p.converged for p in self.points)

    def point(self, point_id: str) -> PointReport:
        for report in self.points:
            if report.point_id == point_id:
                return report
        raise KeyError(point_id)

    def to_dict(self) -> dict:
        return {
            "schema": "repro-estimates/1",
            "policy": self.policy,
            "seed": self.seed,
            "total_replications": self.total_replications,
            "all_converged": self.all_converged,
            "points": [p.to_dict() for p in self.points],
            "rounds": [r.to_dict() for r in self.rounds],
            "ledger": self.ledger,
            "telemetry": self.telemetry,
        }

    def format(self) -> str:
        """Human-readable allocation trace + per-point results."""
        lines = [
            f"orchestration: policy={self.policy}  seed={self.seed}  "
            f"points={len(self.points)}  rounds={len(self.rounds)}  "
            f"replications={self.total_replications}"
        ]
        if self.ledger is not None:
            reason = self.ledger.get("stop_reason")
            elapsed = self.ledger.get("elapsed_seconds", 0.0)
            lines.append(
                f"stopped: {reason or 'n/a'}  elapsed={elapsed:.2f}s"
            )
        lines.append("")
        lines.append(
            f"{'point':<28} {'estimator':<12} {'n':>8} "
            f"{'S(horizon)':>12} {'rel-CI':>8}  status"
        )
        for point in self.points:
            value = point.values[-1] if point.values else math.nan
            relative = point.relative_ci
            rel_text = "-" if relative is None else f"{relative:7.2%}"
            status = "converged" if point.converged else "budget-stop"
            lines.append(
                f"{point.label:<28.28} {point.estimator:<12} "
                f"{point.n_replications:>8} {value:>12.4e} {rel_text:>8}  "
                f"{status}"
            )
        if self.rounds:
            lines.append("")
            lines.append("allocation trace:")
            for record in self.rounds:
                widest = record.widest_relative_ci
                widest_text = "-" if widest is None else f"{widest:.2%}"
                awards = ", ".join(
                    f"{pid}+{n}" for pid, n in sorted(record.awards.items())
                )
                lines.append(
                    f"  round {record.index:>2}: spent={record.spent:<8} "
                    f"widest rel-CI={widest_text:<8} "
                    f"converged={record.converged_points}  [{awards}]"
                )
        point_seconds = (self.telemetry or {}).get("point_seconds")
        if point_seconds:
            # wall-clock footer only: never part of the deterministic
            # points/rounds sections above
            budget = "  ".join(
                f"{pid}={seconds:.2f}s"
                for pid, seconds in sorted(point_seconds.items())
            )
            lines.append("")
            lines.append(f"point seconds: {budget}")
        return "\n".join(lines)
