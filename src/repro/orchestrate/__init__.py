"""Adaptive experiment orchestration: budgeted, CI-driven allocation.

The orchestrator takes a set of sweep points and one global budget
(replications, wall-clock, or a uniform target relative-CI) and spends
rounds of replication chunks where they buy the most precision:

* :mod:`~repro.orchestrate.budget` — budget/ledger vocabulary and stop
  conditions;
* :mod:`~repro.orchestrate.surrogate` — analytical/approximation warm
  starts and per-point estimator auto-selection;
* :mod:`~repro.orchestrate.allocator` — deterministic round scheduling
  policies (greedy, proportional, cost, flat);
* :mod:`~repro.orchestrate.driver` — the round loop on the parallel
  runtime, with the worker-count / resume determinism contract;
* :mod:`~repro.orchestrate.report` — allocation traces and the shared
  machine-readable estimate schema.

See ``docs/orchestration.md`` for the full design.
"""

from repro.orchestrate.allocator import POLICIES, Allocator, PointProgress
from repro.orchestrate.budget import STOP_REASONS, Budget, BudgetLedger
from repro.orchestrate.driver import (
    DEFAULT_SEED,
    Orchestrator,
    orchestrate,
    point_seed,
)
from repro.orchestrate.report import (
    OrchestrationReport,
    PointReport,
    RoundRecord,
    estimate_record,
)
from repro.orchestrate.surrogate import (
    ESTIMATORS,
    EstimatorPolicy,
    SurrogatePrior,
    SweepPoint,
    warm_start,
)

__all__ = [
    "Budget",
    "BudgetLedger",
    "STOP_REASONS",
    "SweepPoint",
    "SurrogatePrior",
    "EstimatorPolicy",
    "ESTIMATORS",
    "warm_start",
    "Allocator",
    "PointProgress",
    "POLICIES",
    "Orchestrator",
    "orchestrate",
    "point_seed",
    "DEFAULT_SEED",
    "OrchestrationReport",
    "PointReport",
    "RoundRecord",
    "estimate_record",
]
