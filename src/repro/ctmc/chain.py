"""Sparse CTMC container."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
from scipy import sparse

__all__ = ["CTMC"]


class CTMC:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    generator:
        Square sparse/dense generator matrix Q: off-diagonal entries are
        non-negative transition rates; each row sums to zero (absorbing
        states have an all-zero row).  Validated on construction.
    initial:
        Initial probability distribution (defaults to mass on state 0).
    labels:
        Optional human-readable state labels for reports.
    """

    def __init__(
        self,
        generator,
        initial: Optional[np.ndarray] = None,
        labels: Optional[list] = None,
    ) -> None:
        q = sparse.csr_matrix(generator, dtype=float)
        if q.shape[0] != q.shape[1]:
            raise ValueError(f"generator must be square, got {q.shape}")
        n = q.shape[0]
        if n == 0:
            raise ValueError("CTMC needs at least one state")

        off_diag = q - sparse.diags(q.diagonal())
        if off_diag.nnz and off_diag.min() < -1e-12:
            raise ValueError("generator has negative off-diagonal rates")
        row_sums = np.asarray(q.sum(axis=1)).ravel()
        worst = float(np.abs(row_sums).max()) if n else 0.0
        scale = max(1.0, float(np.abs(q.diagonal()).max()))
        if worst > 1e-8 * scale:
            raise ValueError(
                f"generator rows must sum to 0 (worst residual {worst:g})"
            )

        if initial is None:
            initial = np.zeros(n)
            initial[0] = 1.0
        initial = np.asarray(initial, dtype=float)
        if initial.shape != (n,):
            raise ValueError(
                f"initial distribution shape {initial.shape} != ({n},)"
            )
        if (initial < -1e-12).any() or abs(float(initial.sum()) - 1.0) > 1e-9:
            raise ValueError("initial must be a probability distribution")
        if labels is not None and len(labels) != n:
            raise ValueError(f"{len(labels)} labels for {n} states")

        self.generator = q
        self.initial = initial
        self.labels = labels

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states."""
        return self.generator.shape[0]

    @property
    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate of each state (−diagonal)."""
        return -self.generator.diagonal()

    @property
    def uniformization_rate(self) -> float:
        """Smallest admissible uniformization constant (max exit rate)."""
        rates = self.exit_rates
        return float(rates.max()) if rates.size else 0.0

    def absorbing_states(self) -> np.ndarray:
        """Indices of absorbing states (zero exit rate)."""
        return np.flatnonzero(self.exit_rates <= 1e-300)

    def embedded_dtmc(self, uniformization_rate: Optional[float] = None):
        """Uniformized DTMC ``P = I + Q / Λ`` (sparse CSR)."""
        lam = (
            self.uniformization_rate
            if uniformization_rate is None
            else float(uniformization_rate)
        )
        if lam < self.uniformization_rate * (1 - 1e-12):
            raise ValueError(
                f"uniformization rate {lam} below max exit rate "
                f"{self.uniformization_rate}"
            )
        n = self.n_states
        if lam <= 0.0:
            return sparse.identity(n, format="csr")
        return (sparse.identity(n, format="csr") + self.generator / lam).tocsr()

    def restrict(self, keep: Iterable[int]) -> "CTMC":
        """Sub-chain over ``keep`` states, other transitions dropped.

        The resulting rows are re-closed by increasing self-absorption (any
        rate leaving the kept set is removed and the diagonal adjusted so
        rows still sum to zero) — i.e. leaked transitions become invisible.
        Useful for quick what-if studies; not probability-preserving.
        """
        keep = np.asarray(sorted(set(keep)), dtype=int)
        sub = self.generator[keep][:, keep].tolil()
        sub.setdiag(0.0)
        row_sums = np.asarray(sub.sum(axis=1)).ravel()
        sub.setdiag(-row_sums)
        initial = self.initial[keep]
        total = initial.sum()
        if total <= 0:
            raise ValueError("restricted chain has zero initial mass")
        labels = [self.labels[i] for i in keep] if self.labels else None
        return CTMC(sub.tocsr(), initial / total, labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CTMC(states={self.n_states}, "
            f"transitions={self.generator.nnz - self.n_states}, "
            f"max_rate={self.uniformization_rate:g})"
        )
