"""Transient CTMC solution by uniformization (Jensen's method).

``p(t) = Σ_k Poisson(Λt; k) · p0 · P^k`` with ``P = I + Q/Λ``.  One pass of
vector-matrix products serves every requested time point simultaneously
(the iterates ``v_k = p0 P^k`` are shared; only the Poisson weights differ).
Poisson weights are computed in log space so horizons with ``Λt`` in the
thousands do not underflow.  Steady-state detection truncates the series
early when the iterates stop moving (standard for chains that converge,
e.g. chains with absorbing unsafe states).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from repro.ctmc.chain import CTMC

__all__ = [
    "transient_distribution",
    "transient_reward",
    "accumulated_reward",
]


def _poisson_log_weight(log_rate: float, rate: float, k: int) -> float:
    """log Poisson(rate; k) — stable for large rates."""
    return -rate + k * log_rate - math.lgamma(k + 1)


def _truncation_point(rate: float, tol: float) -> int:
    """Index K with Poisson tail mass beyond K below ``tol`` (conservative)."""
    if rate <= 0.0:
        return 0
    # mean + c*sqrt(mean) with a generous constant, floor for small rates
    return int(rate + 10.0 * math.sqrt(rate) + 20.0)


def transient_distribution(
    chain: CTMC,
    times: Sequence[float],
    tol: float = 1e-12,
    steady_tol: float = 0.0,
    max_iterations: Optional[int] = None,
) -> np.ndarray:
    """State-probability vectors at each requested time.

    Parameters
    ----------
    chain:
        The CTMC (initial distribution taken from the chain).
    times:
        Non-negative time points (any order; output rows match input order).
    tol:
        Poisson tail truncation tolerance.
    steady_tol:
        When > 0, stop iterating once ``||v_k − v_{k−1}||₁ < steady_tol``
        and assign the converged vector to all remaining weight.
    max_iterations:
        Safety cap on the number of vector-matrix products.

    Returns
    -------
    Array of shape ``(len(times), n_states)``; each row sums to 1 (within
    the truncation tolerance).
    """
    times_arr = np.asarray(list(times), dtype=float)
    if times_arr.size == 0:
        return np.zeros((0, chain.n_states))
    if (times_arr < 0).any():
        raise ValueError("times must be non-negative")

    lam = chain.uniformization_rate
    if lam <= 0.0:  # no transitions at all
        return np.tile(chain.initial, (times_arr.size, 1))

    # Slight inflation of Λ improves numerical behaviour of P's diagonal.
    lam *= 1.0 + 1e-9
    transition = chain.embedded_dtmc(lam)

    rates = lam * times_arr
    k_max = max(_truncation_point(float(r), tol) for r in rates)
    if max_iterations is not None:
        k_max = min(k_max, int(max_iterations))

    log_rates = np.where(rates > 0, np.log(np.maximum(rates, 1e-300)), 0.0)
    result = np.zeros((times_arr.size, chain.n_states))
    accumulated = np.zeros(times_arr.size)

    v = chain.initial.copy()
    previous = None
    for k in range(k_max + 1):
        for j, rate in enumerate(rates):
            if rate == 0.0:
                weight = 1.0 if k == 0 else 0.0
            else:
                weight = math.exp(
                    _poisson_log_weight(float(log_rates[j]), float(rate), k)
                )
            if weight > 0.0:
                result[j] += weight * v
                accumulated[j] += weight

        if steady_tol > 0.0 and previous is not None:
            if float(np.abs(v - previous).sum()) < steady_tol:
                break
        previous = v
        v = v @ transition
        # Guard tiny negative round-off so probabilities stay probabilities.
        np.clip(v, 0.0, None, out=v)

    # Assign any un-accumulated Poisson weight to the last iterate (exact
    # when the iterates have converged; bounded by tol otherwise).
    remaining = 1.0 - accumulated
    result += remaining[:, None] * previous if previous is not None else 0.0
    return result


def accumulated_reward(
    chain: CTMC,
    times: Sequence[float],
    reward: np.ndarray | Callable[[int], float],
    tol: float = 1e-12,
) -> np.ndarray:
    """Expected accumulated reward ``E[∫₀ᵗ r(X_s) ds]`` at each time.

    Uniformization identity: with ``v_k = p0 Pᵏ`` and ``N ~ Poisson(Λt)``,

    ``∫₀ᵗ E[r(X_s)] ds = (1/Λ) Σ_k P(N ≥ k+1) · (v_k · r)``

    (each DTMC step is visited for an Exp(Λ) sojourn; the k-th iterate is
    occupied before the (k+1)-th Poisson event).  This is Möbius's
    *interval-of-time* reward variable — e.g. expected vehicle-hours
    spent in recovery maneuvers during a trip.
    """
    if callable(reward):
        reward = np.asarray([reward(i) for i in range(chain.n_states)])
    else:
        reward = np.asarray(reward, dtype=float)
    if reward.shape != (chain.n_states,):
        raise ValueError(f"reward shape {reward.shape} != ({chain.n_states},)")
    times_arr = np.asarray(list(times), dtype=float)
    if times_arr.size == 0:
        return np.zeros(0)
    if (times_arr < 0).any():
        raise ValueError("times must be non-negative")

    lam = chain.uniformization_rate
    if lam <= 0.0:  # frozen chain: reward accrues in the initial state
        return float(chain.initial @ reward) * times_arr

    lam *= 1.0 + 1e-9
    transition = chain.embedded_dtmc(lam)
    rates = lam * times_arr
    k_max = max(_truncation_point(float(r), tol) for r in rates)
    log_rates = np.where(rates > 0, np.log(np.maximum(rates, 1e-300)), 0.0)

    # survival function of the Poisson counts, built from the pmf:
    # P(N >= k+1) = 1 - CDF(k); accumulate the CDF iteratively in a
    # numerically safe way (log-space pmf terms)
    result = np.zeros(times_arr.size)
    cdf = np.zeros(times_arr.size)
    v = chain.initial.copy()
    for k in range(k_max + 1):
        pmf = np.empty(times_arr.size)
        for j, rate in enumerate(rates):
            if rate == 0.0:
                pmf[j] = 1.0 if k == 0 else 0.0
            else:
                pmf[j] = math.exp(
                    _poisson_log_weight(float(log_rates[j]), float(rate), k)
                )
        cdf += pmf
        survival = np.clip(1.0 - cdf, 0.0, 1.0)
        result += survival * float(v @ reward)
        if (survival <= tol).all():
            break
        v = v @ transition
        np.clip(v, 0.0, None, out=v)
    return result / lam


def transient_reward(
    chain: CTMC,
    times: Sequence[float],
    reward: np.ndarray | Callable[[int], float],
    **kwargs,
) -> np.ndarray:
    """Expected instant-of-time reward ``E[r(X_t)]`` at each time.

    ``reward`` is a per-state vector or a function of the state index.
    For an indicator reward this is exactly a state-probability measure —
    the paper's unsafety ``S(t)`` is the indicator of ``KO_total`` marked.
    """
    if callable(reward):
        reward = np.asarray([reward(i) for i in range(chain.n_states)])
    else:
        reward = np.asarray(reward, dtype=float)
    if reward.shape != (chain.n_states,):
        raise ValueError(
            f"reward shape {reward.shape} != ({chain.n_states},)"
        )
    distributions = transient_distribution(chain, times, **kwargs)
    return distributions @ reward
