"""Steady-state and absorption analysis of CTMCs."""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as spla

from repro.ctmc.chain import CTMC

__all__ = [
    "stationary_distribution",
    "mean_time_to_absorption",
    "absorption_probabilities",
]


def stationary_distribution(chain: CTMC, tol: float = 1e-12) -> np.ndarray:
    """Stationary distribution π solving πQ = 0, Σπ = 1.

    Requires an irreducible chain (checked a-posteriori: the solution must
    be a strictly proper distribution; absorbing or reducible chains
    typically produce negative/degenerate solutions and are rejected).
    """
    n = chain.n_states
    if n == 1:
        return np.ones(1)
    # Replace one balance equation with the normalisation constraint.
    a = chain.generator.T.tolil()
    a[n - 1, :] = 1.0
    b = np.zeros(n)
    b[n - 1] = 1.0
    import warnings

    with warnings.catch_warnings():
        # a singular system just means "no stationary law"; we detect it
        # from the (NaN/inf) solution below and raise a clear error
        warnings.simplefilter("ignore", spla.MatrixRankWarning)
        solution = spla.spsolve(a.tocsr(), b)
    if not np.all(np.isfinite(solution)) or (solution < -1e-9).any():
        raise ValueError(
            "no valid stationary distribution (chain reducible or absorbing?)"
        )
    solution = np.clip(solution, 0.0, None)
    total = solution.sum()
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"stationary solve off-normalised (sum={total})")
    residual = float(np.abs(solution @ chain.generator).max())
    scale = max(1.0, chain.uniformization_rate)
    if residual > 1e-7 * scale:
        raise ValueError(f"stationary residual too large: {residual}")
    return solution / total


def _split_transient(chain: CTMC) -> tuple[np.ndarray, np.ndarray]:
    absorbing = chain.absorbing_states()
    mask = np.zeros(chain.n_states, dtype=bool)
    mask[absorbing] = True
    transient = np.flatnonzero(~mask)
    if transient.size == 0:
        raise ValueError("chain has no transient states")
    if absorbing.size == 0:
        raise ValueError("chain has no absorbing states")
    return transient, absorbing


def mean_time_to_absorption(chain: CTMC) -> float:
    """Expected time to reach any absorbing state from the initial law.

    Solves ``Q_TT τ = −1`` over the transient block.
    """
    transient, _ = _split_transient(chain)
    q_tt = chain.generator[transient][:, transient].tocsr()
    tau = spla.spsolve(q_tt, -np.ones(transient.size))
    if not np.all(np.isfinite(tau)) or (tau < -1e-9).any():
        raise ValueError(
            "mean time to absorption undefined (absorbing set unreachable "
            "from part of the transient block?)"
        )
    p0 = chain.initial[transient]
    return float(p0 @ np.clip(tau, 0.0, None))


def absorption_probabilities(chain: CTMC) -> np.ndarray:
    """Eventual absorption probability into each absorbing state.

    Returns a full-length vector: entry *j* is the probability of ending in
    state *j* (zero for transient states), starting from the chain's initial
    distribution.  Solves ``Q_TT B = −Q_TA`` column by column.
    """
    transient, absorbing = _split_transient(chain)
    q_tt = chain.generator[transient][:, transient].tocsc()
    q_ta = chain.generator[transient][:, absorbing].toarray()
    lu = spla.splu(q_tt)
    boundary = np.column_stack(
        [lu.solve(-q_ta[:, j]) for j in range(absorbing.size)]
    )
    result = np.zeros(chain.n_states)
    p0_transient = chain.initial[transient]
    result[absorbing] = p0_transient @ boundary + chain.initial[absorbing]
    total = result.sum()
    if abs(total - 1.0) > 1e-6:
        raise ValueError(
            f"absorption probabilities sum to {total}; some mass never "
            f"absorbs (recurrent transient class?)"
        )
    return result
