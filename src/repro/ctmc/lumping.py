"""Exact (strong) lumping of CTMCs.

A partition of the state space is *strongly lumpable* when every state in a
block has the same aggregate rate into each other block; the quotient chain
is then an exact CTMC for the block process.  This is the property behind
Möbius's Rep-operator state-space reduction, and the library uses it both to
compress replica-symmetric chains and to *verify* that hand-built lumped
models (e.g. :mod:`repro.core.analytical`) are faithful on small instances.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

import numpy as np
from scipy import sparse

from repro.ctmc.chain import CTMC

__all__ = ["lump", "LumpingError"]


class LumpingError(ValueError):
    """The proposed partition is not strongly lumpable."""


def lump(
    chain: CTMC,
    key: Callable[[int], Hashable],
    rtol: float = 1e-9,
    check: bool = True,
) -> tuple[CTMC, list[Hashable], np.ndarray]:
    """Quotient ``chain`` by the partition induced by ``key``.

    Parameters
    ----------
    chain:
        The chain to lump.
    key:
        Maps a state index to its block key (states with equal keys are
        merged).  For chains built from a :class:`~repro.san.statespace`
        result, a key typically inspects the frozen marking.
    rtol:
        Relative tolerance for the lumpability check.
    check:
        When True (default), verify strong lumpability and raise
        :class:`LumpingError` if the partition violates it.  When False,
        rows are averaged under the initial-distribution weights restricted
        to each block (an approximation).

    Returns
    -------
    (lumped_chain, block_keys, membership)
        ``block_keys[b]`` is the key of block *b*; ``membership[i]`` is the
        block of original state *i*.
    """
    n = chain.n_states
    keys = [key(i) for i in range(n)]
    block_keys: list[Hashable] = []
    block_of_key: dict[Hashable, int] = {}
    membership = np.empty(n, dtype=int)
    for i, k in enumerate(keys):
        block = block_of_key.get(k)
        if block is None:
            block = len(block_keys)
            block_of_key[k] = block
            block_keys.append(k)
        membership[i] = block
    n_blocks = len(block_keys)

    # Aggregation matrix V (n × n_blocks): V[i, b] = 1 iff state i in block b
    collect = sparse.csr_matrix(
        (np.ones(n), (np.arange(n), membership)), shape=(n, n_blocks)
    )
    # Per-state aggregate rates into each block: R = Q · V  (n × n_blocks)
    aggregate = chain.generator @ collect

    if check:
        dense = np.asarray(aggregate.todense())
        scale = max(1.0, chain.uniformization_rate)
        for b in range(n_blocks):
            members = np.flatnonzero(membership == b)
            if members.size <= 1:
                continue
            rows = dense[members]
            spread = np.abs(rows - rows[0]).max()
            if spread > rtol * scale:
                raise LumpingError(
                    f"block {block_keys[b]!r} is not lumpable: aggregate "
                    f"rates differ by {spread:g} across its "
                    f"{members.size} states"
                )

    # Lumped generator: one representative row per block (or a weighted
    # average when check=False).
    weights = chain.initial.copy()
    lumped = np.zeros((n_blocks, n_blocks))
    dense = np.asarray(aggregate.todense())
    for b in range(n_blocks):
        members = np.flatnonzero(membership == b)
        w = weights[members]
        if check or w.sum() <= 0:
            lumped[b] = dense[members].mean(axis=0)
        else:
            lumped[b] = (w @ dense[members]) / w.sum()
    # Re-close rows exactly (average may carry tiny residuals).
    np.fill_diagonal(lumped, 0.0)
    np.fill_diagonal(lumped, -lumped.sum(axis=1))

    initial = np.zeros(n_blocks)
    for i in range(n):
        initial[membership[i]] += chain.initial[i]

    return CTMC(sparse.csr_matrix(lumped), initial, block_keys), block_keys, membership
