"""Continuous-time Markov chain representation and solvers.

Provides the numerical backend for SAN analysis:

* :class:`~repro.ctmc.chain.CTMC` — sparse generator + initial distribution;
* :mod:`~repro.ctmc.transient` — transient solution by uniformization
  (Jensen's method) with steady-state detection; this is how the library
  computes the paper's unsafety curves down to 1e-13, which is far beyond
  what plain Monte-Carlo can see;
* :mod:`~repro.ctmc.stationary` — steady-state and mean-time-to-absorption;
* :mod:`~repro.ctmc.lumping` — exact (strong) lumping by a state-key
  function, used to validate replica-symmetry reductions.
"""

from repro.ctmc.chain import CTMC
from repro.ctmc.transient import (
    accumulated_reward,
    transient_distribution,
    transient_reward,
)
from repro.ctmc.stationary import (
    stationary_distribution,
    mean_time_to_absorption,
    absorption_probabilities,
)
from repro.ctmc.lumping import lump, LumpingError

__all__ = [
    "CTMC",
    "transient_distribution",
    "transient_reward",
    "accumulated_reward",
    "stationary_distribution",
    "mean_time_to_absorption",
    "absorption_probabilities",
    "lump",
    "LumpingError",
]
