"""Programmatic verification of the paper's evaluation claims.

``repro-cli verify`` recomputes every figure and checks the paper's
qualitative claims against it, printing a ✔/✘ verdict per claim — the
user-facing twin of ``tests/integration/test_paper_claims.py``.  Each
checker returns ``(claim text, holds, evidence)`` so reports can show
*why* a verdict was reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.experiments import figures

__all__ = ["ClaimVerdict", "verify_figure", "verify_all", "CLAIM_CHECKERS"]


@dataclass(frozen=True)
class ClaimVerdict:
    """Outcome of checking one paper claim."""

    experiment_id: str
    claim: str
    holds: bool
    evidence: str


def _check_figure10(result) -> list[ClaimVerdict]:
    verdicts = []
    growth = {
        label: float(values[-1] / values[0])
        for label, values in result.series.items()
    }
    verdicts.append(
        ClaimVerdict(
            "figure10",
            "S(t) grows substantially from the shortest to the longest trip",
            all(g > 3.0 for g in growth.values()),
            f"growth 2h→10h per series: "
            + ", ".join(f"{k}: x{v:.1f}" for k, v in growth.items()),
        )
    )
    sizes = sorted(result.series, key=lambda lbl: int(lbl.split("=")[1]))
    ordered = all(
        (result.series[b] > result.series[a]).all()
        for a, b in zip(sizes, sizes[1:])
    )
    ratio = result.series_at(sizes[-1], 10.0) / result.series_at(sizes[0], 10.0)
    verdicts.append(
        ClaimVerdict(
            "figure10",
            "larger platoons are significantly less safe",
            ordered and ratio > 2.0,
            f"monotone in n: {ordered}; {sizes[0]}→{sizes[-1]} at 10h: x{ratio:.1f}",
        )
    )
    return verdicts


def _check_figure11(result) -> list[ClaimVerdict]:
    at6 = {label: result.series_at(label, 6.0) for label in result.series}
    low = at6["lambda=1e-05"] / at6["lambda=1e-06"]
    high = at6["lambda=0.0001"] / at6["lambda=1e-05"]
    verdicts = [
        ClaimVerdict(
            "figure11",
            "unsafety is very sensitive to the failure rate "
            "(paper: x175 then x40 per decade of lambda at 6h)",
            low > 30.0 and high > 30.0,
            f"measured x{low:.0f} (1e-6→1e-5) and x{high:.0f} (1e-5→1e-4)",
        )
    ]
    tiny = result.series["lambda=1e-07"]
    verdicts.append(
        ClaimVerdict(
            "figure11",
            "lambda=1e-7 yields an unsafety far below Monte-Carlo reach "
            "(paper quotes ~1e-13 without plotting)",
            bool((tiny > 0).all() and (tiny < 1e-8).all()),
            f"S(6h) at 1e-7: {result.series_at('lambda=1e-07', 6.0):.2e}",
        )
    )
    return verdicts


def _check_figure12(result) -> list[ClaimVerdict]:
    monotone = all(
        bool((np.diff(values) > 0).all()) for values in result.series.values()
    )
    return [
        ClaimVerdict(
            "figure12",
            "S(6h) increases with n for every failure rate",
            monotone,
            f"series monotone in n: {monotone}",
        )
    ]


def _check_figure13(result) -> list[ClaimVerdict]:
    rho1 = [k for k in result.series if "rho=1" in k]
    rho2 = [k for k in result.series if "rho=2" in k]
    same_trend = np.allclose(
        result.series[rho1[0]], result.series[rho1[1]], rtol=0.15
    ) and np.allclose(result.series[rho2[0]], result.series[rho2[1]], rtol=0.15)
    ordered = bool((result.series[rho2[0]] > result.series[rho1[0]]).all())
    same_order = bool(
        (result.series[rho2[0]] < 10 * result.series[rho1[0]]).all()
    )
    return [
        ClaimVerdict(
            "figure13",
            "curves with the same load rho share the trend",
            same_trend,
            f"equal-rho curves within 15%: {same_trend}",
        ),
        ClaimVerdict(
            "figure13",
            "rho=2 is less safe than rho=1, within the same order of magnitude",
            ordered and same_order,
            f"rho2 > rho1 everywhere: {ordered}; within 10x: {same_order}",
        ),
    ]


def _check_figure14(result) -> list[ClaimVerdict]:
    dd, dc, cd, cc = (result.series[k] for k in ("DD", "DC", "CD", "CC"))
    decentral = bool((dd < cd).all() and (dc < cc).all())
    inter_beats_intra = bool(((cd / dd) > (dc / dd)).all())
    low_impact = bool((cc < 10 * dd).all())
    return [
        ClaimVerdict(
            "figure14",
            "decentralized inter-platoon coordination is safer",
            decentral,
            f"DD<CD and DC<CC at every t: {decentral}",
        ),
        ClaimVerdict(
            "figure14",
            "the inter-platoon model matters more than the intra-platoon",
            inter_beats_intra,
            f"CD/DD vs DC/DD at 6h: "
            f"{result.series_at('CD', 6.0)/result.series_at('DD', 6.0):.2f} vs "
            f"{result.series_at('DC', 6.0)/result.series_at('DD', 6.0):.2f}",
        ),
        ClaimVerdict(
            "figure14",
            "the overall impact of the strategy is low",
            low_impact,
            f"CC/DD at 6h: "
            f"{result.series_at('CC', 6.0)/result.series_at('DD', 6.0):.2f}",
        ),
    ]


def _check_figure15(result) -> list[ClaimVerdict]:
    dd, dc, cd, cc = (result.series[k] for k in ("DD", "DC", "CD", "CC"))
    holds = bool((dd <= dc).all() and (dc < cd).all() and (cd <= cc).all())
    return [
        ClaimVerdict(
            "figure15",
            "the ordering DD <= DC < CD <= CC holds for every n",
            holds,
            f"checked at n = {result.x_values.astype(int).tolist()}",
        )
    ]


CLAIM_CHECKERS: dict[str, tuple[Callable, Callable]] = {
    "figure10": (figures.figure10, _check_figure10),
    "figure11": (figures.figure11, _check_figure11),
    "figure12": (figures.figure12, _check_figure12),
    "figure13": (figures.figure13, _check_figure13),
    "figure14": (figures.figure14, _check_figure14),
    "figure15": (figures.figure15, _check_figure15),
}


def verify_figure(figure_id: str) -> list[ClaimVerdict]:
    """Recompute one figure and verify its claims."""
    if figure_id not in CLAIM_CHECKERS:
        raise KeyError(
            f"no claim checker for {figure_id!r}; have {sorted(CLAIM_CHECKERS)}"
        )
    compute, check = CLAIM_CHECKERS[figure_id]
    return check(compute(fast=False))


def verify_all() -> list[ClaimVerdict]:
    """Recompute every figure and verify every claim."""
    verdicts: list[ClaimVerdict] = []
    for figure_id in sorted(CLAIM_CHECKERS):
        verdicts.extend(verify_figure(figure_id))
    return verdicts
