"""Experiment execution entry point."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.experiments.figures import FigureResult
from repro.experiments.registry import get_experiment
from repro.experiments.report import format_experiment

__all__ = ["RunOutcome", "run_experiment", "outcome_to_json", "save_outcome"]


@dataclass
class RunOutcome:
    """A completed experiment run."""

    experiment_id: str
    result: Union[FigureResult, list]
    elapsed_seconds: float
    rendered: str


def run_experiment(experiment_id: str, fast: bool = False) -> RunOutcome:
    """Run one registered experiment and render its report.

    Parameters
    ----------
    experiment_id:
        Registry id ('figure10', 'table2', also 'fig10' / '10').
    fast:
        Trim sweeps for quick benchmark runs.
    """
    experiment = get_experiment(experiment_id)
    started = time.perf_counter()
    result = experiment.run(fast)
    elapsed = time.perf_counter() - started
    rendered = format_experiment(experiment.experiment_id, result)
    return RunOutcome(
        experiment_id=experiment.experiment_id,
        result=result,
        elapsed_seconds=elapsed,
        rendered=rendered,
    )


def outcome_to_json(outcome: RunOutcome) -> dict:
    """A JSON-serialisable record of an experiment run.

    Figures serialise as ``{x_label, x_values, series}``; tables as their
    row dicts.  The registry metadata (description, parameters, claims)
    rides along so saved artifacts are self-describing.
    """
    experiment = get_experiment(outcome.experiment_id)
    record: dict = {
        "experiment_id": outcome.experiment_id,
        "description": experiment.description,
        "parameters": experiment.parameters,
        "claims": list(experiment.claims),
        "elapsed_seconds": outcome.elapsed_seconds,
    }
    if isinstance(outcome.result, FigureResult):
        record["kind"] = "figure"
        record["x_label"] = outcome.result.x_label
        record["x_values"] = [float(x) for x in outcome.result.x_values]
        record["series"] = {
            label: [float(v) for v in values]
            for label, values in outcome.result.series.items()
        }
    else:
        record["kind"] = "table"
        record["rows"] = outcome.result
    return record


def save_outcome(outcome: RunOutcome, path: Path | str) -> Path:
    """Write an experiment outcome as a JSON artifact; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(outcome_to_json(outcome), indent=2))
    return path
