"""Experiment execution entry point."""

from __future__ import annotations

import inspect
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.experiments.figures import FigureResult
from repro.experiments.registry import get_experiment
from repro.experiments.report import format_experiment

__all__ = ["RunOutcome", "run_experiment", "outcome_to_json", "save_outcome"]


@dataclass
class RunOutcome:
    """A completed experiment run."""

    experiment_id: str
    result: Union[FigureResult, list]
    elapsed_seconds: float
    rendered: str
    #: runtime telemetry dict when the run went through a ParallelRunner
    telemetry: Optional[dict] = None


def run_experiment(
    experiment_id: str, fast: bool = False, runner=None
) -> RunOutcome:
    """Run one registered experiment and render its report.

    Parameters
    ----------
    experiment_id:
        Registry id ('figure10', 'table2', also 'fig10' / '10').
    fast:
        Trim sweeps for quick benchmark runs.
    runner:
        Optional :class:`repro.runtime.ParallelRunner`.  Experiments that
        support it (the figure sweeps) evaluate their points across
        worker processes with result caching; their reports then carry a
        runtime-telemetry footer.  Experiments that don't (the
        definitional tables) simply run serially.
    """
    experiment = get_experiment(experiment_id)
    supports_runner = (
        runner is not None
        and "runner" in inspect.signature(experiment.run).parameters
    )
    if runner is not None:
        runner.pop_telemetry()  # don't inherit a previous run's footer
    started = time.perf_counter()
    if supports_runner:
        result = experiment.run(fast, runner=runner)
    else:
        result = experiment.run(fast)
    elapsed = time.perf_counter() - started
    rendered = format_experiment(experiment.experiment_id, result)
    telemetry = None
    if supports_runner:
        snapshot = runner.pop_telemetry()
        if snapshot is not None:
            telemetry = snapshot.to_dict()
            rendered = f"{rendered}\n{snapshot.format()}"
    return RunOutcome(
        experiment_id=experiment.experiment_id,
        result=result,
        elapsed_seconds=elapsed,
        rendered=rendered,
        telemetry=telemetry,
    )


def outcome_to_json(outcome: RunOutcome) -> dict:
    """A JSON-serialisable record of an experiment run.

    Figures serialise as ``{x_label, x_values, series}``; tables as their
    row dicts.  The registry metadata (description, parameters, claims)
    rides along so saved artifacts are self-describing, as does the
    runtime telemetry when the run was parallel.
    """
    experiment = get_experiment(outcome.experiment_id)
    record: dict = {
        "experiment_id": outcome.experiment_id,
        "description": experiment.description,
        "parameters": experiment.parameters,
        "claims": list(experiment.claims),
        "elapsed_seconds": outcome.elapsed_seconds,
    }
    if outcome.telemetry is not None:
        record["runtime"] = outcome.telemetry
    if isinstance(outcome.result, FigureResult):
        record["kind"] = "figure"
        record["x_label"] = outcome.result.x_label
        record["x_values"] = [float(x) for x in outcome.result.x_values]
        record["series"] = {
            label: [float(v) for v in values]
            for label, values in outcome.result.series.items()
        }
        record["schema"] = "repro-estimates/1"
        record["points"] = _figure_estimates(outcome.result)
    else:
        record["kind"] = "table"
        record["rows"] = outcome.result
    return record


def _figure_estimates(figure: FigureResult) -> list[dict]:
    """The figure's series as shared-schema estimate records.

    Point granularity mirrors :func:`repro.experiments.figures.
    sweep_definition`: one record per series for trip-duration figures,
    one per (series, x) for the t = 6 h cut figures — so the ids line up
    with ``repro-cli orchestrate`` output for the same figure.
    """
    from repro.orchestrate import estimate_record

    records: list[dict] = []
    if figure.x_label == "trip_hours":
        for label, values in figure.series.items():
            records.append(
                estimate_record(
                    point_id=f"{figure.figure_id}/{label}",
                    label=label,
                    estimator="analytical",
                    times=figure.x_values,
                    values=values,
                    source="figure",
                )
            )
    else:
        for label, values in figure.series.items():
            for x, value in zip(figure.x_values, values):
                records.append(
                    estimate_record(
                        point_id=f"{figure.figure_id}/{label}/x={x:g}",
                        label=f"{label} @ {figure.x_label}={x:g}",
                        estimator="analytical",
                        times=(6.0,),
                        values=(value,),
                        source="figure",
                    )
                )
    return records


def save_outcome(outcome: RunOutcome, path: Path | str) -> Path:
    """Write an experiment outcome as a JSON artifact; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(outcome_to_json(outcome), indent=2))
    return path
