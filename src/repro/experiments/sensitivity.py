"""Global sensitivity (tornado) analysis of the unsafety measure.

The paper performs one-at-a-time sensitivity studies (λ, n, trip
duration, ρ, strategy).  This module systematises them: for every scalar
model parameter it estimates the *elasticity*

    E_θ = ∂ log S(t) / ∂ log θ

by central finite differences on the analytical engine — the standard
"which knob matters" summary a designer reads off a tornado chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.analytical import AnalyticalEngine
from repro.core.parameters import AHSParameters

__all__ = ["ParameterSpec", "SENSITIVITY_PARAMETERS", "tornado", "TornadoRow"]


@dataclass(frozen=True)
class ParameterSpec:
    """A scalar parameter subject to sensitivity analysis."""

    name: str
    #: build a params object with this parameter scaled by ``factor``
    apply: Callable[[AHSParameters, float], AHSParameters]
    #: documentation for the report
    meaning: str


def _scale_field(field: str) -> Callable[[AHSParameters, float], AHSParameters]:
    def apply(params: AHSParameters, factor: float) -> AHSParameters:
        return params.with_changes(**{field: getattr(params, field) * factor})

    return apply


def _scale_maneuver_rates(params: AHSParameters, factor: float) -> AHSParameters:
    return params.with_changes(
        maneuver_rates={m: r * factor for m, r in params.maneuver_rates.items()}
    )


def _scale_success_shortfall(
    params: AHSParameters, factor: float
) -> AHSParameters:
    # scale the *failure* probability 1-q (q itself is bounded by 1)
    probs = {
        m: max(1.0 - (1.0 - q) * factor, 1e-6)
        for m, q in params.success_probabilities.items()
    }
    return params.with_changes(success_probabilities=probs)


def _scale_assistant_shortfall(
    params: AHSParameters, factor: float
) -> AHSParameters:
    alpha = max(1.0 - (1.0 - params.assistant_reliability) * factor, 1e-6)
    return params.with_changes(assistant_reliability=alpha)


SENSITIVITY_PARAMETERS: tuple[ParameterSpec, ...] = (
    ParameterSpec(
        "base_failure_rate",
        _scale_field("base_failure_rate"),
        "λ, the smallest failure-mode rate",
    ),
    ParameterSpec(
        "maneuver_rates",
        _scale_maneuver_rates,
        "all maneuver execution rates μ (faster recovery)",
    ),
    ParameterSpec(
        "join_rate", _scale_field("join_rate"), "highway re-entry rate"
    ),
    ParameterSpec(
        "leave_rate", _scale_field("leave_rate"), "voluntary leave rate"
    ),
    ParameterSpec(
        "change_rate", _scale_field("change_rate"), "platoon-change rate"
    ),
    ParameterSpec(
        "maneuver_failure_probability",
        _scale_success_shortfall,
        "1−q_m, the nominal maneuver failure probabilities",
    ),
    ParameterSpec(
        "assistant_unreliability",
        _scale_assistant_shortfall,
        "1−α, per-assistant cooperation failure probability",
    ),
)


@dataclass
class TornadoRow:
    """One parameter's sensitivity."""

    parameter: str
    meaning: str
    elasticity: float
    s_low: float
    s_high: float

    @property
    def magnitude(self) -> float:
        """|elasticity| — the tornado ordering key."""
        return abs(self.elasticity)


def tornado(
    params: AHSParameters,
    time: float = 6.0,
    delta: float = 0.25,
    specs: Sequence[ParameterSpec] = SENSITIVITY_PARAMETERS,
) -> list[TornadoRow]:
    """Elasticities of S(time) w.r.t. each parameter, largest first.

    Parameters
    ----------
    params:
        Base configuration.
    time:
        Trip duration at which S is evaluated.
    delta:
        Relative perturbation: each parameter is scaled by (1±delta).
    specs:
        Parameters to analyse (default: all registered).
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    rows: list[TornadoRow] = []
    for spec in specs:
        low_params = spec.apply(params, 1.0 - delta)
        high_params = spec.apply(params, 1.0 + delta)
        s_low = AnalyticalEngine(low_params).unsafety([time]).unsafety[0]
        s_high = AnalyticalEngine(high_params).unsafety([time]).unsafety[0]
        if s_low <= 0.0 or s_high <= 0.0:
            elasticity = float("nan")
        else:
            elasticity = float(
                (np.log(s_high) - np.log(s_low))
                / (np.log(1.0 + delta) - np.log(1.0 - delta))
            )
        rows.append(
            TornadoRow(
                parameter=spec.name,
                meaning=spec.meaning,
                elasticity=elasticity,
                s_low=float(s_low),
                s_high=float(s_high),
            )
        )
    rows.sort(key=lambda row: -row.magnitude)
    return rows
